"""Intra-block instruction scheduling (Section 7, "Instruction
Scheduling").

Two strategies, both dependence-safe reorderings within basic blocks:

* ``hoist_long_latency`` — issue global loads and texture fetches (and
  the address arithmetic feeding them) as early as possible.  Combined
  with loop unrolling this implements the Section 6.4 prescription for
  Reduction/ScalarProd: all long-latency operations issue at the top of
  the body, so the warp deschedules once per unrolled body instead of
  once per original iteration, and the rest of the body stays resident
  to use the LRF/ORF.
* ``shorten_lifetimes`` — greedy list scheduling that prefers the ready
  instruction whose register operands were produced most recently,
  shrinking producer-consumer distances and therefore ORF/LRF
  occupancy (the paper's first rescheduling idealisation).

Safety rules: true/anti/output register and predicate dependences are
respected; memory operations keep their relative order among
themselves (no alias analysis); control-flow instructions stay last.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.basic_block import BasicBlock
from ..ir.instructions import Instruction, Opcode
from ..ir.kernel import Kernel
from ..ir.registers import Register

_MEMORY_OPS = {
    Opcode.LDG, Opcode.STG, Opcode.LDS, Opcode.STS, Opcode.TEX,
}


class ScheduleStrategy(enum.Enum):
    HOIST_LONG_LATENCY = "hoist_long_latency"
    SHORTEN_LIFETIMES = "shorten_lifetimes"


def schedule_kernel(
    kernel: Kernel, strategy: ScheduleStrategy
) -> Kernel:
    """A new kernel with every block rescheduled under ``strategy``."""
    blocks = [
        _schedule_block(block, strategy) for block in kernel.blocks
    ]
    scheduled = Kernel(kernel.name, blocks, live_in=kernel.live_in)
    scheduled.validate()
    return scheduled


# ---------------------------------------------------------------------------
# dependence graph
# ---------------------------------------------------------------------------


def _reads_of(instruction: Instruction) -> List[Register]:
    regs = [
        src for src in instruction.srcs if isinstance(src, Register)
    ]
    if instruction.guard is not None:
        regs.append(instruction.guard)
    return regs


def _build_dependences(
    instructions: Sequence[Instruction],
) -> List[Set[int]]:
    """predecessors[i] = indices that must issue before instruction i."""
    predecessors: List[Set[int]] = [set() for _ in instructions]
    last_def: Dict[Register, int] = {}
    last_uses: Dict[Register, List[int]] = {}
    last_memory: Optional[int] = None

    for index, instruction in enumerate(instructions):
        for reg in _reads_of(instruction):
            if reg in last_def:
                predecessors[index].add(last_def[reg])  # RAW
        written = instruction.dst
        if written is not None:
            if written in last_def:
                predecessors[index].add(last_def[written])  # WAW
            for use in last_uses.get(written, ()):
                predecessors[index].add(use)  # WAR
        if instruction.opcode in _MEMORY_OPS:
            if last_memory is not None:
                predecessors[index].add(last_memory)
            last_memory = index
        if instruction.opcode.is_branch or instruction.opcode.is_exit:
            predecessors[index].update(range(index))
        for reg in _reads_of(instruction):
            last_uses.setdefault(reg, []).append(index)
        if written is not None:
            last_def[written] = index
            last_uses[written] = []
        predecessors[index].discard(index)
    return predecessors


# ---------------------------------------------------------------------------
# list scheduling
# ---------------------------------------------------------------------------


def _schedule_block(
    block: BasicBlock, strategy: ScheduleStrategy
) -> BasicBlock:
    instructions = block.instructions
    if len(instructions) <= 2:
        return _copy_block(block, list(range(len(instructions))))
    predecessors = _build_dependences(instructions)
    order = _list_schedule(instructions, predecessors, strategy)
    return _copy_block(block, order)


def _copy_block(block: BasicBlock, order: Sequence[int]) -> BasicBlock:
    new_block = BasicBlock(block.label)
    for index in order:
        original = block.instructions[index]
        new_block.append(
            Instruction(
                opcode=original.opcode,
                dst=original.dst,
                srcs=original.srcs,
                guard=original.guard,
                guard_sense=original.guard_sense,
                target=original.target,
            )
        )
    return new_block


def _list_schedule(
    instructions: Sequence[Instruction],
    predecessors: List[Set[int]],
    strategy: ScheduleStrategy,
) -> List[int]:
    remaining_deps = [set(p) for p in predecessors]
    successors: List[Set[int]] = [set() for _ in instructions]
    for index, preds in enumerate(predecessors):
        for pred in preds:
            successors[pred].add(index)

    hoist_set = (
        _long_latency_slice(instructions, predecessors)
        if strategy is ScheduleStrategy.HOIST_LONG_LATENCY
        else set()
    )

    produced_at: Dict[Register, int] = {}
    ready = [i for i, deps in enumerate(remaining_deps) if not deps]
    order: List[int] = []

    while ready:
        index = _pick(
            ready, instructions, strategy, hoist_set, produced_at,
            len(order),
        )
        ready.remove(index)
        order.append(index)
        written = instructions[index].dst
        if written is not None:
            produced_at[written] = len(order) - 1
        for succ in successors[index]:
            remaining_deps[succ].discard(index)
            if not remaining_deps[succ]:
                ready.append(succ)
    if len(order) != len(instructions):  # pragma: no cover - safety net
        raise RuntimeError("dependence cycle in list scheduler")
    return order


def _long_latency_slice(
    instructions: Sequence[Instruction],
    predecessors: List[Set[int]],
) -> Set[int]:
    """Long-latency instructions plus their transitive producers."""
    in_slice: Set[int] = {
        index
        for index, instruction in enumerate(instructions)
        if instruction.is_long_latency
    }
    changed = True
    while changed:
        changed = False
        for index in list(in_slice):
            for pred in predecessors[index]:
                if pred not in in_slice:
                    in_slice.add(pred)
                    changed = True
    return in_slice


def _pick(
    ready: List[int],
    instructions: Sequence[Instruction],
    strategy: ScheduleStrategy,
    hoist_set: Set[int],
    produced_at: Dict[Register, int],
    cycle: int,
) -> int:
    if strategy is ScheduleStrategy.HOIST_LONG_LATENCY:
        # Long-latency slice first (program order within the slice),
        # then everything else in program order.
        slice_ready = [index for index in ready if index in hoist_set]
        if slice_ready:
            return min(slice_ready)
        return min(ready)

    # SHORTEN_LIFETIMES: prefer the instruction whose register inputs
    # were produced most recently; break ties by program order.
    def freshness(index: int) -> Tuple[int, int]:
        reads = _reads_of(instructions[index])
        latest = max(
            (produced_at.get(reg, -1) for reg in reads), default=-1
        )
        return (-latest, index)

    return min(ready, key=freshness)

"""Register renaming: apply a register map to a kernel.

Shared by the linear-scan lowering (virtual -> architectural names) and
by loop unrolling (fresh names for per-copy temporaries).
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.basic_block import BasicBlock
from ..ir.instructions import Instruction, Operand
from ..ir.kernel import Kernel
from ..ir.registers import Register


def rename_registers(
    kernel: Kernel, mapping: Dict[Register, Register]
) -> Kernel:
    """A new kernel with every register replaced per ``mapping``.

    Registers absent from the mapping keep their names.  Annotations
    are not carried over (renaming invalidates them).
    """
    blocks: List[BasicBlock] = []
    for block in kernel.blocks:
        new_block = BasicBlock(block.label)
        for instruction in block.instructions:
            new_block.append(rename_instruction(instruction, mapping))
        blocks.append(new_block)
    live_in = tuple(mapping.get(reg, reg) for reg in kernel.live_in)
    return Kernel(kernel.name, blocks, live_in=live_in)


def rename_instruction(
    instruction: Instruction, mapping: Dict[Register, Register]
) -> Instruction:
    """A fresh (annotation-free) copy with registers renamed."""

    def map_operand(operand: Operand) -> Operand:
        if isinstance(operand, Register):
            return mapping.get(operand, operand)
        return operand

    dst = instruction.dst
    if dst is not None:
        dst = mapping.get(dst, dst)
    guard = instruction.guard
    if guard is not None:
        guard = mapping.get(guard, guard)
    return Instruction(
        opcode=instruction.opcode,
        dst=dst,
        srcs=tuple(map_operand(src) for src in instruction.srcs),
        guard=guard,
        guard_sense=instruction.guard_sense,
        target=instruction.target,
    )

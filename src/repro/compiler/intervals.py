"""Live intervals over linearised instruction positions.

The hierarchy allocator's input is "scheduled and register allocated"
PTX (Section 5.1): every register is an architectural register of the
32-entry-per-thread MRF.  :mod:`repro.compiler` supplies that earlier
stage — kernels may be written with unbounded *virtual* register
indices and lowered by linear scan (Poletto & Sarkar, the paper's
reference [21]), which needs a live interval per register.

An interval conservatively covers every position where the register may
be live: the span of its defs and uses, extended around backward edges
(a value live into a loop header stays live through the entire loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.cfg import ControlFlowGraph
from ..analysis.liveness import LivenessAnalysis
from ..ir.kernel import Kernel
from ..ir.registers import Register


@dataclass(frozen=True)
class LiveInterval:
    """Conservative live range of one register, in layout positions."""

    reg: Register
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start <= other.end and other.start <= self.end


def compute_live_intervals(kernel: Kernel) -> List[LiveInterval]:
    """Live intervals for every GPR, sorted by start position."""
    cfg = ControlFlowGraph(kernel)
    liveness = LivenessAnalysis(kernel, cfg)

    first: Dict[Register, int] = {}
    last: Dict[Register, int] = {}

    def touch(reg: Register, position: int) -> None:
        if reg not in first or position < first[reg]:
            first[reg] = position
        if reg not in last or position > last[reg]:
            last[reg] = position

    for reg in kernel.live_in:
        if reg.is_gpr:
            touch(reg, 0)
    for ref, instruction in kernel.instructions():
        for _, reg in instruction.gpr_reads():
            touch(reg, ref.position)
        written = instruction.gpr_write()
        if written is not None:
            touch(written, ref.position)

    # Extend intervals around backward edges: a register live into a
    # backward-branch target is live through every block up to (and
    # including) the branching block.
    block_bounds = _block_position_bounds(kernel)
    for src in range(len(kernel.blocks)):
        for dst in kernel.successors(src):
            if not kernel.is_backward_edge(src, dst):
                continue
            loop_start, _ = block_bounds[dst]
            _, loop_end = block_bounds[src]
            for reg in liveness.live_in[dst]:
                if reg in first:
                    first[reg] = min(first[reg], loop_start)
                    last[reg] = max(last[reg], loop_end)

    intervals = [
        LiveInterval(reg, first[reg], last[reg]) for reg in first
    ]
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.reg.index))
    return intervals


def _block_position_bounds(kernel: Kernel) -> List[Tuple[int, int]]:
    """(first position, last position) of every block."""
    bounds: List[Tuple[int, int]] = []
    position = 0
    for block in kernel.blocks:
        size = len(block.instructions)
        bounds.append((position, position + size - 1))
        position += size
    return bounds

"""Loop unrolling (the optimisation Section 6.4 prescribes).

The paper's worst benchmarks — Reduction and ScalarProd — are tight
global-load loops: "The best way to optimize these benchmarks is to
unroll the inner loop and issue all of the long latency instructions
at the beginning of the loop.  This strategy would allow the rest of
the loop to remain resident and make use of the LRF and ORF."

``unroll_loop`` duplicates a single-block counted loop body ``factor``
times.  Each copy keeps its own trip-count check (no divisibility
assumption): copies 1..k-1 exit forward to the loop's fall-through
block when the counter runs out; only the last copy branches backward.
Per-copy temporaries are renamed to fresh registers so a subsequent
scheduling pass (``repro.compiler.schedule``) can hoist all the loads
to the top of the unrolled body — turning k deschedules per k
iterations into one.

The transform recognises the canonical counted-loop shape produced by
the workload generators and the examples::

    header:                      ; sole block of the loop
        ...body...
        iadd COUNTER, COUNTER, -1
        setp P, 0, COUNTER
        @P bra header
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..analysis.cfg import ControlFlowGraph
from ..analysis.liveness import LivenessAnalysis
from ..ir.basic_block import BasicBlock
from ..ir.instructions import Immediate, Instruction, Opcode
from ..ir.kernel import Kernel
from ..ir.registers import Register, gpr
from .rename import rename_instruction


class UnrollError(ValueError):
    """The named block is not an unrollable counted loop."""


@dataclass
class _LoopShape:
    block_index: int
    block: BasicBlock
    counter: Register
    #: Body instructions (everything before the decrement).
    body: List[Instruction]
    #: The decrement / setp / bra tail.
    tail: List[Instruction]


def unroll_loop(
    kernel: Kernel, header_label: str, factor: int
) -> Kernel:
    """Return a new kernel with the given loop unrolled ``factor``x."""
    if factor < 2:
        raise UnrollError("unroll factor must be >= 2")
    shape = _match_loop(kernel, header_label)
    carried = _loop_carried_registers(kernel, shape)
    fresh = _FreshRegisters(kernel)

    blocks: List[BasicBlock] = []
    for index, block in enumerate(kernel.blocks):
        if index != shape.block_index:
            blocks.append(block)
            continue
        blocks.extend(
            _build_unrolled(kernel, shape, carried, fresh, factor)
        )
    unrolled = Kernel(kernel.name, blocks, live_in=kernel.live_in)
    unrolled.validate()
    return unrolled


# ---------------------------------------------------------------------------
# matching
# ---------------------------------------------------------------------------


def _match_loop(kernel: Kernel, header_label: str) -> _LoopShape:
    block_index = kernel.block_index(header_label)
    block = kernel.blocks[block_index]
    instructions = block.instructions
    if len(instructions) < 4:
        raise UnrollError(f"{header_label}: too short to be a loop body")
    bra = instructions[-1]
    if (
        bra.opcode is not Opcode.BRA
        or bra.target != header_label
        or bra.guard is None
    ):
        raise UnrollError(
            f"{header_label}: must end with a guarded branch to itself"
        )
    setp = instructions[-2]
    if setp.opcode is not Opcode.SETP or setp.dst != bra.guard:
        raise UnrollError(
            f"{header_label}: branch guard must come from the preceding "
            "setp"
        )
    counter_operand = setp.srcs[1]
    if not isinstance(counter_operand, Register):
        raise UnrollError(f"{header_label}: setp must test a register")
    dec = instructions[-3]
    if (
        dec.opcode is not Opcode.IADD
        or dec.dst != counter_operand
        or dec.srcs[0] != counter_operand
    ):
        raise UnrollError(
            f"{header_label}: counter must be decremented by an iadd "
            "immediately before the test"
        )
    # Only single-block self-loops are handled.
    for other_index in range(len(kernel.blocks)):
        if other_index == block_index:
            continue
        target = kernel.blocks[other_index].branch_target
        if target == header_label and kernel.is_backward_edge(
            other_index, block_index
        ):
            raise UnrollError(
                f"{header_label}: multiple backward branches target the "
                "loop"
            )
    return _LoopShape(
        block_index=block_index,
        block=block,
        counter=counter_operand,
        body=list(instructions[:-3]),
        tail=list(instructions[-3:]),
    )


def _loop_carried_registers(
    kernel: Kernel, shape: _LoopShape
) -> Set[Register]:
    """Registers whose values cross iteration boundaries (must keep
    their architectural names in every copy)."""
    cfg = ControlFlowGraph(kernel)
    liveness = LivenessAnalysis(kernel, cfg)
    return set(liveness.live_in[shape.block_index]) | {shape.counter}


class _FreshRegisters:
    """Allocates register indices unused anywhere in the kernel."""

    def __init__(self, kernel: Kernel) -> None:
        used = kernel.registers_used()
        self._next = (
            max((r.index + r.num_words for r in used), default=0)
        )

    def fresh(self, width: int = 32) -> Register:
        reg = gpr(self._next, width)
        self._next += reg.num_words
        return reg


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def _build_unrolled(
    kernel: Kernel,
    shape: _LoopShape,
    carried: Set[Register],
    fresh: _FreshRegisters,
    factor: int,
) -> List[BasicBlock]:
    header_label = shape.block.label
    exit_label = _exit_label(kernel, shape)
    blocks: List[BasicBlock] = []

    for copy in range(factor):
        label = header_label if copy == 0 else f"{header_label}__u{copy}"
        block = BasicBlock(label)
        renames: Dict[Register, Register] = {}
        for instruction in shape.body:
            written = instruction.gpr_write()
            if written is not None and written not in carried:
                renames.setdefault(written, fresh.fresh(written.width))
            block.append(rename_instruction(instruction, renames))
        dec, setp, bra = shape.tail
        block.append(rename_instruction(dec, {}))
        block.append(rename_instruction(setp, {}))
        if copy == factor - 1:
            # Final copy: the backward branch.
            block.append(
                Instruction(
                    Opcode.BRA,
                    None,
                    (),
                    guard=bra.guard,
                    guard_sense=bra.guard_sense,
                    target=header_label,
                )
            )
        else:
            # Early copies exit forward when the counter runs out.
            block.append(
                Instruction(
                    Opcode.BRA,
                    None,
                    (),
                    guard=bra.guard,
                    guard_sense=not bra.guard_sense,
                    target=exit_label,
                )
            )
        blocks.append(block)
    return blocks


def _exit_label(kernel: Kernel, shape: _LoopShape) -> str:
    next_index = shape.block_index + 1
    if next_index >= len(kernel.blocks):
        raise UnrollError(
            f"{shape.block.label}: loop has no fall-through exit block"
        )
    return kernel.blocks[next_index].label


# ---------------------------------------------------------------------------
# fused unrolling (Section 6.4's Reduction/ScalarProd prescription)
# ---------------------------------------------------------------------------


def unroll_loop_fused(
    kernel: Kernel, header_label: str, factor: int
) -> Kernel:
    """Unroll ``factor``x into a *single* loop body with one trip test.

    Induction variables (loop-carried registers with exactly one body
    definition of the form ``iadd V, V, imm``) are strength-reduced:
    copy *i* reads a materialised ``V + i*step`` and a single combined
    update runs at the end of the body.  This removes the serial
    pointer chain between copies, so a subsequent
    ``HOIST_LONG_LATENCY`` schedule can issue every load at the top of
    the body — the paper's prescription for Reduction and ScalarProd
    (Section 6.4): one deschedule per ``factor`` iterations and a body
    that stays resident to use the LRF and ORF.

    **Precondition:** the dynamic trip count must be a multiple of
    ``factor`` (the classic fused-unroll contract; no remainder loop is
    generated).  Non-divisible trip counts over-execute the tail.
    """
    if factor < 2:
        raise UnrollError("unroll factor must be >= 2")
    shape = _match_loop(kernel, header_label)
    carried = _loop_carried_registers(kernel, shape)
    fresh = _FreshRegisters(kernel)
    inductions = _induction_variables(shape, carried)

    header_label = shape.block.label
    block = BasicBlock(header_label)

    for copy in range(factor):
        renames: Dict[Register, Register] = {}
        #: (induction reg, accumulated offset) -> materialised temp.
        materialised: Dict[Tuple[Register, int], Register] = {}
        updates_seen: Dict[Register, int] = {reg: 0 for reg in inductions}
        for instruction in shape.body:
            if _is_induction_update(instruction, inductions):
                updates_seen[instruction.dst] += 1
                continue  # folded into the combined update below
            replaced = _replace_induction_uses(
                instruction, inductions, updates_seen, copy,
                materialised, fresh, block,
            )
            written = replaced.gpr_write()
            if written is not None and written not in carried:
                renames.setdefault(written, fresh.fresh(written.width))
            block.append(rename_instruction(replaced, renames))

    # Combined induction updates (including the counter).
    for reg, step in inductions.items():
        if reg == shape.counter:
            continue
        block.append(
            Instruction(Opcode.IADD, reg, (reg, Immediate(step * factor)))
        )
    dec, setp, bra = shape.tail
    counter_step = inductions.get(shape.counter, -1)
    block.append(
        Instruction(
            Opcode.IADD,
            shape.counter,
            (shape.counter, Immediate(counter_step * factor)),
        )
    )
    block.append(rename_instruction(setp, {}))
    block.append(
        Instruction(
            Opcode.BRA,
            None,
            (),
            guard=bra.guard,
            guard_sense=bra.guard_sense,
            target=header_label,
        )
    )

    blocks: List[BasicBlock] = []
    for index, original in enumerate(kernel.blocks):
        blocks.append(
            block if index == shape.block_index else original
        )
    fused = Kernel(kernel.name, blocks, live_in=kernel.live_in)
    fused.validate()
    return fused


def _induction_variables(
    shape: _LoopShape, carried: Set[Register]
) -> Dict[Register, int]:
    """Carried registers with exactly one ``iadd V, V, imm`` body def.

    Returns reg -> per-iteration step.  The counter's decrement lives
    in the tail and is always included.
    """
    defs: Dict[Register, List[Instruction]] = {}
    for instruction in shape.body:
        written = instruction.gpr_write()
        if written is not None:
            defs.setdefault(written, []).append(instruction)
    result: Dict[Register, int] = {}
    for reg, reg_defs in defs.items():
        if reg not in carried or len(reg_defs) != 1:
            continue
        instruction = reg_defs[0]
        if (
            instruction.opcode is Opcode.IADD
            and instruction.guard is None
            and instruction.srcs[0] == reg
            and isinstance(instruction.srcs[1], Immediate)
        ):
            result[reg] = int(instruction.srcs[1].value)
    # The counter (decremented in the tail).
    dec = shape.tail[0]
    result[shape.counter] = int(dec.srcs[1].value)
    return result


def _is_induction_update(
    instruction: Instruction, inductions: Dict[Register, int]
) -> bool:
    written = instruction.gpr_write()
    return (
        written is not None
        and written in inductions
        and instruction.opcode is Opcode.IADD
        and instruction.srcs[0] == written
        and isinstance(instruction.srcs[1], Immediate)
    )


def _replace_induction_uses(
    instruction: Instruction,
    inductions: Dict[Register, int],
    updates_seen: Dict[Register, int],
    copy: int,
    materialised: Dict[Tuple[Register, int], Register],
    fresh: _FreshRegisters,
    block: BasicBlock,
) -> Instruction:
    """Rewrite reads of induction variables to materialised offsets."""
    mapping: Dict[Register, Register] = {}
    for src in instruction.srcs:
        if not isinstance(src, Register) or src not in inductions:
            continue
        step = inductions[src]
        offset = (copy + updates_seen.get(src, 0)) * step
        if offset == 0:
            continue
        key = (src, offset)
        temp = materialised.get(key)
        if temp is None:
            temp = fresh.fresh(src.width)
            block.append(
                Instruction(Opcode.IADD, temp, (src, Immediate(offset)))
            )
            materialised[key] = temp
        mapping[src] = temp
    if not mapping:
        return instruction
    # Only source reads are rewritten; an induction variable can never
    # be this instruction's destination here (updates were filtered).
    return Instruction(
        opcode=instruction.opcode,
        dst=instruction.dst,
        srcs=tuple(
            mapping.get(src, src) if isinstance(src, Register) else src
            for src in instruction.srcs
        ),
        guard=instruction.guard,
        guard_sense=instruction.guard_sense,
        target=instruction.target,
    )

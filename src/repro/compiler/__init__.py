"""The compiler substrate feeding the hierarchy allocator: live
intervals, linear-scan register lowering (the paper's reference [21]),
loop unrolling and instruction scheduling (Sections 6.4 and 7), and the
end-to-end pipeline."""

from .intervals import LiveInterval, compute_live_intervals
from .linear_scan import (
    LinearScanResult,
    MRF_WORDS_PER_THREAD,
    RegisterPressureError,
    register_pressure,
    run_linear_scan,
)
from .pipeline import CompileResult, compile_kernel
from .rename import rename_instruction, rename_registers
from .schedule import ScheduleStrategy, schedule_kernel
from .unroll import UnrollError, unroll_loop

__all__ = [
    "CompileResult",
    "LinearScanResult",
    "LiveInterval",
    "MRF_WORDS_PER_THREAD",
    "RegisterPressureError",
    "ScheduleStrategy",
    "UnrollError",
    "compile_kernel",
    "compute_live_intervals",
    "register_pressure",
    "rename_instruction",
    "rename_registers",
    "run_linear_scan",
    "schedule_kernel",
    "unroll_loop",
]

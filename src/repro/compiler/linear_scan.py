"""Linear-scan register allocation (Poletto & Sarkar — the paper's
reference [21]) onto the 32-entry-per-thread MRF namespace.

The hierarchy allocator consumes kernels whose registers are
architectural MRF names (Section 5.1).  This pass lowers kernels
written with arbitrary *virtual* GPR indices: live intervals are
computed conservatively (loops extend intervals, see
``repro.compiler.intervals``), sorted by start, and assigned to the
lowest free architectural word(s).  Wide (64/128-bit) values occupy
consecutive words, matching Section 3.2.

The MRF provides 32 words per thread (Table 2: 128 KB / 1024 threads /
4 bytes).  Exceeding that raises :class:`RegisterPressureError` — the
paper's compiler would spill to local memory, which its workloads never
need; neither do ours.

Kernel live-in registers keep their architectural identity (they are
the runtime's calling convention); predicates live in a separate space
and pass through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..ir.kernel import Kernel
from ..ir.registers import Register, gpr
from .intervals import compute_live_intervals
from .rename import rename_registers

#: Architectural registers per thread (Table 2: 128 KB MRF, 1024
#: threads, 32-bit words).
MRF_WORDS_PER_THREAD = 32


class RegisterPressureError(RuntimeError):
    """More values simultaneously live than the MRF can hold."""


@dataclass
class LinearScanResult:
    """Outcome of lowering one kernel."""

    kernel: Kernel
    mapping: Dict[Register, Register]
    words_used: int

    @property
    def registers_assigned(self) -> int:
        return len(self.mapping)


def run_linear_scan(
    kernel: Kernel,
    max_words: int = MRF_WORDS_PER_THREAD,
) -> LinearScanResult:
    """Lower a virtual-register kernel to architectural MRF names."""
    intervals = compute_live_intervals(kernel)
    by_reg = {interval.reg: interval for interval in intervals}

    # Live-ins are pinned: they keep their (word-range) identity.
    pinned_words: Set[int] = set()
    for reg in kernel.live_in:
        if not reg.is_gpr:
            continue
        for word in range(reg.index, reg.index + reg.num_words):
            if word >= max_words:
                raise RegisterPressureError(
                    f"live-in {reg} exceeds the {max_words}-word MRF"
                )
            pinned_words.add(word)

    #: word index -> position at which it becomes free again (interval
    #: end of the current occupant), or None when free.
    busy_until: List[Optional[int]] = [None] * max_words
    for word in pinned_words:
        live_in_reg = next(
            reg
            for reg in kernel.live_in
            if reg.is_gpr
            and reg.index <= word < reg.index + reg.num_words
        )
        interval = by_reg.get(live_in_reg)
        busy_until[word] = interval.end if interval else 0

    mapping: Dict[Register, Register] = {}
    highest_word = -1

    for interval in intervals:
        reg = interval.reg
        if reg in [r for r in kernel.live_in if r.is_gpr]:
            mapping[reg] = reg
            highest_word = max(
                highest_word, reg.index + reg.num_words - 1
            )
            continue
        words = reg.num_words
        base = _find_free_run(busy_until, interval.start, words, max_words)
        if base is None:
            raise RegisterPressureError(
                f"{kernel.name}: register pressure exceeds "
                f"{max_words} words at position {interval.start} "
                f"(allocating {reg}, live [{interval.start}, "
                f"{interval.end}])"
            )
        for word in range(base, base + words):
            busy_until[word] = interval.end
        mapping[reg] = gpr(base, reg.width)
        highest_word = max(highest_word, base + words - 1)

    lowered = rename_registers(kernel, mapping)
    lowered.validate()
    return LinearScanResult(
        kernel=lowered, mapping=mapping, words_used=highest_word + 1
    )


def _find_free_run(
    busy_until: List[Optional[int]],
    position: int,
    words: int,
    max_words: int,
) -> Optional[int]:
    """Lowest base index of ``words`` consecutive free words."""
    run = 0
    for word in range(max_words):
        occupied_to = busy_until[word]
        if occupied_to is None or occupied_to < position:
            run += 1
            if run == words:
                return word - words + 1
        else:
            run = 0
    return None


def register_pressure(kernel: Kernel) -> int:
    """Maximum number of simultaneously live MRF words."""
    intervals = compute_live_intervals(kernel)
    events: List = []
    for interval in intervals:
        events.append((interval.start, interval.reg.num_words))
        events.append((interval.end + 1, -interval.reg.num_words))
    events.sort()
    live = 0
    peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak

"""The full compilation pipeline: schedule -> lower -> allocate.

``compile_kernel`` glues the earlier compiler stages to the paper's
hierarchy allocator, producing a kernel whose operands are annotated
with hierarchy levels and whose registers fit the 32-word MRF:

1. optional intra-block rescheduling (Section 7);
2. linear-scan lowering of virtual registers to architectural names
   (the "register allocated" input form of Section 5.1);
3. strand partitioning + LRF/ORF allocation (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..alloc.allocator import (
    AllocationConfig,
    AllocationResult,
    allocate_kernel,
)
from ..ir.kernel import Kernel
from .linear_scan import LinearScanResult, run_linear_scan
from .schedule import ScheduleStrategy, schedule_kernel


@dataclass
class CompileResult:
    """Everything produced by the pipeline."""

    kernel: Kernel
    linear_scan: LinearScanResult
    allocation: AllocationResult


def compile_kernel(
    kernel: Kernel,
    config: Optional[AllocationConfig] = None,
    strategy: Optional[ScheduleStrategy] = None,
    max_words: int = 32,
) -> CompileResult:
    """Compile a (possibly virtual-register) kernel end to end."""
    if config is None:
        config = AllocationConfig.best_paper_config()
    staged = kernel
    if strategy is not None:
        staged = schedule_kernel(staged, strategy)
    lowered = run_linear_scan(staged, max_words=max_words)
    allocation = allocate_kernel(lowered.kernel, config)
    return CompileResult(
        kernel=lowered.kernel,
        linear_scan=lowered,
        allocation=allocation,
    )

"""Hardware-managed three-level hierarchy: LRF + RFC + MRF (Section 6.2).

The paper's hardware three-level variant chains a one-entry-per-thread
last result file in front of the RFC:

* values produced by the execution units are written into the LRF
  first; evicting a live LRF value writes it back to the RFC; evicting
  a live RFC value writes it back to the MRF;
* long-latency results bypass both and go straight to the MRF;
* the shared datapath cannot access the LRF, so values that will be
  consumed by shared units are written into the RFC instead (the
  compiler guarantees this with static use information — callers pass
  the positions of such producing instructions);
* a warp deschedule flushes live LRF and RFC contents to the MRF.

Static liveness elides dead write-backs at every step.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, List

from ..ir.registers import Register
from ..levels import Level
from .counters import SLOT_INDEX, AccessCounters


class HardwareThreeLevel:
    """LRF + RFC + MRF hardware caching model for one warp."""

    def __init__(
        self,
        rfc_entries_per_thread: int,
        counters: AccessCounters,
        shared_consumed_positions: FrozenSet[int],
        lrf_entries: int = 1,
        flush_on_backward_branch: bool = False,
    ) -> None:
        if rfc_entries_per_thread < 1:
            raise ValueError("RFC needs at least one entry per thread")
        if lrf_entries < 1:
            raise ValueError("LRF needs at least one entry per thread")
        self.rfc_capacity = rfc_entries_per_thread
        self.lrf_capacity = lrf_entries
        self.counters = counters
        self.shared_consumed = shared_consumed_positions
        self.flush_on_backward_branch = flush_on_backward_branch
        self._lrf: "OrderedDict[Register, None]" = OrderedDict()
        self._rfc: "OrderedDict[Register, None]" = OrderedDict()

    # -- trace hooks ---------------------------------------------------------

    def read(self, reg: Register, shared_unit: bool) -> Level:
        words = reg.num_words
        if reg in self._lrf and not shared_unit:
            self.counters.add_read(Level.LRF, shared_unit, words)
            return Level.LRF
        if reg in self._rfc:
            self.counters.add_read(Level.ORF, shared_unit, words)
            return Level.ORF
        self.counters.add_read(Level.MRF, shared_unit, words)
        return Level.MRF

    def write(
        self,
        reg: Register,
        shared_unit: bool,
        is_long_latency: bool,
        live_after: FrozenSet[Register],
        position: int = -1,
    ) -> Level:
        """Account one result write at static instruction ``position``."""
        words = reg.num_words
        if is_long_latency:
            self._invalidate(reg)
            self.counters.add_write(Level.MRF, shared_unit, words)
            return Level.MRF
        if position in self.shared_consumed or shared_unit:
            # Results consumed *or produced* by the shared datapath
            # cannot use the LRF (it is wired to the private ALUs only,
            # Section 3.2): write into the RFC directly.
            self._lrf.pop(reg, None)
            self._write_rfc(reg, shared_unit, live_after)
            return Level.ORF
        self._rfc.pop(reg, None)
        if reg in self._lrf:
            self.counters.add_write(Level.LRF, shared_unit, words)
            return Level.LRF
        while len(self._lrf) >= self.lrf_capacity:
            self._evict_lrf(live_after)
        self._lrf[reg] = None
        self.counters.add_write(Level.LRF, shared_unit, words)
        return Level.LRF

    def on_deschedule(self, live: FrozenSet[Register]) -> None:
        self._flush(live)

    def on_backward_branch(self, live: FrozenSet[Register]) -> None:
        if self.flush_on_backward_branch:
            self._flush(live)

    def finish(self) -> None:
        self._lrf.clear()
        self._rfc.clear()

    # -- internals ---------------------------------------------------------

    def _invalidate(self, reg: Register) -> None:
        self._lrf.pop(reg, None)
        self._rfc.pop(reg, None)

    def _write_rfc(
        self,
        reg: Register,
        shared_unit: bool,
        live: FrozenSet[Register],
    ) -> None:
        words = reg.num_words
        if reg not in self._rfc:
            while len(self._rfc) >= self.rfc_capacity:
                self._evict_rfc(live)
            self._rfc[reg] = None
        self.counters.add_write(Level.ORF, shared_unit, words)

    def _evict_lrf(self, live: FrozenSet[Register]) -> None:
        reg, _ = self._lrf.popitem(last=False)
        if reg not in live:
            return
        # Live LRF eviction: the value moves down into the RFC.
        words = reg.num_words
        self.counters.add_read(Level.LRF, False, words)
        self._write_rfc(reg, False, live)

    def _evict_rfc(self, live: FrozenSet[Register]) -> None:
        reg, _ = self._rfc.popitem(last=False)
        if reg not in live:
            return
        words = reg.num_words
        self.counters.add_read(Level.ORF, False, words)
        self.counters.add_write(Level.MRF, False, words)

    def _flush(self, live: FrozenSet[Register]) -> None:
        lrf_regs = list(self._lrf)
        rfc_regs = list(self._rfc)
        self._lrf.clear()
        self._rfc.clear()
        for reg in lrf_regs:
            if reg not in live:
                continue
            words = reg.num_words
            self.counters.add_read(Level.LRF, False, words)
            self.counters.add_write(Level.MRF, False, words)
        for reg in rfc_regs:
            if reg not in live:
                continue
            words = reg.num_words
            self.counters.add_read(Level.ORF, False, words)
            self.counters.add_write(Level.MRF, False, words)

    @property
    def resident_registers(self) -> FrozenSet[Register]:
        return frozenset(self._lrf) | frozenset(self._rfc)


# ---------------------------------------------------------------------------
# columnar walk
# ---------------------------------------------------------------------------

_LRF_R = SLOT_INDEX[(Level.LRF, True, False)]
_LRF_W = SLOT_INDEX[(Level.LRF, False, False)]
_ORF_R = SLOT_INDEX[(Level.ORF, True, False)]
_ORF_W = SLOT_INDEX[(Level.ORF, False, False)]
_MRF_R = SLOT_INDEX[(Level.MRF, True, False)]
_MRF_W = SLOT_INDEX[(Level.MRF, False, False)]


def columnar_three_level_walk(
    program,
    words,
    rfc_capacity: int,
    lrf_capacity: int = 1,
    flush_on_backward_branch: bool = False,
) -> List[int]:
    """Replay one compiled event program through the LRF+RFC+MRF model.

    Same contract as :func:`repro.hierarchy.rfc.columnar_rfc_walk`,
    for :class:`HardwareThreeLevel`: two id-list FIFOs with residency
    bitmasks, live-LRF evictions cascading into the RFC, and the
    shared-consumed LRF bypass taken from the program's per-event flag.
    """
    slots = [0] * len(SLOT_INDEX)
    lrf: List[int] = []
    lrf_mask = 0
    rfc: List[int] = []
    rfc_mask = 0

    def write_rfc(rid: int, shared: int, live: int) -> None:
        nonlocal rfc_mask
        if not rfc_mask >> rid & 1:
            while len(rfc) >= rfc_capacity:
                evicted = rfc.pop(0)
                rfc_mask &= ~(1 << evicted)
                if live >> evicted & 1:
                    width = words[evicted]
                    slots[_ORF_R] += width
                    slots[_MRF_W] += width
            rfc.append(rid)
            rfc_mask |= 1 << rid
        slots[_ORF_W + shared] += words[rid]

    for (
        shared,
        reads,
        desched_mask,
        backward_mask,
        write_id,
        write_words,
        long_latency,
        live_after,
        shared_consumed,
    ) in program:
        if desched_mask is not None:
            for rid in lrf:
                if desched_mask >> rid & 1:
                    width = words[rid]
                    slots[_LRF_R] += width
                    slots[_MRF_W] += width
            for rid in rfc:
                if desched_mask >> rid & 1:
                    width = words[rid]
                    slots[_ORF_R] += width
                    slots[_MRF_W] += width
            lrf.clear()
            rfc.clear()
            lrf_mask = rfc_mask = 0

        for rid, width in reads:
            if lrf_mask >> rid & 1 and not shared:
                slots[_LRF_R + shared] += width
            elif rfc_mask >> rid & 1:
                slots[_ORF_R + shared] += width
            else:
                slots[_MRF_R + shared] += width

        if backward_mask is not None and flush_on_backward_branch:
            for rid in lrf:
                if backward_mask >> rid & 1:
                    width = words[rid]
                    slots[_LRF_R] += width
                    slots[_MRF_W] += width
            for rid in rfc:
                if backward_mask >> rid & 1:
                    width = words[rid]
                    slots[_ORF_R] += width
                    slots[_MRF_W] += width
            lrf.clear()
            rfc.clear()
            lrf_mask = rfc_mask = 0

        if write_id >= 0:
            if long_latency:
                if lrf_mask >> write_id & 1:
                    lrf_mask &= ~(1 << write_id)
                    lrf.remove(write_id)
                if rfc_mask >> write_id & 1:
                    rfc_mask &= ~(1 << write_id)
                    rfc.remove(write_id)
                slots[_MRF_W + shared] += write_words
            elif shared_consumed or shared:
                if lrf_mask >> write_id & 1:
                    lrf_mask &= ~(1 << write_id)
                    lrf.remove(write_id)
                write_rfc(write_id, shared, live_after)
            else:
                if rfc_mask >> write_id & 1:
                    rfc_mask &= ~(1 << write_id)
                    rfc.remove(write_id)
                if lrf_mask >> write_id & 1:
                    slots[_LRF_W + shared] += write_words
                else:
                    while len(lrf) >= lrf_capacity:
                        evicted = lrf.pop(0)
                        lrf_mask &= ~(1 << evicted)
                        if live_after >> evicted & 1:
                            slots[_LRF_R] += words[evicted]
                            write_rfc(evicted, 0, live_after)
                    lrf.append(write_id)
                    lrf_mask |= 1 << write_id
                    slots[_LRF_W + shared] += write_words

    return slots

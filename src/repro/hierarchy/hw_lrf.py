"""Hardware-managed three-level hierarchy: LRF + RFC + MRF (Section 6.2).

The paper's hardware three-level variant chains a one-entry-per-thread
last result file in front of the RFC:

* values produced by the execution units are written into the LRF
  first; evicting a live LRF value writes it back to the RFC; evicting
  a live RFC value writes it back to the MRF;
* long-latency results bypass both and go straight to the MRF;
* the shared datapath cannot access the LRF, so values that will be
  consumed by shared units are written into the RFC instead (the
  compiler guarantees this with static use information — callers pass
  the positions of such producing instructions);
* a warp deschedule flushes live LRF and RFC contents to the MRF.

Static liveness elides dead write-backs at every step.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet

from ..ir.registers import Register
from ..levels import Level
from .counters import AccessCounters


class HardwareThreeLevel:
    """LRF + RFC + MRF hardware caching model for one warp."""

    def __init__(
        self,
        rfc_entries_per_thread: int,
        counters: AccessCounters,
        shared_consumed_positions: FrozenSet[int],
        lrf_entries: int = 1,
        flush_on_backward_branch: bool = False,
    ) -> None:
        if rfc_entries_per_thread < 1:
            raise ValueError("RFC needs at least one entry per thread")
        if lrf_entries < 1:
            raise ValueError("LRF needs at least one entry per thread")
        self.rfc_capacity = rfc_entries_per_thread
        self.lrf_capacity = lrf_entries
        self.counters = counters
        self.shared_consumed = shared_consumed_positions
        self.flush_on_backward_branch = flush_on_backward_branch
        self._lrf: "OrderedDict[Register, None]" = OrderedDict()
        self._rfc: "OrderedDict[Register, None]" = OrderedDict()

    # -- trace hooks ---------------------------------------------------------

    def read(self, reg: Register, shared_unit: bool) -> Level:
        words = reg.num_words
        if reg in self._lrf and not shared_unit:
            self.counters.add_read(Level.LRF, shared_unit, words)
            return Level.LRF
        if reg in self._rfc:
            self.counters.add_read(Level.ORF, shared_unit, words)
            return Level.ORF
        self.counters.add_read(Level.MRF, shared_unit, words)
        return Level.MRF

    def write(
        self,
        reg: Register,
        shared_unit: bool,
        is_long_latency: bool,
        live_after: FrozenSet[Register],
        position: int = -1,
    ) -> Level:
        """Account one result write at static instruction ``position``."""
        words = reg.num_words
        if is_long_latency:
            self._invalidate(reg)
            self.counters.add_write(Level.MRF, shared_unit, words)
            return Level.MRF
        if position in self.shared_consumed or shared_unit:
            # Results consumed *or produced* by the shared datapath
            # cannot use the LRF (it is wired to the private ALUs only,
            # Section 3.2): write into the RFC directly.
            self._lrf.pop(reg, None)
            self._write_rfc(reg, shared_unit, live_after)
            return Level.ORF
        self._rfc.pop(reg, None)
        if reg in self._lrf:
            self.counters.add_write(Level.LRF, shared_unit, words)
            return Level.LRF
        while len(self._lrf) >= self.lrf_capacity:
            self._evict_lrf(live_after)
        self._lrf[reg] = None
        self.counters.add_write(Level.LRF, shared_unit, words)
        return Level.LRF

    def on_deschedule(self, live: FrozenSet[Register]) -> None:
        self._flush(live)

    def on_backward_branch(self, live: FrozenSet[Register]) -> None:
        if self.flush_on_backward_branch:
            self._flush(live)

    def finish(self) -> None:
        self._lrf.clear()
        self._rfc.clear()

    # -- internals ---------------------------------------------------------

    def _invalidate(self, reg: Register) -> None:
        self._lrf.pop(reg, None)
        self._rfc.pop(reg, None)

    def _write_rfc(
        self,
        reg: Register,
        shared_unit: bool,
        live: FrozenSet[Register],
    ) -> None:
        words = reg.num_words
        if reg not in self._rfc:
            while len(self._rfc) >= self.rfc_capacity:
                self._evict_rfc(live)
            self._rfc[reg] = None
        self.counters.add_write(Level.ORF, shared_unit, words)

    def _evict_lrf(self, live: FrozenSet[Register]) -> None:
        reg, _ = self._lrf.popitem(last=False)
        if reg not in live:
            return
        # Live LRF eviction: the value moves down into the RFC.
        words = reg.num_words
        self.counters.add_read(Level.LRF, False, words)
        self._write_rfc(reg, False, live)

    def _evict_rfc(self, live: FrozenSet[Register]) -> None:
        reg, _ = self._rfc.popitem(last=False)
        if reg not in live:
            return
        words = reg.num_words
        self.counters.add_read(Level.ORF, False, words)
        self.counters.add_write(Level.MRF, False, words)

    def _flush(self, live: FrozenSet[Register]) -> None:
        lrf_regs = list(self._lrf)
        rfc_regs = list(self._rfc)
        self._lrf.clear()
        self._rfc.clear()
        for reg in lrf_regs:
            if reg not in live:
                continue
            words = reg.num_words
            self.counters.add_read(Level.LRF, False, words)
            self.counters.add_write(Level.MRF, False, words)
        for reg in rfc_regs:
            if reg not in live:
                continue
            words = reg.num_words
            self.counters.add_read(Level.ORF, False, words)
            self.counters.add_write(Level.MRF, False, words)

    @property
    def resident_registers(self) -> FrozenSet[Register]:
        return frozenset(self._lrf) | frozenset(self._rfc)

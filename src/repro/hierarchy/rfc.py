"""Hardware-managed register file cache (RFC) — the prior-work baseline
(Section 2.2, Gebhart et al. ISCA 2011).

Per-thread FIFO cache in front of the MRF:

* every non-long-latency result is written into the RFC;
* reads check the RFC first and fall back to the MRF on a miss;
* a FIFO eviction of a *live* value costs an RFC read plus an MRF
  write (the write-back traffic the software scheme eliminates);
  static liveness information encoded in the binary elides write-back
  of dead values;
* when the two-level scheduler deschedules the warp (dependence on a
  long-latency operation), all live RFC contents are flushed to the
  MRF.

Because all threads of a warp execute in lockstep, cache state is
identical across a warp's threads; the model tracks one copy and counts
warp-level accesses.  Callers (the trace-driven accounting in
``repro.sim``) pass the statically-known live register set at each
eviction/flush point.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, List

from ..ir.registers import Register
from ..levels import Level
from .counters import SLOT_INDEX, AccessCounters


class RegisterFileCache:
    """FIFO register file cache for one warp."""

    def __init__(
        self,
        entries_per_thread: int,
        counters: AccessCounters,
        flush_on_backward_branch: bool = False,
    ) -> None:
        if entries_per_thread < 1:
            raise ValueError("RFC needs at least one entry per thread")
        self.capacity = entries_per_thread
        self.counters = counters
        self.flush_on_backward_branch = flush_on_backward_branch
        #: FIFO order: oldest first (residency only; values are not
        #: modelled here).
        self._resident: "OrderedDict[Register, None]" = OrderedDict()

    # -- trace hooks ---------------------------------------------------------

    def read(self, reg: Register, shared_unit: bool) -> Level:
        """Account one operand read; returns the level that serviced it."""
        words = reg.num_words
        if reg in self._resident:
            self.counters.add_read(Level.ORF, shared_unit, words)
            return Level.ORF
        self.counters.add_read(Level.MRF, shared_unit, words)
        return Level.MRF

    def write(
        self,
        reg: Register,
        shared_unit: bool,
        is_long_latency: bool,
        live_after: FrozenSet[Register],
    ) -> Level:
        """Account one result write; returns the level written.

        ``live_after`` is the set of registers live after the writing
        instruction — used to elide write-back of values that a FIFO
        eviction would otherwise spill.
        """
        words = reg.num_words
        if is_long_latency:
            # Long-latency results bypass the RFC (Section 6.1).
            self._resident.pop(reg, None)
            self.counters.add_write(Level.MRF, shared_unit, words)
            return Level.MRF
        if reg in self._resident:
            # Overwrite in place; FIFO position unchanged.
            self.counters.add_write(Level.ORF, shared_unit, words)
            return Level.ORF
        while len(self._resident) >= self.capacity:
            self._evict(live_after)
        self._resident[reg] = None
        self.counters.add_write(Level.ORF, shared_unit, words)
        return Level.ORF

    def on_deschedule(self, live: FrozenSet[Register]) -> None:
        """Two-level scheduler swapped the warp out: flush live values."""
        self._flush(live)

    def on_backward_branch(self, live: FrozenSet[Register]) -> None:
        if self.flush_on_backward_branch:
            self._flush(live)

    def finish(self) -> None:
        """End of the warp's execution; nothing is architecturally live."""
        self._resident.clear()

    # -- internals ---------------------------------------------------------

    def _evict(self, live: FrozenSet[Register]) -> None:
        reg, _ = self._resident.popitem(last=False)
        self._writeback(reg, live)

    def _flush(self, live: FrozenSet[Register]) -> None:
        regs = list(self._resident)
        self._resident.clear()
        for reg in regs:
            self._writeback(reg, live)

    def _writeback(self, reg: Register, live: FrozenSet[Register]) -> None:
        if reg not in live:
            return
        words = reg.num_words
        self.counters.add_read(Level.ORF, False, words)
        self.counters.add_write(Level.MRF, False, words)

    @property
    def resident_registers(self) -> FrozenSet[Register]:
        return frozenset(self._resident)


# ---------------------------------------------------------------------------
# columnar walk
# ---------------------------------------------------------------------------

#: Dense counter slots (see counters.COUNTER_SLOTS): ``_X_base + shared``
#: selects the shared-datapath variant.
_ORF_R = SLOT_INDEX[(Level.ORF, True, False)]
_ORF_W = SLOT_INDEX[(Level.ORF, False, False)]
_MRF_R = SLOT_INDEX[(Level.MRF, True, False)]
_MRF_W = SLOT_INDEX[(Level.MRF, False, False)]


def columnar_rfc_walk(
    program,
    words,
    capacity: int,
    flush_on_backward_branch: bool = False,
) -> List[int]:
    """Replay one compiled event program through the RFC model.

    ``program`` is a :func:`repro.sim.compiled.hardware_event_program`
    — the scheme-independent decode of one unique warp trace, with
    registers lowered to small integer ids and liveness to bitmasks —
    and ``words`` maps register id to word count.  The FIFO is a plain
    list of ids plus a residency bitmask; counters accumulate into a
    dense slot vector (:data:`repro.hierarchy.counters.COUNTER_SLOTS`).

    Behaviourally identical to driving :class:`RegisterFileCache`
    through :class:`repro.sim.accounting.HardwareAccounting` over the
    same trace; the scalar pair remains the differential oracle.
    """
    slots = [0] * len(SLOT_INDEX)
    fifo: List[int] = []
    resident = 0

    for (
        shared,
        reads,
        desched_mask,
        backward_mask,
        write_id,
        write_words,
        long_latency,
        live_after,
        _shared_consumed,
    ) in program:
        if desched_mask is not None:
            for rid in fifo:
                if desched_mask >> rid & 1:
                    width = words[rid]
                    slots[_ORF_R] += width
                    slots[_MRF_W] += width
            fifo.clear()
            resident = 0

        for rid, width in reads:
            if resident >> rid & 1:
                slots[_ORF_R + shared] += width
            else:
                slots[_MRF_R + shared] += width

        if backward_mask is not None and flush_on_backward_branch:
            for rid in fifo:
                if backward_mask >> rid & 1:
                    width = words[rid]
                    slots[_ORF_R] += width
                    slots[_MRF_W] += width
            fifo.clear()
            resident = 0

        if write_id >= 0:
            if long_latency:
                if resident >> write_id & 1:
                    resident &= ~(1 << write_id)
                    fifo.remove(write_id)
                slots[_MRF_W + shared] += write_words
            elif resident >> write_id & 1:
                # Overwrite in place; FIFO position unchanged.
                slots[_ORF_W + shared] += write_words
            else:
                while len(fifo) >= capacity:
                    evicted = fifo.pop(0)
                    resident &= ~(1 << evicted)
                    if live_after >> evicted & 1:
                        width = words[evicted]
                        slots[_ORF_R] += width
                        slots[_MRF_W] += width
                fifo.append(write_id)
                resident |= 1 << write_id
                slots[_ORF_W + shared] += write_words

    return slots

"""Register file hierarchy hardware models and access counting."""

from .counters import AccessCounters
from .hw_lrf import HardwareThreeLevel
from .rfc import RegisterFileCache

__all__ = [
    "AccessCounters",
    "HardwareThreeLevel",
    "RegisterFileCache",
]

"""Access counting across the register file hierarchy.

Every result in the paper's evaluation is a function of how many warp
operand reads and writes hit each level (Figures 11, 12) combined with
the energy model (Figures 13-15).  :class:`AccessCounters` is the shared
currency: the software accounting pass, the hardware RFC/LRF simulators,
and the baseline all produce one.

Counts are warp-level operand accesses of 32-bit words: a 64-bit operand
counts as two accesses.  Reads and writes are tagged with whether the
datapath on the other end is shared (SFU/MEM/TEX) or private (ALU),
because wire energy differs (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

from ..levels import ALL_LEVELS, Level

#: Counter key: (level, is_read, shared_unit).
CounterKey = Tuple[Level, bool, bool]

#: Dense slot layout for the columnar hardware walks: every counter a
#: hardware model can touch, in a fixed order.  ``shared`` is the
#: fastest-varying bit, so ``slot(level, is_read, False) + 1`` is the
#: shared-datapath variant of the same counter.
COUNTER_SLOTS: Tuple[CounterKey, ...] = tuple(
    (level, is_read, shared)
    for level in (Level.LRF, Level.ORF, Level.MRF)
    for is_read in (True, False)
    for shared in (False, True)
)

#: CounterKey -> dense slot index (inverse of ``COUNTER_SLOTS``).
SLOT_INDEX: Dict[CounterKey, int] = {
    key: index for index, key in enumerate(COUNTER_SLOTS)
}


def counters_from_slots(slots: Sequence[float]) -> AccessCounters:
    """Rehydrate an :class:`AccessCounters` from a dense slot vector.

    Zero slots are dropped so the result is key-for-key comparable with
    counters built incrementally by the scalar drivers (which never
    materialise untouched keys).
    """
    counters = AccessCounters()
    counts = counters.counts
    for key, value in zip(COUNTER_SLOTS, slots):
        if value:
            counts[key] = value
    return counters


@dataclass
class AccessCounters:
    """Read/write counts per hierarchy level and datapath class."""

    counts: Dict[CounterKey, int] = field(default_factory=dict)

    def add_read(
        self, level: Level, shared_unit: bool = False, count: int = 1
    ) -> None:
        key = (level, True, shared_unit)
        self.counts[key] = self.counts.get(key, 0) + count

    def add_write(
        self, level: Level, shared_unit: bool = False, count: int = 1
    ) -> None:
        key = (level, False, shared_unit)
        self.counts[key] = self.counts.get(key, 0) + count

    def merge(self, other: "AccessCounters") -> None:
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count

    def scaled(self, factor: float) -> "AccessCounters":
        """A copy with every count multiplied by ``factor``.

        Used to weight per-path static counts by dynamic path execution
        frequencies.  Counts become floats conceptually; we keep them as
        numbers and never require integrality downstream.
        """
        result = AccessCounters()
        for key, count in self.counts.items():
            result.counts[key] = count * factor  # type: ignore[assignment]
        return result

    # -- queries (the units of Figures 11 and 12) --------------------------

    def reads(self, level: Level) -> float:
        return sum(
            count
            for (lvl, is_read, _), count in self.counts.items()
            if lvl is level and is_read
        )

    def writes(self, level: Level) -> float:
        return sum(
            count
            for (lvl, is_read, _), count in self.counts.items()
            if lvl is level and not is_read
        )

    def total_reads(self) -> float:
        return sum(self.reads(level) for level in ALL_LEVELS)

    def total_writes(self) -> float:
        return sum(self.writes(level) for level in ALL_LEVELS)

    def read_breakdown(self) -> Dict[Level, float]:
        return {level: self.reads(level) for level in ALL_LEVELS}

    def write_breakdown(self) -> Dict[Level, float]:
        return {level: self.writes(level) for level in ALL_LEVELS}

    def items(self) -> Iterable[Tuple[CounterKey, float]]:
        return self.counts.items()

    def copy(self) -> "AccessCounters":
        return AccessCounters(dict(self.counts))

"""Content-addressed on-disk cache.

Layout: ``<root>/<kind>/<key[:2]>/<key>.<json|pkl>`` where ``key`` is a
SHA-256 hex fingerprint of everything that determines the entry's
value.  Writes are atomic (temp file + ``os.replace``) so concurrent
runs sharing one cache directory can only ever observe complete
entries.  Unreadable or corrupt entries are treated as misses and
removed — the cache is a pure accelerator, never a source of truth.

Evaluation records and study results are JSON (inspectable, durable);
trace sets are pickled (an order of magnitude faster to round-trip and
never loaded from outside the cache directory the run itself names).

With ``max_bytes`` set the cache is bounded: whenever the running size
estimate crosses the cap after a write, entries are pruned
oldest-mtime-first until the directory fits again.  Eviction can only
cost recomputation (every entry is a pure function of its key), so the
cap trades disk for warm-start speed and nothing else.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from typing import Any, List, Optional, Tuple


class DiskCache:
    """Content-addressed file store rooted at one directory."""

    def __init__(self, root: str, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when set")
        self.root = root
        self.max_bytes = max_bytes
        try:
            os.makedirs(root, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"cache dir {root!r} exists and is not a directory"
            ) from None
        # Running size estimate; exact numbers are re-measured on prune.
        self._estimated_bytes = (
            sum(size for _, _, size in self._entries())
            if max_bytes is not None
            else 0
        )

    def _path(self, kind: str, key: str, suffix: str) -> str:
        return os.path.join(self.root, kind, key[:2], f"{key}.{suffix}")

    def _read(self, path: str, loader) -> Optional[Any]:
        try:
            with open(path, "rb") as handle:
                return loader(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, pickle.UnpicklingError, EOFError):
            # Corrupt or torn entry: drop it and report a miss.
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _write(self, path: str, payload: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=directory, delete=False
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.remove(handle.name)
            except OSError:
                pass
            return
        if self.max_bytes is not None:
            self._estimated_bytes += len(payload)
            if self._estimated_bytes > self.max_bytes:
                self._prune()

    # -- size cap ----------------------------------------------------------

    def _entries(self) -> List[Tuple[str, float, int]]:
        """Every cache entry as (path, mtime, size)."""
        entries: List[Tuple[str, float, int]] = []
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                path = os.path.join(dirpath, filename)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((path, stat.st_mtime, stat.st_size))
        return entries

    def _prune(self) -> None:
        """Delete oldest-mtime entries until the cache fits the cap."""
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        if self.max_bytes is not None and total > self.max_bytes:
            # Ties on mtime break by path so pruning is deterministic.
            for path, _, size in sorted(entries, key=lambda e: (e[1], e[0])):
                if total <= self.max_bytes:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                total -= size
        self._estimated_bytes = total

    # -- JSON entries ------------------------------------------------------

    def get_json(self, kind: str, key: str) -> Optional[Any]:
        return self._read(
            self._path(kind, key, "json"),
            lambda handle: json.loads(handle.read().decode("utf-8")),
        )

    def put_json(self, kind: str, key: str, value: Any) -> None:
        payload = json.dumps(value, sort_keys=True).encode("utf-8")
        self._write(self._path(kind, key, "json"), payload)

    # -- pickle entries ----------------------------------------------------

    def get_pickle(self, kind: str, key: str) -> Optional[Any]:
        return self._read(self._path(kind, key, "pkl"), pickle.load)

    def put_pickle(self, kind: str, key: str, value: Any) -> None:
        self._write(
            self._path(kind, key, "pkl"),
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )

"""Content-addressed on-disk cache.

Layout: ``<root>/<kind>/<key[:2]>/<key>.<json|pkl>`` where ``key`` is a
SHA-256 hex fingerprint of everything that determines the entry's
value.  Writes are atomic (temp file + ``os.replace``) so concurrent
runs sharing one cache directory can only ever observe complete
entries.  Unreadable or corrupt entries are treated as misses and
removed — the cache is a pure accelerator, never a source of truth.

Evaluation records and study results are JSON (inspectable, durable);
trace sets are pickled (an order of magnitude faster to round-trip and
never loaded from outside the cache directory the run itself names).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from typing import Any, Optional


class DiskCache:
    """Content-addressed file store rooted at one directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        try:
            os.makedirs(root, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"cache dir {root!r} exists and is not a directory"
            ) from None

    def _path(self, kind: str, key: str, suffix: str) -> str:
        return os.path.join(self.root, kind, key[:2], f"{key}.{suffix}")

    def _read(self, path: str, loader) -> Optional[Any]:
        try:
            with open(path, "rb") as handle:
                return loader(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, pickle.UnpicklingError, EOFError):
            # Corrupt or torn entry: drop it and report a miss.
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _write(self, path: str, payload: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=directory, delete=False
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.remove(handle.name)
            except OSError:
                pass

    # -- JSON entries ------------------------------------------------------

    def get_json(self, kind: str, key: str) -> Optional[Any]:
        return self._read(
            self._path(kind, key, "json"),
            lambda handle: json.loads(handle.read().decode("utf-8")),
        )

    def put_json(self, kind: str, key: str, value: Any) -> None:
        payload = json.dumps(value, sort_keys=True).encode("utf-8")
        self._write(self._path(kind, key, "json"), payload)

    # -- pickle entries ----------------------------------------------------

    def get_pickle(self, kind: str, key: str) -> Optional[Any]:
        return self._read(self._path(kind, key, "pkl"), pickle.load)

    def put_pickle(self, kind: str, key: str, value: Any) -> None:
        self._write(
            self._path(kind, key, "pkl"),
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )

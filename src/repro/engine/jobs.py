"""Process-pool jobs: picklable descriptions, deterministic rebuilds.

A job never carries a kernel or a trace across the process boundary —
only the workload's registry name, the suite scale, and the (frozen,
picklable) scheme.  Workers rebuild the workload with
:func:`repro.workloads.suites.get_workload`, which is deterministic, so
a worker's evaluation record is bit-identical to the record the parent
would have computed itself.  That property is what lets the parent
merge pool results in submission order and still produce byte-identical
figure output.

Workers keep per-process memos (traces per workload, allocations per
config) so a worker that receives several schemes for one workload
only traces and allocates it once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..sim.runner import TraceSet, build_traces, evaluate_traces
from ..sim.schemes import Scheme
from ..workloads.suites import get_workload
from .records import record_payload


@dataclass(frozen=True)
class EvaluationJob:
    """Evaluate one registry workload under one scheme."""

    workload: str
    scale: float
    scheme: Scheme


#: Per-worker-process memos, keyed by (workload name, scale).
_WORKER_TRACES: Dict[Tuple[str, float], TraceSet] = {}
_WORKER_ALLOCATIONS: Dict = {}


def _worker_traces(workload: str, scale: float) -> TraceSet:
    key = (workload, scale)
    traces = _WORKER_TRACES.get(key)
    if traces is None:
        spec = get_workload(workload, scale)
        traces = build_traces(spec.kernel, spec.warp_inputs)
        _WORKER_TRACES[key] = traces
    return traces


def run_evaluation_job(job: EvaluationJob) -> Dict[str, Any]:
    """Worker entry point: returns the JSON evaluation record."""
    traces = _worker_traces(job.workload, job.scale)
    evaluation = evaluate_traces(
        traces, job.scheme, allocation_memo=_WORKER_ALLOCATIONS
    )
    return record_payload(evaluation)

"""Job-based experiment engine: memoization, fan-out, run metrics.

See :mod:`repro.engine.engine` for the architecture overview and
``docs/architecture.md`` ("Experiment engine") for cache keying, merge
determinism, and the metrics JSON schema.
"""

from .engine import ExperimentEngine
from .jobs import EvaluationJob
from .metrics import RunMetrics

__all__ = ["ExperimentEngine", "EvaluationJob", "RunMetrics"]

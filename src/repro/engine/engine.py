"""The experiment engine: memoized, optionally parallel evaluation.

One :class:`ExperimentEngine` instance serves a whole CLI run.  It
layers three content-addressed stores:

* an in-memory *record* memo — (trace-set fingerprint, scheme) to
  evaluation record; deduplicates identical evaluations across figures
  within one run (the sensitivity sweep alone re-evaluates the same
  pair thirty times);
* an in-memory *allocation* memo — (kernel fingerprint, allocation
  config, energy model) to ``AllocationResult``; every software-scheme
  evaluation allocates a clone, so this is what keeps cloning free;
* an optional on-disk :class:`DiskCache` holding evaluation records,
  study results (JSON) and trace sets (pickle) across runs.

Parallelism is a *prefetch*: the parent computes the exact job list a
figure run will need, fans cache misses across a
``concurrent.futures`` process pool, and stores results in submission
order.  Figure drivers then run serially and hit the memo, so their
merge order — and therefore the formatted output — is byte-identical
to a serial run.  Workers rebuild workloads from the registry by name
(see :mod:`repro.engine.jobs`); evaluation is deterministic, so a
record's value does not depend on which process computed it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.kernel import Kernel
from ..obs.tracer import TRACER
from ..sim.executor import WarpInput
from ..sim.runner import (
    AllocationMemo,
    KernelEvaluation,
    TraceSet,
    build_traces,
    evaluate_traces,
    evaluate_traces_batch,
)
from ..sim.schemes import Scheme
from ..workloads.suites import BENCHMARK_NAMES
from .cache import DiskCache
from .hashing import digest, warp_inputs_fingerprint
from .jobs import EvaluationJob, run_evaluation_job
from .metrics import RunMetrics
from .records import (
    evaluation_from_payload,
    payload_is_valid,
    record_key,
    record_payload,
    trace_payload_is_valid,
    traceset_from_payload,
    traceset_to_payload,
)


class ExperimentEngine:
    """Memoized experiment evaluation with optional fan-out."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        metrics: Optional[RunMetrics] = None,
        cache_max_bytes: Optional[int] = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = (
            DiskCache(cache_dir, max_bytes=cache_max_bytes)
            if cache_dir
            else None
        )
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.allocation_memo: AllocationMemo = {}
        self._records: Dict[str, Dict[str, Any]] = {}
        self._studies: Dict[str, Any] = {}

    # -- traces ------------------------------------------------------------

    def build_traces(
        self, kernel: Kernel, warp_inputs: Sequence[WarpInput]
    ) -> TraceSet:
        """Execute the workload's warps, or load them from the cache."""
        with self.metrics.stage("traces"):
            if self.cache is None:
                return build_traces(kernel, warp_inputs)
            key = digest(
                "traces",
                kernel.content_fingerprint(),
                warp_inputs_fingerprint(warp_inputs),
            )
            payload = self.cache.get_pickle("traces", key)
            if payload is not None and trace_payload_is_valid(
                payload, kernel
            ):
                self.metrics.count("trace_cache_hits")
                return traceset_from_payload(kernel, payload)
            self.metrics.count("trace_cache_misses")
            traces = build_traces(kernel, warp_inputs)
            self.cache.put_pickle("traces", key, traceset_to_payload(traces))
            return traces

    # -- evaluation records ------------------------------------------------

    def _lookup_record(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._records.get(key)
        if payload is not None:
            self.metrics.count("record_memo_hits")
            return payload
        if self.cache is not None:
            payload = self.cache.get_json("records", key)
            if payload is not None and payload_is_valid(payload):
                self.metrics.count("record_disk_hits")
                self._records[key] = payload
                return payload
        return None

    def _store_record(self, key: str, payload: Dict[str, Any]) -> None:
        self._records[key] = payload
        if self.cache is not None:
            self.cache.put_json("records", key, payload)

    def evaluate(self, traces: TraceSet, scheme: Scheme) -> KernelEvaluation:
        """Account ``traces`` under ``scheme``, memoized at every layer."""
        key = record_key(traces, scheme)
        payload = self._lookup_record(key)
        if payload is not None:
            return evaluation_from_payload(payload, scheme)
        self.metrics.count("record_misses")
        with self.metrics.stage("evaluate"):
            with TRACER.span(
                "engine.evaluate",
                kernel=traces.kernel.name,
                scheme=scheme.name,
            ):
                evaluation = evaluate_traces(
                    traces, scheme, allocation_memo=self.allocation_memo
                )
        self._store_record(key, record_payload(evaluation))
        return evaluation

    def evaluate_batch(
        self, traces: TraceSet, schemes: Sequence[Scheme]
    ) -> List[KernelEvaluation]:
        """Account ``traces`` under every scheme, sharing batched work.

        Record-memo misses are evaluated together through
        :func:`~repro.sim.runner.evaluate_traces_batch`, so all
        software schemes share one kernel analysis (and, on the
        compiled path, hardware schemes share one trace walk).  The
        returned records are identical to per-scheme :meth:`evaluate`
        calls — which is how they are served, from the freshly filled
        memo.
        """
        missing: List[Scheme] = []
        seen = set()
        for scheme in schemes:
            key = record_key(traces, scheme)
            if key in seen or self._lookup_record(key) is not None:
                continue
            seen.add(key)
            missing.append(scheme)
        if missing:
            self.metrics.count("record_misses", len(missing))
            with self.metrics.stage("evaluate"):
                with TRACER.span(
                    "engine.evaluate_batch",
                    kernel=traces.kernel.name,
                    schemes=len(missing),
                ):
                    evaluations = evaluate_traces_batch(
                        traces,
                        missing,
                        allocation_memo=self.allocation_memo,
                    )
            for scheme, evaluation in zip(missing, evaluations):
                self._store_record(
                    record_key(traces, scheme), record_payload(evaluation)
                )
        return [self.evaluate(traces, scheme) for scheme in schemes]

    # -- study-level memoization -------------------------------------------

    def memo_study(
        self, parts: Sequence[str], compute: Callable[[], Any]
    ) -> Any:
        """Memoize a pure, JSON-serializable study result.

        ``parts`` must fingerprint every input the study depends on
        (suite fingerprint, configs, models, parameters); ``compute``
        runs on a miss.
        """
        key = digest("study", *parts)
        if key in self._studies:
            self.metrics.count("study_memo_hits")
            return self._studies[key]
        if self.cache is not None:
            cached = self.cache.get_json("studies", key)
            if cached is not None:
                self.metrics.count("study_disk_hits")
                self._studies[key] = cached["value"]
                return cached["value"]
        self.metrics.count("study_misses")
        with self.metrics.stage("studies"):
            value = compute()
        self._studies[key] = value
        if self.cache is not None:
            self.cache.put_json("studies", key, {"schema": 1, "value": value})
        return value

    # -- parallel prefetch -------------------------------------------------

    def prefetch(
        self,
        items: Sequence[Tuple[Any, TraceSet]],
        schemes: Sequence[Scheme],
        scale: float = 1.0,
    ) -> None:
        """Fill the record memo for every (workload, scheme) pair.

        Cache misses for registry workloads fan out across a process
        pool when ``jobs > 1``; anything that cannot be shipped to a
        worker (non-registry workloads, pool start-up failure) is
        evaluated inline, so prefetch never changes results — only
        where and when they are computed.
        """
        pool_jobs: List[Tuple[str, EvaluationJob]] = []
        inline: List[Tuple[str, TraceSet, Scheme]] = []
        seen = set()
        for spec, traces in items:
            for scheme in schemes:
                key = record_key(traces, scheme)
                if key in seen or self._lookup_record(key) is not None:
                    continue
                seen.add(key)
                name = getattr(spec, "name", None)
                if self.jobs > 1 and name in BENCHMARK_NAMES:
                    pool_jobs.append(
                        (key, EvaluationJob(name, scale, scheme))
                    )
                else:
                    inline.append((key, traces, scheme))

        if pool_jobs:
            self.metrics.count("jobs_submitted", len(pool_jobs))
            with self.metrics.stage("prefetch"):
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    chunksize = max(1, len(pool_jobs) // (self.jobs * 4))
                    with ProcessPoolExecutor(
                        max_workers=self.jobs
                    ) as pool:
                        results = list(
                            pool.map(
                                run_evaluation_job,
                                [job for _, job in pool_jobs],
                                chunksize=chunksize,
                            )
                        )
                    for (key, _), payload in zip(pool_jobs, results):
                        self._store_record(key, payload)
                    self.metrics.count("jobs_completed", len(pool_jobs))
                except Exception:
                    # Pool unavailable (restricted environment) or a
                    # worker died: fall back to computing inline.
                    self.metrics.count("jobs_failed", len(pool_jobs))
                    by_key = {
                        record_key(traces, scheme): (traces, scheme)
                        for _, traces in items
                        for scheme in schemes
                    }
                    for key, _ in pool_jobs:
                        if self._records.get(key) is None:
                            traces, scheme = by_key[key]
                            self.evaluate(traces, scheme)

        # Inline evaluations are grouped per trace set so batched
        # misses share one kernel analysis across schemes.
        grouped: Dict[int, Tuple[TraceSet, List[Scheme]]] = {}
        for key, traces, scheme in inline:
            entry = grouped.setdefault(id(traces), (traces, []))
            entry[1].append(scheme)
        for traces, batch in grouped.values():
            self.evaluate_batch(traces, batch)

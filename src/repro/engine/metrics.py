"""Run metrics: per-stage wall time, cache/job counters, gauges, and
latency histograms.

Every engine run accumulates one :class:`RunMetrics`.  The JSON schema
(``schema`` = 3) is::

    {
      "schema": 3,
      "stages":   {"traces": 0.41, "evaluate": 3.2, "prefetch": 1.8},
      "counters": {"record_memo_hits": 120, "record_disk_hits": 36,
                   "record_misses": 42, "trace_cache_hits": 36,
                   "jobs_submitted": 42, "jobs_completed": 42, ...},
      "gauges":   {"service_in_flight": 3, "service_queue_depth": 1},
      "histograms": {
        "http_request_seconds": {"bounds": [...], "bucket_counts": [...],
                                 "sum": 1.25, "count": 240}
      }
    }

Stage values are wall-clock seconds summed over all entries into that
stage; counters are monotone event counts; gauges are point-in-time
samples (last write wins — the allocation service publishes its queue
depth and in-flight count here); histograms are fixed-bucket latency
distributions (:class:`repro.obs.registry.Histogram`).  Unknown keys
must be ignored by consumers so the schema can grow: schema 2 added
``gauges``, schema 3 added ``histograms``, and readers of older
documents must treat the missing key as empty.

``stage`` additionally opens a tracer span (``repro.obs.tracer``) and,
when a :class:`repro.obs.profiling.StageProfiler` is installed, runs
the body under per-stage cProfile — both no-ops by default.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

from ..obs import profiling
from ..obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    render_prometheus,
)
from ..obs.tracer import TRACER

SCHEMA_VERSION = 3

#: Counter prefixes that belong to the service layer (request dedup,
#: memoisation in front of the engine) rather than the engine caches.
SERVICE_COUNTER_PREFIXES = ("service_", "inflight_")


@dataclass
class RunMetrics:
    """Wall-time per stage, monotone event counters, point-in-time
    gauges, and fixed-bucket histograms for one run."""

    stages: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate wall time spent in the ``with`` body into
        ``stages[name]`` (re-entrant across separate calls), observe it
        into the ``stage_{name}_seconds`` histogram, and open a tracer
        span.  Profiled per stage when a StageProfiler is installed."""
        with ExitStack() as stack:
            stack.enter_context(TRACER.span(f"stage.{name}"))
            profiler = profiling.current()
            if profiler is not None:
                stack.enter_context(profiler.stage(name))
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.stages[name] = self.stages.get(name, 0.0) + elapsed
                self.observe(f"stage_{name}_seconds", elapsed)

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time sample; the last write wins."""
        self.gauges[name] = value

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get-or-create a named histogram (first caller fixes buckets)."""
        existing = self.histograms.get(name)
        if existing is None:
            existing = Histogram(buckets)
            self.histograms[name] = existing
        return existing

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        self.histogram(name, buckets).observe(value)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "stages": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stages.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Rehydrate from any schema ≥ 1 document (missing keys empty)."""
        metrics = cls(
            stages=dict(data.get("stages", {})),  # type: ignore[arg-type]
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            gauges=dict(data.get("gauges", {})),  # type: ignore[arg-type]
        )
        for name, payload in data.get("histograms", {}).items():  # type: ignore[union-attr]
            metrics.histograms[name] = Histogram.from_dict(payload)
        return metrics

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition v0.0.4 of the current snapshot."""
        return render_prometheus(self.to_dict(), namespace=namespace)

    def write(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def summary(self) -> str:
        """One-line human summary for CLI stderr.

        Engine cache hits/misses exclude service-layer dedup counters
        (``service_*``, ``inflight_*``) — those are reported separately
        so the engine cache line is not inflated by request dedup.
        """
        stage_text = " ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(self.stages.items())
        )
        engine_hits = engine_misses = 0
        service_hits = service_misses = 0
        for name, count in self.counters.items():
            is_service = name.startswith(SERVICE_COUNTER_PREFIXES)
            if name.endswith("_hits"):
                if is_service:
                    service_hits += count
                else:
                    engine_hits += count
            elif name.endswith("_misses"):
                if is_service:
                    service_misses += count
                else:
                    engine_misses += count
        text = (
            f"engine: {stage_text} cache_hits={engine_hits} "
            f"cache_misses={engine_misses}"
        )
        if service_hits or service_misses:
            text += (
                f" service_hits={service_hits}"
                f" service_misses={service_misses}"
            )
        return text

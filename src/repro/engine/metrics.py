"""Run metrics: per-stage wall time plus cache and job counters.

Every engine run accumulates one :class:`RunMetrics`.  The JSON schema
(``schema`` = 2) is::

    {
      "schema": 2,
      "stages":   {"traces": 0.41, "evaluate": 3.2, "prefetch": 1.8},
      "counters": {"record_memo_hits": 120, "record_disk_hits": 36,
                   "record_misses": 42, "trace_cache_hits": 36,
                   "jobs_submitted": 42, "jobs_completed": 42, ...},
      "gauges":   {"service_in_flight": 3, "service_queue_depth": 1}
    }

Stage values are wall-clock seconds summed over all entries into that
stage; counters are monotone event counts; gauges are point-in-time
samples (last write wins — the allocation service publishes its queue
depth and in-flight count here).  Unknown keys must be ignored by
consumers so the schema can grow; schema 2 added ``gauges`` and
readers of schema-1 documents must treat a missing ``gauges`` as
empty.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

SCHEMA_VERSION = 2


@dataclass
class RunMetrics:
    """Wall-time per stage, monotone event counters, and point-in-time
    gauges for one run."""

    stages: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate wall time spent in the ``with`` body into
        ``stages[name]`` (re-entrant across separate calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time sample; the last write wins."""
        self.gauges[name] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "stages": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stages.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def summary(self) -> str:
        """One-line human summary for CLI stderr."""
        stage_text = " ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(self.stages.items())
        )
        hits = sum(
            count
            for name, count in self.counters.items()
            if name.endswith("_hits")
        )
        misses = sum(
            count
            for name, count in self.counters.items()
            if name.endswith("_misses")
        )
        return f"engine: {stage_text} cache_hits={hits} cache_misses={misses}"

"""Serializable evaluation records and their cache keys.

A *record* is the JSON image of one :class:`KernelEvaluation` — the
part every figure driver consumes (scheme and baseline counters plus
the dynamic instruction count).  The ``AllocationResult`` itself is
deliberately not in the record: no driver reads it through the engine,
and the in-memory allocation memo already deduplicates allocator runs
within a process.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..hierarchy.counters import AccessCounters
from ..levels import Level
from ..sim.runner import KernelEvaluation, TraceSet
from ..sim.schemes import Scheme
from .hashing import dataclass_fingerprint, digest, traceset_fingerprint

RECORD_SCHEMA = 1


def record_key(traces: TraceSet, scheme: Scheme) -> str:
    """Cache key of one (trace set, scheme) evaluation."""
    return digest(
        "evaluation",
        traceset_fingerprint(traces),
        dataclass_fingerprint(scheme),
    )


def counters_to_payload(counters: AccessCounters) -> List[List[Any]]:
    return sorted(
        [level.name, bool(is_read), bool(shared), count]
        for (level, is_read, shared), count in counters.counts.items()
    )


def counters_from_payload(payload: List[List[Any]]) -> AccessCounters:
    counters = AccessCounters()
    for level_name, is_read, shared, count in payload:
        counters.counts[(Level[level_name], bool(is_read), bool(shared))] = (
            count
        )
    return counters


def record_payload(evaluation: KernelEvaluation) -> Dict[str, Any]:
    return {
        "schema": RECORD_SCHEMA,
        "kernel_name": evaluation.kernel_name,
        "counters": counters_to_payload(evaluation.counters),
        "baseline": counters_to_payload(evaluation.baseline),
        "dynamic_instructions": evaluation.dynamic_instructions,
    }


def evaluation_from_payload(
    payload: Dict[str, Any], scheme: Scheme
) -> KernelEvaluation:
    return KernelEvaluation(
        kernel_name=payload["kernel_name"],
        scheme=scheme,
        counters=counters_from_payload(payload["counters"]),
        baseline=counters_from_payload(payload["baseline"]),
        dynamic_instructions=payload["dynamic_instructions"],
        allocation=None,
    )


def payload_is_valid(payload: Any) -> bool:
    return (
        isinstance(payload, dict)
        and payload.get("schema") == RECORD_SCHEMA
        and "counters" in payload
        and "baseline" in payload
    )


# -- trace round-trip ------------------------------------------------------
#
# A cached trace stores only (position, flags) per event; instruction
# objects are re-resolved against the kernel at load time, so a loaded
# TraceSet aliases the caller's kernel exactly like a fresh build.

def traceset_to_payload(traces: TraceSet) -> Dict[str, Any]:
    return {
        "schema": RECORD_SCHEMA,
        "kernel": traces.kernel.content_fingerprint(),
        "warps": [
            [event.columns() for event in trace]
            for trace in traces.warp_traces
        ],
    }


def traceset_from_payload(kernel, payload: Dict[str, Any]) -> TraceSet:
    from ..sim.executor import TraceEvent

    layout = list(kernel.instructions())
    warp_traces = [
        [
            TraceEvent(
                ref=layout[position][0],
                instruction=layout[position][1],
                guard_passed=guard_passed,
                branch_taken=branch_taken,
                active_mask=active_mask,
                exec_mask=exec_mask,
            )
            for (
                position,
                guard_passed,
                branch_taken,
                active_mask,
                exec_mask,
            ) in trace
        ]
        for trace in payload["warps"]
    ]
    return TraceSet(kernel, warp_traces)


def trace_payload_is_valid(payload: Any, kernel) -> bool:
    return (
        isinstance(payload, dict)
        and payload.get("schema") == RECORD_SCHEMA
        and payload.get("kernel") == kernel.content_fingerprint()
        and isinstance(payload.get("warps"), list)
    )

"""Content fingerprints for the engine's cache keys.

Every cache key is derived from *content*, never from object identity:
two structurally identical kernels (or warp-input sets, or schemes)
fingerprint identically regardless of where they were built.  This is
what makes the cache safe across processes and across runs — and what
makes it a correctness feature, not just a speedup: a key can only hit
when the inputs that determine the result are bit-equal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Iterable, Sequence

#: Field/part separator that cannot collide with repr() output.
_SEP = "\x1f"


def digest(*parts: str) -> str:
    """SHA-256 hex digest of the given canonical text parts."""
    return hashlib.sha256(_SEP.join(parts).encode("utf-8")).hexdigest()


def value_text(value: object) -> str:
    """Deterministic canonical text for fingerprintable values.

    Supports the types that appear in engine keys: primitives, enums,
    frozen dataclasses (recursively), and homogeneous containers.
    Dicts are sorted by key text so iteration order never leaks in.
    """
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{spec.name}={value_text(getattr(value, spec.name))}"
            for spec in fields(value)
        )
        return f"{type(value).__name__}({inner})"
    if isinstance(value, dict):
        items = sorted(
            (value_text(key), value_text(item))
            for key, item in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(value_text(item) for item in value) + "]"
    if isinstance(value, frozenset):
        return "{" + ",".join(sorted(value_text(item) for item in value)) + "}"
    return repr(value)


def dataclass_fingerprint(value: object) -> str:
    """Fingerprint of one (frozen) dataclass — schemes, configs, models."""
    return digest(value_text(value))


def json_fingerprint(value: object) -> str:
    """Fingerprint of a JSON-serializable value.

    Canonicalised through ``json.dumps`` with sorted keys and fixed
    separators, so two structurally equal request bodies fingerprint
    identically regardless of key order or whitespace.  This is the
    dedup key for service request payloads (warp specs, scheme JSON).
    """
    return digest(
        "json", json.dumps(value, sort_keys=True, separators=(",", ":"))
    )


def warp_input_fingerprint(warp_input) -> str:
    """Fingerprint of one :class:`repro.sim.executor.WarpInput`."""
    live_in = sorted(
        (str(reg), repr(value))
        for reg, value in warp_input.live_in_values.items()
    )
    parts = [
        "live_in=" + ",".join(f"{reg}={val}" for reg, val in live_in),
        f"max_instructions={warp_input.max_instructions}",
    ]
    memory = warp_input.memory
    if memory is None:
        parts.append("memory=None")
    else:
        parts.append(
            f"memory=seed:{memory.seed}"
            f";global:{value_text(memory.global_mem)}"
            f";shared:{value_text(memory.shared_mem)}"
        )
    return digest(*parts)


def warp_inputs_fingerprint(warp_inputs: Sequence) -> str:
    """Order-sensitive fingerprint of a warp-input sequence."""
    return digest(
        str(len(warp_inputs)),
        *[warp_input_fingerprint(warp_input) for warp_input in warp_inputs],
    )


def traceset_fingerprint(traces) -> str:
    """Fingerprint of a materialised :class:`TraceSet`.

    Hashes the kernel's architectural content plus the compiled
    columnar form of the dynamic event stream: each *unique* warp
    trace's column bytes are digested once, and the per-warp sequence
    of unique-trace digests keeps the fingerprint order-sensitive over
    warps.  Any two trace sets that would account identically share a
    fingerprint.  Cached on the instance: traces are immutable once
    materialised.
    """
    cached = getattr(traces, "_content_fingerprint", None)
    if cached is not None:
        return cached
    from ..sim.compiled import compile_traces

    compiled = compile_traces(traces)
    hasher = hashlib.sha256()
    hasher.update(traces.kernel.content_fingerprint().encode("ascii"))
    digests = [trace.content_digest() for trace in compiled.unique]
    for index in compiled.warp_to_unique:
        hasher.update(b"|warp|")
        hasher.update(digests[index].encode("ascii"))
    fingerprint = hasher.hexdigest()
    traces._content_fingerprint = fingerprint
    return fingerprint


def suite_fingerprint(items: Iterable) -> str:
    """Fingerprint of a whole suite: every workload's trace set, in
    order.  Keys study-level memo entries (limit study, variable ORF)."""
    return digest(*[traceset_fingerprint(traces) for _, traces in items])

"""The levels of the register file hierarchy.

Shared by the compiler (allocation annotations), the hardware models, and
the energy accounting.  Section 3 of the paper defines the three-level
hierarchy: a one-entry-per-thread last result file (LRF), a small operand
register file (ORF), and the large main register file (MRF).
"""

from __future__ import annotations

import enum


class Level(enum.Enum):
    """A level of the register file hierarchy.

    Ordered from cheapest (closest to the ALUs) to most expensive: the
    LRF costs the least energy per access, the MRF the most.
    """

    LRF = "lrf"
    ORF = "orf"
    MRF = "mrf"

    @property
    def rank(self) -> int:
        """0 for LRF, 1 for ORF, 2 for MRF (cheapest first)."""
        return _RANKS[self]

    def __lt__(self, other: "Level") -> bool:
        if not isinstance(other, Level):
            return NotImplemented
        return self.rank < other.rank

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value.upper()


_RANKS = {Level.LRF: 0, Level.ORF: 1, Level.MRF: 2}

#: The hierarchy from cheapest to most expensive.
ALL_LEVELS = (Level.LRF, Level.ORF, Level.MRF)

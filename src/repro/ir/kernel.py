"""Kernels: the unit of compilation and execution.

A :class:`Kernel` is an ordered list of basic blocks (layout order
defines fall-through edges and the forward/backward direction of
branches) plus the set of live-in registers that the runtime
pre-populates before the kernel starts (thread id, kernel parameters,
base addresses).  The allocator runs per kernel (Section 5.1: "our
static register allocation pass on each kernel").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .basic_block import BasicBlock
from .instructions import Instruction
from .registers import Register


class KernelValidationError(ValueError):
    """Raised when a kernel is structurally malformed."""


@dataclass(frozen=True)
class InstructionRef:
    """A stable reference to one static instruction within a kernel.

    ``block_index`` is the block's position in layout order and
    ``instr_index`` the instruction's position within the block.
    ``position`` is the global static issue-slot index used by the
    allocator's occupancy heuristic (Figure 7 divides energy savings by
    the number of static instruction issue slots a value occupies).
    """

    block_index: int
    instr_index: int
    position: int

    def __lt__(self, other: "InstructionRef") -> bool:
        return self.position < other.position


def _instruction_content(instruction: Instruction) -> str:
    """Canonical annotation-free text of one instruction."""
    guard = ""
    if instruction.guard is not None:
        sense = "" if instruction.guard_sense else "!"
        guard = f"@{sense}{instruction.guard} "
    operands = []
    if instruction.dst is not None:
        operands.append(str(instruction.dst))
    operands.extend(str(src) for src in instruction.srcs)
    if instruction.target is not None:
        operands.append(instruction.target)
    return f"{guard}{instruction.opcode.value} {', '.join(operands)}"


class Kernel:
    """A compiled kernel: named, ordered basic blocks plus live-ins."""

    def __init__(
        self,
        name: str,
        blocks: Sequence[BasicBlock],
        live_in: Sequence[Register] = (),
    ) -> None:
        self.name = name
        self.blocks: List[BasicBlock] = list(blocks)
        self.live_in: Tuple[Register, ...] = tuple(live_in)
        self._label_to_index: Dict[str, int] = {}
        self._refresh_labels()

    # -- structure ---------------------------------------------------------

    def _refresh_labels(self) -> None:
        self._label_to_index.clear()
        for index, block in enumerate(self.blocks):
            if block.label in self._label_to_index:
                raise KernelValidationError(
                    f"duplicate block label {block.label!r} in {self.name}"
                )
            self._label_to_index[block.label] = index

    def block_index(self, label: str) -> int:
        try:
            return self._label_to_index[label]
        except KeyError:
            raise KernelValidationError(
                f"unknown block label {label!r} in kernel {self.name}"
            ) from None

    def block(self, label: str) -> BasicBlock:
        return self.blocks[self.block_index(label)]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterator[Tuple[InstructionRef, Instruction]]:
        """All instructions in layout order with stable references."""
        position = 0
        for block_index, block in enumerate(self.blocks):
            for instr_index, instruction in enumerate(block.instructions):
                yield (
                    InstructionRef(block_index, instr_index, position),
                    instruction,
                )
                position += 1

    def instruction_at(self, ref: InstructionRef) -> Instruction:
        return self.blocks[ref.block_index].instructions[ref.instr_index]

    @property
    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    # -- CFG edges -----------------------------------------------------------

    def successors(self, block_index: int) -> Tuple[int, ...]:
        """Successor block indices of ``blocks[block_index]``."""
        block = self.blocks[block_index]
        result: List[int] = []
        target = block.branch_target
        if target is not None:
            result.append(self.block_index(target))
        if block.falls_through and block_index + 1 < len(self.blocks):
            next_index = block_index + 1
            if next_index not in result:
                result.append(next_index)
        return tuple(result)

    def predecessors_map(self) -> Dict[int, Tuple[int, ...]]:
        """Predecessor block indices for every block."""
        preds: Dict[int, List[int]] = {i: [] for i in range(len(self.blocks))}
        for index in range(len(self.blocks)):
            for succ in self.successors(index):
                preds[succ].append(index)
        return {index: tuple(plist) for index, plist in preds.items()}

    def is_backward_edge(self, src_index: int, dst_index: int) -> bool:
        """True if the CFG edge src -> dst is a backward branch.

        Following the paper (Section 4.1), a branch to a block at the
        same or an earlier layout position is backward; such branches
        end strands.
        """
        return dst_index <= src_index

    def backward_branch_targets(self) -> Set[int]:
        """Indices of blocks targeted by at least one backward branch."""
        targets: Set[int] = set()
        for index in range(len(self.blocks)):
            for succ in self.successors(index):
                if self.is_backward_edge(index, succ):
                    targets.add(succ)
        return targets

    # -- registers -----------------------------------------------------------

    def registers_used(self) -> Set[Register]:
        """All GPRs referenced anywhere in the kernel (incl. live-ins)."""
        regs: Set[Register] = {r for r in self.live_in if r.is_gpr}
        for _, instruction in self.instructions():
            written = instruction.gpr_write()
            if written is not None:
                regs.add(written)
            for _, reg in instruction.gpr_reads():
                regs.add(reg)
        return regs

    @property
    def num_architectural_registers(self) -> int:
        """Highest GPR index used plus one (MRF entries per thread)."""
        regs = self.registers_used()
        if not regs:
            return 0
        return max(reg.index + reg.num_words - 1 for reg in regs) + 1

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise KernelValidationError.

        Checks: at least one block, non-empty blocks, branch targets
        resolve, the final block does not fall off the end, and no
        instruction follows a terminator within a block.
        """
        if not self.blocks:
            raise KernelValidationError(f"kernel {self.name} has no blocks")
        self._refresh_labels()
        for index, block in enumerate(self.blocks):
            if not block.instructions:
                raise KernelValidationError(
                    f"block {block.label} in {self.name} is empty"
                )
            for position, instruction in enumerate(block.instructions):
                is_last = position == len(block.instructions) - 1
                if not is_last and (
                    instruction.opcode.is_branch or instruction.opcode.is_exit
                ):
                    raise KernelValidationError(
                        f"{block.label}: control-flow instruction "
                        f"{instruction} is not last in its block"
                    )
            target = block.branch_target
            if target is not None and target not in self._label_to_index:
                raise KernelValidationError(
                    f"{block.label}: branch to unknown label {target!r}"
                )
            if (
                index == len(self.blocks) - 1
                and block.falls_through
            ):
                raise KernelValidationError(
                    f"final block {block.label} of {self.name} falls "
                    "through past the end of the kernel"
                )

    def reset_annotations(self) -> None:
        """Strip all strand/allocation annotations from the kernel."""
        for _, instruction in self.instructions():
            instruction.clear_annotations()

    def clone(self) -> "Kernel":
        """A structural copy with pristine (baseline) annotations.

        Layout, labels, operands, and live-ins are preserved, so every
        :class:`InstructionRef` valid for this kernel resolves to the
        corresponding instruction of the clone.  Allocating the clone
        leaves this kernel's annotations untouched — the foundation of
        side-effect-free scheme evaluation.
        """
        blocks = [
            BasicBlock(
                block.label,
                [instruction.clone() for instruction in block.instructions],
            )
            for block in self.blocks
        ]
        return Kernel(self.name, blocks, self.live_in)

    def content_fingerprint(self) -> str:
        """SHA-256 over the kernel's architectural content.

        Covers name, live-ins, block layout, opcodes, operands, guards,
        and branch targets — but *not* compiler annotations, so a kernel
        and its (possibly allocated) clones share one fingerprint.  The
        value is cached: kernels are structurally immutable after
        construction (transforms build new kernels).
        """
        cached = self.__dict__.get("_content_fingerprint")
        if cached is None:
            import hashlib

            parts: List[str] = [self.name]
            parts.append(",".join(str(reg) for reg in self.live_in))
            for block in self.blocks:
                parts.append(block.label + ":")
                for instruction in block.instructions:
                    parts.append(_instruction_content(instruction))
            cached = hashlib.sha256(
                "\n".join(parts).encode("utf-8")
            ).hexdigest()
            self.__dict__["_content_fingerprint"] = cached
        return cached

    def __str__(self) -> str:
        header = f".kernel {self.name}"
        if self.live_in:
            header += "  ; live-in: " + ", ".join(
                str(reg) for reg in self.live_in
            )
        return "\n".join([header] + [str(block) for block in self.blocks])

"""PTX-like intermediate representation.

The IR mirrors scheduled, register-allocated PTX (the input to the
paper's allocation pass, Section 5.1): kernels of basic blocks of
instructions over a flat architectural register namespace.
"""

from .basic_block import BasicBlock
from .builder import KernelBuilder
from .instructions import (
    DestAnnotation,
    FunctionalUnit,
    Immediate,
    Instruction,
    LatencyClass,
    Opcode,
    Operand,
    SourceAnnotation,
)
from .kernel import InstructionRef, Kernel, KernelValidationError
from .parser import AsmSyntaxError, parse_kernel, parse_kernels
from .printer import format_allocated_kernel, format_kernel
from .registers import RegClass, Register, gpr, parse_register, pred

__all__ = [
    "AsmSyntaxError",
    "BasicBlock",
    "DestAnnotation",
    "FunctionalUnit",
    "Immediate",
    "Instruction",
    "InstructionRef",
    "Kernel",
    "KernelBuilder",
    "KernelValidationError",
    "LatencyClass",
    "Opcode",
    "Operand",
    "RegClass",
    "Register",
    "SourceAnnotation",
    "format_allocated_kernel",
    "format_kernel",
    "gpr",
    "parse_kernel",
    "parse_kernels",
    "parse_register",
    "pred",
]

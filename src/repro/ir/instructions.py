"""Instruction model for the PTX-like intermediate representation.

Each instruction mirrors a scheduled, register-allocated PTX instruction
(Section 5.1: the allocator's input is PTX that has already been
scheduled and register allocated).  Instructions carry:

* an opcode with static metadata (functional unit, latency class),
* an optional destination register and a tuple of source operands
  (registers or immediates) whose positions are the operand slots
  A/B/C used by the split-LRF design (Section 3.2),
* an optional guard predicate,
* compiler annotations filled in by strand partitioning
  (``ends_strand``) and by hierarchy allocation (``alloc``).

The functional-unit split matters to the paper: the private ALUs can
read the LRF, while the shared datapath (SFU, MEM, TEX) can only read
the ORF and MRF (Section 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..levels import Level
from .registers import Register


class FunctionalUnit(enum.Enum):
    """Execution resource an opcode runs on (Figure 1c)."""

    #: Per-lane private ALU; full warp-wide throughput; may read the LRF.
    ALU = "alu"
    #: Special function unit (transcendentals); shared datapath.
    SFU = "sfu"
    #: Memory port (global/shared loads and stores); shared datapath.
    MEM = "mem"
    #: Texture unit; shared datapath.
    TEX = "tex"

    @property
    def is_shared(self) -> bool:
        """True for the shared datapath (SFU/MEM/TEX, Section 3.2)."""
        return self is not FunctionalUnit.ALU


class LatencyClass(enum.Enum):
    """Latency category, mapped to cycles by ``repro.sim.params``."""

    ALU = "alu"                  # 8 cycles (Table 2)
    SFU = "sfu"                  # 20 cycles
    SHARED_MEM = "shared_mem"    # 20 cycles
    DRAM = "dram"                # 400 cycles (long latency)
    TEXTURE = "texture"          # 400 cycles (long latency)


@dataclass(frozen=True)
class _OpcodeInfo:
    unit: FunctionalUnit
    latency: LatencyClass
    has_dest: bool
    num_srcs: int
    is_branch: bool = False
    is_exit: bool = False
    writes_pred: bool = False


class Opcode(enum.Enum):
    """PTX-like opcodes.

    The set covers the instruction mix of the paper's benchmark suites:
    integer/float ALU operations, fused multiply-add, transcendental SFU
    operations, global/shared memory accesses, texture fetches, and
    control flow.
    """

    # -- private ALU ----------------------------------------------------
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IMAD = "imad"
    FADD = "fadd"
    FMUL = "fmul"
    FFMA = "ffma"
    IMIN = "imin"
    IMAX = "imax"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    CVT = "cvt"
    SELP = "selp"
    SETP = "setp"
    # -- SFU (transcendentals) -------------------------------------------
    RCP = "rcp"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    SIN = "sin"
    COS = "cos"
    LG2 = "lg2"
    EX2 = "ex2"
    # -- memory ----------------------------------------------------------
    LDG = "ldg"   # global load  (long latency)
    STG = "stg"   # global store
    LDS = "lds"   # shared-memory load
    STS = "sts"   # shared-memory store
    # -- texture ---------------------------------------------------------
    TEX = "tex"   # texture fetch (long latency)
    # -- control flow ----------------------------------------------------
    BRA = "bra"
    EXIT = "exit"

    @property
    def info(self) -> _OpcodeInfo:
        return _OPCODE_INFO[self]

    @property
    def unit(self) -> FunctionalUnit:
        return self.info.unit

    @property
    def latency_class(self) -> LatencyClass:
        return self.info.latency

    @property
    def is_long_latency(self) -> bool:
        """True for operations that trigger warp descheduling (Section 4.1)."""
        return self.info.latency in (LatencyClass.DRAM, LatencyClass.TEXTURE)

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_exit(self) -> bool:
        return self.info.is_exit


_A, _S, _M, _T = (
    FunctionalUnit.ALU,
    FunctionalUnit.SFU,
    FunctionalUnit.MEM,
    FunctionalUnit.TEX,
)
_LA, _LS, _LM, _LD, _LT = (
    LatencyClass.ALU,
    LatencyClass.SFU,
    LatencyClass.SHARED_MEM,
    LatencyClass.DRAM,
    LatencyClass.TEXTURE,
)

_OPCODE_INFO = {
    Opcode.IADD: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.ISUB: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.IMUL: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.IMAD: _OpcodeInfo(_A, _LA, True, 3),
    Opcode.FADD: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.FMUL: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.FFMA: _OpcodeInfo(_A, _LA, True, 3),
    Opcode.IMIN: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.IMAX: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.AND: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.OR: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.XOR: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.SHL: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.SHR: _OpcodeInfo(_A, _LA, True, 2),
    Opcode.MOV: _OpcodeInfo(_A, _LA, True, 1),
    Opcode.CVT: _OpcodeInfo(_A, _LA, True, 1),
    Opcode.SELP: _OpcodeInfo(_A, _LA, True, 3),
    Opcode.SETP: _OpcodeInfo(_A, _LA, True, 2, writes_pred=True),
    Opcode.RCP: _OpcodeInfo(_S, _LS, True, 1),
    Opcode.SQRT: _OpcodeInfo(_S, _LS, True, 1),
    Opcode.RSQRT: _OpcodeInfo(_S, _LS, True, 1),
    Opcode.SIN: _OpcodeInfo(_S, _LS, True, 1),
    Opcode.COS: _OpcodeInfo(_S, _LS, True, 1),
    Opcode.LG2: _OpcodeInfo(_S, _LS, True, 1),
    Opcode.EX2: _OpcodeInfo(_S, _LS, True, 1),
    Opcode.LDG: _OpcodeInfo(_M, _LD, True, 1),
    Opcode.STG: _OpcodeInfo(_M, _LA, False, 2),
    Opcode.LDS: _OpcodeInfo(_M, _LM, True, 1),
    Opcode.STS: _OpcodeInfo(_M, _LA, False, 2),
    Opcode.TEX: _OpcodeInfo(_T, _LT, True, 1),
    Opcode.BRA: _OpcodeInfo(_A, _LA, False, 0, is_branch=True),
    Opcode.EXIT: _OpcodeInfo(_A, _LA, False, 0, is_exit=True),
}


@dataclass(frozen=True)
class Immediate:
    """A literal operand (integer or float)."""

    value: Union[int, float]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.value)


#: A source operand: an architectural register or a literal.
Operand = Union[Register, Immediate]

#: Operand slot names (A/B/C) used by the split LRF (Section 3.2).
SLOT_NAMES = ("A", "B", "C")


@dataclass
class SourceAnnotation:
    """Where one source operand is read from, after allocation.

    ``orf_write_entry``/``lrf_write_bank`` implement *read operand
    allocation* (Section 4.4): the first read of an MRF-resident value
    can additionally be written into the ORF so later reads hit the ORF.
    """

    level: Level = Level.MRF
    #: ORF entry index the value is read from (when ``level`` is ORF).
    orf_entry: Optional[int] = None
    #: Split-LRF bank (operand slot index) read from (when level is LRF).
    lrf_bank: Optional[int] = None
    #: If set, this MRF read is also written into the given ORF entry.
    orf_write_entry: Optional[int] = None


@dataclass
class DestAnnotation:
    """Where the produced value is written, after allocation.

    A value may be written to the MRF and at most one of LRF/ORF in the
    same instruction (Section 4.6: "we allow a value to be written to
    either the LRF or the ORF but not both").
    """

    levels: Tuple[Level, ...] = (Level.MRF,)
    orf_entry: Optional[int] = None
    lrf_bank: Optional[int] = None

    def writes(self, level: Level) -> bool:
        return level in self.levels


@dataclass
class Instruction:
    """One scheduled machine instruction.

    Mutable compiler annotations (``ends_strand``, ``dst_ann``,
    ``src_anns``) are attached by the strand partitioner and allocator;
    a freshly built instruction reads and writes only the MRF, matching
    the paper's single-level baseline.
    """

    opcode: Opcode
    dst: Optional[Register] = None
    srcs: Tuple[Operand, ...] = ()
    #: Guard predicate: execute only if ``guard`` has value ``guard_sense``.
    guard: Optional[Register] = None
    guard_sense: bool = True
    #: Branch target label (``BRA`` only).
    target: Optional[str] = None
    #: Set by strand partitioning: this instruction ends a strand.
    ends_strand: bool = False
    #: Allocation annotations (None until the allocator runs).
    dst_ann: Optional[DestAnnotation] = None
    src_anns: Optional[Tuple[SourceAnnotation, ...]] = None

    def __post_init__(self) -> None:
        info = self.opcode.info
        if info.has_dest and self.dst is None:
            raise ValueError(f"{self.opcode.value} requires a destination")
        if not info.has_dest and self.dst is not None:
            raise ValueError(f"{self.opcode.value} takes no destination")
        if info.is_branch and self.target is None:
            raise ValueError("BRA requires a branch target")
        if not info.is_branch and self.target is not None:
            raise ValueError(f"{self.opcode.value} takes no branch target")
        if len(self.srcs) != info.num_srcs:
            raise ValueError(
                f"{self.opcode.value} takes {info.num_srcs} sources, "
                f"got {len(self.srcs)}"
            )
        if info.writes_pred and self.dst is not None and not self.dst.is_pred:
            raise ValueError("SETP must write a predicate register")
        if (
            not info.writes_pred
            and self.dst is not None
            and self.dst.is_pred
        ):
            raise ValueError(
                f"{self.opcode.value} cannot write a predicate register"
            )

    # -- structural queries used throughout the compiler ------------------
    #
    # ``opcode``/``srcs``/``dst`` never change after construction, so the
    # derived operand views are computed once — the accounting drivers
    # call them for every dynamic instruction.

    @property
    def unit(self) -> FunctionalUnit:
        return self.opcode.unit

    @property
    def is_long_latency(self) -> bool:
        return self.opcode.is_long_latency

    def src_registers(self) -> Tuple[Tuple[int, Register], ...]:
        """(slot index, register) for each register source operand."""
        cached = self.__dict__.get("_src_registers")
        if cached is None:
            cached = tuple(
                (slot, src)
                for slot, src in enumerate(self.srcs)
                if isinstance(src, Register)
            )
            self.__dict__["_src_registers"] = cached
        return cached

    def gpr_reads(self) -> Tuple[Tuple[int, Register], ...]:
        """(slot, register) for each *GPR* source (predicates excluded).

        These are the reads that hit the register file hierarchy and are
        counted by the accounting machinery.
        """
        cached = self.__dict__.get("_gpr_reads")
        if cached is None:
            cached = tuple(
                (slot, src)
                for slot, src in self.src_registers()
                if src.is_gpr
            )
            self.__dict__["_gpr_reads"] = cached
        return cached

    def gpr_write(self) -> Optional[Register]:
        """The written GPR, or None (predicate writes are excluded)."""
        if self.dst is not None and self.dst.is_gpr:
            return self.dst
        return None

    def clone(self) -> "Instruction":
        """A structural copy with no compiler annotations.

        Operands, guards, and targets are immutable and shared; the
        copy starts from the single-level baseline, ready for a fresh
        strand-partition/allocation run that cannot disturb this
        instruction's annotations (or vice versa).
        """
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            srcs=self.srcs,
            guard=self.guard,
            guard_sense=self.guard_sense,
            target=self.target,
        )

    def clear_annotations(self) -> None:
        """Reset all compiler annotations to the single-level baseline."""
        self.ends_strand = False
        self.dst_ann = None
        self.src_anns = None

    def ensure_default_annotations(self) -> None:
        """Attach MRF-only annotations if the allocator has not run."""
        if self.dst_ann is None and self.gpr_write() is not None:
            self.dst_ann = DestAnnotation()
        if self.src_anns is None:
            self.src_anns = tuple(
                SourceAnnotation() for _ in range(len(self.srcs))
            )

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            sense = "" if self.guard_sense else "!"
            parts.append(f"@{sense}{self.guard}")
        parts.append(self.opcode.value)
        operands = []
        if self.dst is not None:
            operands.append(str(self.dst))
        operands.extend(str(s) for s in self.srcs)
        if self.target is not None:
            operands.append(self.target)
        if operands:
            parts.append(", ".join(operands))
        text = " ".join(parts)
        if self.ends_strand:
            text += "  ; end-strand"
        return text

"""Pretty-printing of kernels, with optional allocation annotations.

``format_kernel`` renders plain assembly (re-parseable by
``repro.ir.parser``); ``format_allocated_kernel`` additionally shows the
hierarchy level of every operand as decided by the allocator, e.g.::

    body:
        ffma R4, R3, R1, R2    ; R4->LRF  R3<-LRF  R1<-ORF[0]  R2<-MRF
"""

from __future__ import annotations

from typing import List

from ..levels import Level
from .instructions import Instruction
from .kernel import Kernel


def format_kernel(kernel: Kernel) -> str:
    """Render a kernel as re-parseable assembly text."""
    lines: List[str] = [f".kernel {kernel.name}"]
    if kernel.live_in:
        lines.append(
            ".livein " + " ".join(str(reg) for reg in kernel.live_in)
        )
    for block in kernel.blocks:
        lines.append(f"{block.label}:")
        for instruction in block.instructions:
            lines.append(f"    {_format_plain(instruction)}")
    return "\n".join(lines)


def format_allocated_kernel(kernel: Kernel) -> str:
    """Render a kernel with per-operand hierarchy annotations."""
    lines: List[str] = [f".kernel {kernel.name}"]
    if kernel.live_in:
        lines.append(
            ".livein " + " ".join(str(reg) for reg in kernel.live_in)
        )
    for block in kernel.blocks:
        lines.append(f"{block.label}:")
        for instruction in block.instructions:
            text = _format_plain(instruction)
            notes = _format_annotations(instruction)
            if notes:
                text = f"{text:<40s}; {notes}"
            lines.append(f"    {text}")
    return "\n".join(lines)


def _format_plain(instruction: Instruction) -> str:
    parts = []
    if instruction.guard is not None:
        sense = "" if instruction.guard_sense else "!"
        parts.append(f"@{sense}{instruction.guard}")
    parts.append(instruction.opcode.value)
    operands = []
    if instruction.dst is not None:
        operands.append(str(instruction.dst))
    operands.extend(str(src) for src in instruction.srcs)
    if instruction.target is not None:
        operands.append(instruction.target)
    if operands:
        parts.append(", ".join(operands))
    return " ".join(parts)


def _format_annotations(instruction: Instruction) -> str:
    notes: List[str] = []
    dst = instruction.gpr_write()
    if dst is not None and instruction.dst_ann is not None:
        targets = []
        for level in instruction.dst_ann.levels:
            targets.append(_format_level(
                level,
                instruction.dst_ann.orf_entry,
                instruction.dst_ann.lrf_bank,
            ))
        notes.append(f"{dst}->{'+'.join(targets)}")
    if instruction.src_anns is not None:
        for slot, reg in instruction.gpr_reads():
            annotation = instruction.src_anns[slot]
            source = _format_level(
                annotation.level, annotation.orf_entry, annotation.lrf_bank
            )
            text = f"{reg}<-{source}"
            if annotation.orf_write_entry is not None:
                text += f"(+ORF[{annotation.orf_write_entry}])"
            notes.append(text)
    if instruction.ends_strand:
        notes.append("end-strand")
    return "  ".join(notes)


def _format_level(level: Level, orf_entry, lrf_bank) -> str:
    if level is Level.ORF and orf_entry is not None:
        return f"ORF[{orf_entry}]"
    if level is Level.LRF and lrf_bank is not None:
        return f"LRF[{lrf_bank}]"
    return str(level)

"""Text assembly front-end for the PTX-like IR.

The syntax is a compact PTX flavour, convenient for tests and examples::

    .kernel saxpy
    .livein R0 R1 R2
    entry:
        ldg R3, [R0]
        ffma R4, R3, R1, R2
        setp P0, R4, 0
        @P0 bra done
        stg [R0], R4
    done:
        exit

Rules
-----
* ``.kernel NAME`` starts a kernel; ``.livein`` lists pre-populated
  registers (thread id, parameters).
* ``label:`` starts a basic block.
* Instructions are ``opcode dst, src1, src2, ...``; opcodes without a
  destination (``stg``, ``sts``, ``bra``, ``exit``) list only sources.
* ``@P0`` / ``@!P0`` prefixes guard an instruction on a predicate.
* Square brackets around operands (memory style) are decorative and are
  stripped.
* ``#`` and ``;`` start comments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs.tracer import TRACER
from .builder import KernelBuilder
from .instructions import Immediate, Opcode, Operand
from .kernel import Kernel
from .registers import Register, parse_register


class AsmSyntaxError(ValueError):
    """Raised on malformed assembly text.

    ``line_number`` is ``None`` for document-level diagnostics (e.g.
    the wrong number of kernels) that have no single offending line.
    """

    def __init__(
        self, line_number: Optional[int], line: str, message: str
    ) -> None:
        if line_number is None:
            super().__init__(message)
        else:
            super().__init__(
                f"line {line_number}: {message}: {line.strip()!r}"
            )
        self.line_number = line_number


_OPCODES = {op.value: op for op in Opcode}


def parse_kernel(text: str) -> Kernel:
    """Parse one kernel from assembly text."""
    kernels = parse_kernels(text)
    if len(kernels) != 1:
        raise AsmSyntaxError(
            None, "", f"expected exactly 1 kernel, found {len(kernels)}"
        )
    return kernels[0]


def parse_kernels(text: str) -> List[Kernel]:
    """Parse all kernels from assembly text."""
    with TRACER.span("ir.parse", bytes=len(text)):
        return _parse_kernels(text)


def _parse_kernels(text: str) -> List[Kernel]:
    kernels: List[Kernel] = []
    builder: Optional[KernelBuilder] = None
    live_in: List[Register] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            if builder is not None:
                kernels.append(builder.build())
            name = line[len(".kernel"):].strip()
            if not name:
                raise AsmSyntaxError(line_number, raw_line, "missing name")
            builder = KernelBuilder(name)
            live_in = []
            continue
        if builder is None:
            raise AsmSyntaxError(
                line_number, raw_line, "text before .kernel directive"
            )
        if line.startswith(".livein"):
            for token in line[len(".livein"):].replace(",", " ").split():
                live_in.append(parse_register(token))
            builder.live_in = tuple(live_in)
            continue
        if line.endswith(":") and " " not in line:
            builder.block(line[:-1])
            continue
        _parse_instruction(builder, line, line_number, raw_line)

    if builder is not None:
        kernels.append(builder.build())
    return kernels


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line


def _parse_instruction(
    builder: KernelBuilder, line: str, line_number: int, raw_line: str
) -> None:
    guard, guard_sense, line = _parse_guard(line, line_number, raw_line)
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    opcode = _OPCODES.get(mnemonic)
    if opcode is None:
        raise AsmSyntaxError(
            line_number, raw_line, f"unknown opcode {mnemonic!r}"
        )
    operand_text = parts[1] if len(parts) > 1 else ""
    tokens = [
        token.strip() for token in operand_text.split(",") if token.strip()
    ]

    target: Optional[str] = None
    if opcode is Opcode.BRA:
        if len(tokens) != 1:
            raise AsmSyntaxError(
                line_number, raw_line, "bra takes exactly one label"
            )
        target = tokens[0]
        tokens = []

    dst: Optional[Register] = None
    if opcode.info.has_dest:
        if not tokens:
            raise AsmSyntaxError(
                line_number, raw_line, "missing destination operand"
            )
        dst_operand = _parse_operand(tokens.pop(0), line_number, raw_line)
        if not isinstance(dst_operand, Register):
            raise AsmSyntaxError(
                line_number, raw_line, "destination must be a register"
            )
        dst = dst_operand

    srcs = tuple(
        _parse_operand(token, line_number, raw_line) for token in tokens
    )
    try:
        builder.op(
            opcode, dst, *srcs,
            guard=guard, guard_sense=guard_sense, target=target,
        )
    except ValueError as error:
        raise AsmSyntaxError(line_number, raw_line, str(error)) from error


def _parse_guard(
    line: str, line_number: int, raw_line: str
) -> Tuple[Optional[Register], bool, str]:
    if not line.startswith("@"):
        return None, True, line
    parts = line.split(None, 1)
    if len(parts) != 2:
        raise AsmSyntaxError(line_number, raw_line, "guard without opcode")
    guard_text = parts[0][1:]
    guard_sense = True
    if guard_text.startswith("!"):
        guard_sense = False
        guard_text = guard_text[1:]
    try:
        guard = parse_register(guard_text)
    except ValueError as error:
        raise AsmSyntaxError(line_number, raw_line, str(error)) from error
    if not guard.is_pred:
        raise AsmSyntaxError(
            line_number, raw_line, "guard must be a predicate register"
        )
    return guard, guard_sense, parts[1]


def _parse_operand(
    token: str, line_number: int, raw_line: str
) -> Operand:
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        token = token[1:-1].strip()
    try:
        return parse_register(token)
    except ValueError:
        pass
    try:
        if any(ch in token for ch in ".eE") and not token.isdigit():
            return Immediate(float(token))
        return Immediate(int(token, 0))
    except ValueError:
        raise AsmSyntaxError(
            line_number, raw_line, f"cannot parse operand {token!r}"
        ) from None

"""A small fluent builder for constructing kernels programmatically.

Workload generators (``repro.workloads``) and tests construct kernels
with this builder rather than hand-assembling instruction dataclasses::

    b = KernelBuilder("saxpy", live_in=[gpr(0), gpr(1), gpr(2)])
    b.block("body")
    b.op(Opcode.LDG, gpr(3), gpr(0))
    b.op(Opcode.FFMA, gpr(4), gpr(3), gpr(1), gpr(2))
    b.op(Opcode.STG, None, gpr(0), gpr(4))
    b.exit()
    kernel = b.build()

Plain ``int``/``float`` sources are wrapped into :class:`Immediate`
operands automatically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .basic_block import BasicBlock
from .instructions import Immediate, Instruction, Opcode, Operand
from .kernel import Kernel
from .registers import Register

#: Anything acceptable as a source operand argument.
SourceLike = Union[Register, Immediate, int, float]


def _coerce(source: SourceLike) -> Operand:
    if isinstance(source, (Register, Immediate)):
        return source
    if isinstance(source, (int, float)):
        return Immediate(source)
    raise TypeError(f"cannot use {source!r} as an instruction source")


class KernelBuilder:
    """Incrementally assembles a :class:`Kernel`."""

    def __init__(
        self, name: str, live_in: Sequence[Register] = ()
    ) -> None:
        self.name = name
        self.live_in = tuple(live_in)
        self._blocks: List[BasicBlock] = []
        self._current: Optional[BasicBlock] = None

    # -- block management ---------------------------------------------------

    def block(self, label: str) -> "KernelBuilder":
        """Start a new basic block with the given label."""
        block = BasicBlock(label)
        self._blocks.append(block)
        self._current = block
        return self

    def _require_block(self) -> BasicBlock:
        if self._current is None:
            raise ValueError(
                "no current block; call KernelBuilder.block() first"
            )
        return self._current

    # -- instruction emission -----------------------------------------------

    def op(
        self,
        opcode: Opcode,
        dst: Optional[Register],
        *srcs: SourceLike,
        guard: Optional[Register] = None,
        guard_sense: bool = True,
        target: Optional[str] = None,
    ) -> Instruction:
        """Emit one instruction into the current block."""
        instruction = Instruction(
            opcode=opcode,
            dst=dst,
            srcs=tuple(_coerce(src) for src in srcs),
            guard=guard,
            guard_sense=guard_sense,
            target=target,
        )
        return self._require_block().append(instruction)

    def bra(
        self,
        target: str,
        guard: Optional[Register] = None,
        guard_sense: bool = True,
    ) -> Instruction:
        """Emit a (possibly guarded) branch."""
        return self.op(
            Opcode.BRA, None, guard=guard, guard_sense=guard_sense,
            target=target,
        )

    def exit(self) -> Instruction:
        """Emit a kernel exit."""
        return self.op(Opcode.EXIT, None)

    # -- finalisation ---------------------------------------------------------

    def build(self, validate: bool = True) -> Kernel:
        """Produce the kernel (validated by default)."""
        kernel = Kernel(self.name, self._blocks, live_in=self.live_in)
        if validate:
            kernel.validate()
        return kernel

"""Basic blocks of the PTX-like IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .instructions import Instruction, Opcode


@dataclass
class BasicBlock:
    """A straight-line run of instructions with a single entry point.

    A block may end in a branch (conditional or unconditional), an
    ``EXIT``, or fall through to the next block in kernel layout order.
    A conditional branch (a ``BRA`` with a guard predicate) has two
    successors: the branch target and the fall-through block.
    """

    label: str
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> Instruction:
        self.instructions.append(instruction)
        return instruction

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is a branch or exit, else None."""
        if not self.instructions:
            return None
        last = self.instructions[-1]
        if last.opcode.is_branch or last.opcode.is_exit:
            return last
        return None

    @property
    def branch_target(self) -> Optional[str]:
        """Label this block branches to, or None."""
        term = self.terminator
        if term is not None and term.opcode is Opcode.BRA:
            return term.target
        return None

    @property
    def falls_through(self) -> bool:
        """True if control may continue to the next block in layout order.

        A block falls through unless it ends in an unconditional branch
        or an exit.
        """
        term = self.terminator
        if term is None:
            return True
        if term.opcode.is_exit:
            return False
        if term.opcode is Opcode.BRA and term.guard is None:
            return False
        return True

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"    {inst}" for inst in self.instructions)
        return "\n".join(lines)

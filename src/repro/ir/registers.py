"""Register model for the PTX-like intermediate representation.

The paper's machine exposes a flat architectural register namespace of 32
general-purpose registers per thread (the MRF provides 32 entries per
thread, Section 2).  PTX additionally has predicate registers used for
branching; predicates live in a separate, tiny storage structure on real
GPUs, so they are *not* candidates for the ORF/LRF hierarchy and are not
counted as main-register-file traffic (the paper counts an average of 1.6
register reads and 0.8 register writes per instruction, excluding
predicates).

Values wider than 32 bits are stored across multiple consecutive 32-bit
registers (Section 3.2); ``Register.width`` records the logical width and
``Register.num_words`` how many 32-bit MRF/ORF entries it occupies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Architectural storage class of a register."""

    #: 32-bit general purpose register (candidate for LRF/ORF allocation).
    GPR = "gpr"
    #: 1-bit predicate register (never allocated to the hierarchy).
    PRED = "pred"


#: Logical register widths supported by PTX in the paper's workloads.
VALID_WIDTHS = (32, 64, 128)


@dataclass(frozen=True, order=True)
class Register:
    """An architectural register reference.

    Parameters
    ----------
    index:
        The architectural register number (``R0``..``R31`` for GPRs,
        ``P0``.. for predicates).
    reg_class:
        GPR or predicate.
    width:
        Logical width in bits.  Values wider than 32 bits occupy
        ``width // 32`` consecutive 32-bit entries (Section 3.2 notes
        that 99.5% of the paper's instructions use 32-bit values).
    """

    index: int
    reg_class: RegClass = RegClass.GPR
    width: int = 32

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be >= 0, got {self.index}")
        if self.reg_class is RegClass.GPR and self.width not in VALID_WIDTHS:
            raise ValueError(
                f"GPR width must be one of {VALID_WIDTHS}, got {self.width}"
            )
        if self.reg_class is RegClass.PRED and self.width != 32:
            # Predicates are logically 1 bit; we canonicalise their width
            # to 32 so dataflow code can treat all registers uniformly.
            object.__setattr__(self, "width", 32)

    @property
    def num_words(self) -> int:
        """Number of 32-bit storage words this register occupies."""
        return max(1, self.width // 32)

    @property
    def is_gpr(self) -> bool:
        return self.reg_class is RegClass.GPR

    @property
    def is_pred(self) -> bool:
        return self.reg_class is RegClass.PRED

    @property
    def name(self) -> str:
        """Assembly name, e.g. ``R3``, ``RD4`` (64-bit), or ``P1``."""
        if self.is_pred:
            return f"P{self.index}"
        if self.width == 64:
            return f"RD{self.index}"
        if self.width == 128:
            return f"RQ{self.index}"
        return f"R{self.index}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def gpr(index: int, width: int = 32) -> Register:
    """Shorthand constructor for a general-purpose register."""
    return Register(index, RegClass.GPR, width)


def pred(index: int) -> Register:
    """Shorthand constructor for a predicate register."""
    return Register(index, RegClass.PRED)


def parse_register(text: str) -> Register:
    """Parse an assembly register name (``R3``, ``RD2``, ``RQ1``, ``P0``).

    Raises
    ------
    ValueError
        If the text is not a well-formed register name.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty register name")
    upper = text.upper()
    if upper.startswith("RD"):
        return gpr(_parse_index(upper[2:], text), width=64)
    if upper.startswith("RQ"):
        return gpr(_parse_index(upper[2:], text), width=128)
    if upper.startswith("R"):
        return gpr(_parse_index(upper[1:], text))
    if upper.startswith("P"):
        return pred(_parse_index(upper[1:], text))
    raise ValueError(f"not a register name: {text!r}")


def _parse_index(digits: str, original: str) -> int:
    if not digits.isdigit():
        raise ValueError(f"not a register name: {original!r}")
    return int(digits)

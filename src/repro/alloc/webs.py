"""Register instances ("webs") — the allocation unit of Section 4.

A *register instance* is one value: a set of in-strand definitions of an
architectural register that feed a common set of reads.  PTX is
pseudo-SSA without phi nodes, so a hammock that writes R1 on both sides
and reads it at the merge (Figure 10c) yields one instance with two
definitions; both must target the same ORF entry for the merge read to
be serviced from the ORF.

Correctness hinges on *strand-local* dataflow: the ORF and LRF do not
survive strand boundaries, so a definition only "reaches" a read for
allocation purposes along paths that stay inside the strand.  A value
flowing around a backward branch (a loop-carried dependence) re-enters
the strand from the MRF even though its static definition sits in the
same strand.  :class:`_LocalReaching` recomputes reaching definitions
with all facts killed at strand boundaries; a read whose global
reaching set exceeds its strand-local one is *mixed* and must encode an
MRF read (Figure 10a/10b), though its instance may still profitably
write the ORF for other reads.

Reads with an *empty* strand-local reaching set consume an MRF-resident
value and feed read operand allocation (Section 4.4, Figure 8b).  Such
a read may be redirected to the ORF only if the group's first read —
the one that fetches from the MRF and fills the ORF entry — executes on
every intra-strand path leading to it ("definitely precedes" it).

Divergence adds a second soundness condition beyond dataflow.  Under
SIMT execution the taken side of a guarded forward branch runs first,
so between a fill (definition or read-operand fetch) and a later read
the warp may execute the *other* hammock arm.  If that interleaved
region crosses a strand boundary, the warp is descheduled there and
the ORF/LRF contents are lost before the read executes, even though
both endpoints sit in the same strand (fuzz seed 320 at the default
config: the R11 read at the hammock's fall arm is serviced after the
taken arm's strand-ending ``ldg``).  :class:`_DivergenceHazards`
detects the class statically and such reads are excluded from
coverability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.cfg import ControlFlowGraph
from ..analysis.postdom import PostDominatorTree
from ..analysis.reaching import Definition, ReachingDefinitions, ReadSite
from ..ir.instructions import FunctionalUnit, Instruction, Opcode
from ..ir.kernel import InstructionRef, Kernel
from ..ir.registers import Register
from ..strands.model import Strand, StrandPartition


@dataclass
class WebRead:
    """One read of a register instance."""

    site: ReadSite
    #: True if the consuming unit is on the shared datapath.
    shared_unit: bool
    #: True if the value may arrive from outside the strand on some
    #: path, forcing this read to come from the MRF.
    mixed: bool
    #: True if divergent taken-side-first interleaving can deschedule
    #: the warp between the fill and this read (another hammock arm
    #: containing a strand boundary runs in between), forcing this
    #: read to come from the MRF.
    divergence_unsafe: bool = False

    @property
    def position(self) -> int:
        return self.site.ref.position


@dataclass
class Web:
    """One register instance within a strand."""

    web_id: int
    strand_id: int
    reg: Register
    #: In-strand, non-pinned definitions (>= 1).
    defs: List[Definition]
    #: Producing units for each definition (parallel to ``defs``).
    def_units: List[FunctionalUnit]
    reads: List[WebRead] = field(default_factory=list)
    #: True if the value may be read outside this strand execution
    #: (a later strand, or a later iteration around a backward branch)
    #: and must therefore also be written to the MRF (Figure 6).
    live_out: bool = False

    @property
    def width_words(self) -> int:
        return self.reg.num_words

    @property
    def first_def_position(self) -> int:
        return min(d.ref.position for d in self.defs if d.ref is not None)

    @cached_property
    def coverable_reads(self) -> List[WebRead]:
        """Reads redirectable to the ORF/LRF, by position.

        Cached: ``reads`` is final once :func:`build_strand_values`
        returns, and a batched sweep queries this once per config per
        web.  Callers must not mutate the returned list (the allocator
        only rebinds slices of it).
        """
        return sorted(
            (
                read
                for read in self.reads
                if not read.mixed and not read.divergence_unsafe
            ),
            key=lambda read: read.position,
        )

    @cached_property
    def needs_mrf_write(self) -> bool:
        """True if the value must reach the MRF even when allocated."""
        return self.live_out or any(
            read.mixed or read.divergence_unsafe for read in self.reads
        )

    @cached_property
    def all_private(self) -> bool:
        """True if every def and every coverable read uses the ALUs.

        Only such instances are LRF-eligible (Section 3.2: the LRF is
        reachable exclusively from the private datapath).
        """
        if any(unit.is_shared for unit in self.def_units):
            return False
        return all(not read.shared_unit for read in self.coverable_reads)

    def read_slots(self) -> Set[int]:
        """Operand slots used by coverable reads (split-LRF eligibility)."""
        return {read.site.slot for read in self.coverable_reads}


@dataclass
class ReadOperandCandidate:
    """A group of in-strand reads of an MRF-resident value (Section 4.4).

    ``reads`` holds every strand-local-undefined read of the register in
    the strand; ``coverable_reads`` is the subset that may legally be
    redirected to the ORF (the first read plus all reads it definitely
    precedes).
    """

    strand_id: int
    reg: Register
    reads: List[WebRead]
    coverable_reads: List[WebRead] = field(default_factory=list)

    @property
    def width_words(self) -> int:
        return self.reg.num_words

    @property
    def first_position(self) -> int:
        return self.reads[0].position


@dataclass
class StrandValues:
    """All allocation inputs for one strand."""

    strand: Strand
    webs: List[Web]
    read_candidates: List[ReadOperandCandidate]


def build_strand_values(
    kernel: Kernel,
    partition: StrandPartition,
    reaching: ReachingDefinitions,
    cfg: Optional[ControlFlowGraph] = None,
) -> List[StrandValues]:
    """Build register instances and read-operand groups for every strand.

    ``cfg`` may carry the kernel's already-built control-flow graph so
    the divergence-hazard analysis does not rebuild it.
    """
    builder = _WebBuilder(kernel, partition, reaching, cfg=cfg)
    return builder.build()


# ---------------------------------------------------------------------------
# strand-local reaching definitions
# ---------------------------------------------------------------------------


class _LocalReaching:
    """Reaching definitions with all facts killed at strand boundaries.

    The intra-strand subgraph is acyclic (backward edges always target
    strand-entry cuts), so a single pass over blocks in layout order
    suffices: every intra-strand predecessor of a block precedes it in
    layout order.
    """

    def __init__(
        self,
        kernel: Kernel,
        partition: StrandPartition,
        reaching: ReachingDefinitions,
    ) -> None:
        self.kernel = kernel
        self.partition = partition
        self.reaching = reaching
        self._refs: Dict[int, InstructionRef] = {
            ref.position: ref for ref, _ in kernel.instructions()
        }
        #: (position, slot) -> frozenset of strand-locally reaching defs.
        self.read_local: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._compute()

    def _compute(self) -> None:
        kernel = self.kernel
        cut_before = self.partition.cut_before
        entry_cuts = self.partition.entry_cuts
        defs_of_reg = self._defs_by_reg()

        num_blocks = len(kernel.blocks)
        block_out: List[Set[int]] = [set() for _ in range(num_blocks)]
        preds = kernel.predecessors_map()

        for block_index, block in enumerate(kernel.blocks):
            if block_index in entry_cuts or block_index == 0:
                live: Set[int] = set()
            else:
                live = set()
                for pred in preds[block_index]:
                    if pred < block_index:
                        live |= block_out[pred]
            position = self._first_position(block_index)
            for instr_index, instruction in enumerate(block.instructions):
                if position in cut_before:
                    live.clear()
                for slot, reg in instruction.gpr_reads():
                    self.read_local[(position, slot)] = frozenset(
                        d
                        for d in live
                        if self.reaching.definition(d).reg == reg
                    )
                written = instruction.gpr_write()
                if written is not None:
                    def_id = self._def_id_at(position)
                    if instruction.guard is None:
                        live -= defs_of_reg.get(written, set())
                    if def_id is not None:
                        live.add(def_id)
                position += 1
            block_out[block_index] = live

    def _defs_by_reg(self) -> Dict[Register, Set[int]]:
        result: Dict[Register, Set[int]] = {}
        for definition in self.reaching.definitions:
            result.setdefault(definition.reg, set()).add(definition.def_id)
        return result

    def _first_position(self, block_index: int) -> int:
        position = 0
        for index in range(block_index):
            position += len(self.kernel.blocks[index].instructions)
        return position

    def _def_id_at(self, position: int) -> Optional[int]:
        definition = self.reaching.def_at(self._refs[position])
        return definition.def_id if definition is not None else None

    def local_defs(self, ref: InstructionRef, slot: int) -> FrozenSet[int]:
        return self.read_local.get((ref.position, slot), frozenset())


# ---------------------------------------------------------------------------
# divergence hazards
# ---------------------------------------------------------------------------


class _DivergenceHazards:
    """Static model of divergent taken-side-first interleaving.

    Every guarded forward branch is a potential hammock: the taken
    region ``[taken, reconv)`` executes before the fall region
    ``[fall, taken)``, where ``reconv`` is the first position of the
    branch block's immediate post-dominator (the reconvergence point).
    A fill at ``p`` cannot service a read at ``q`` from the ORF/LRF if
    any position range executed between them — under that reordering —
    leaves the read's strand: the warp is descheduled there and the
    upper levels are flushed.
    """

    def __init__(
        self,
        kernel: Kernel,
        partition: StrandPartition,
        cfg: Optional[ControlFlowGraph] = None,
    ) -> None:
        self._strand_of = partition.strand_of_position
        first_pos: Dict[int, int] = {}
        position = 0
        for block_index, block in enumerate(kernel.blocks):
            first_pos[block_index] = position
            position += len(block.instructions)
        num_positions = position
        if cfg is None:
            cfg = ControlFlowGraph(kernel)
        postdom = PostDominatorTree(cfg)
        #: (branch position, taken-region begin, reconvergence position)
        self._hammocks: List[Tuple[int, int, int]] = []
        for ref, instruction in kernel.instructions():
            if instruction.opcode is not Opcode.BRA:
                continue
            if instruction.guard is None:
                continue
            target = first_pos[kernel.block_index(instruction.target)]
            if target <= ref.position:
                # Backward branches end strands; no in-strand range can
                # span them.
                continue
            ipd = postdom.immediate_post_dominator(ref.block_index)
            reconv = first_pos[ipd] if ipd is not None else num_positions
            self._hammocks.append((ref.position, target, reconv))

    def unsafe(self, avail_positions, read_position: int) -> bool:
        """True if some fill-to-read span is broken by interleaving."""
        q = read_position
        strand_id = self._strand_of.get(q)
        for b, taken, reconv in self._hammocks:
            if b >= q:
                continue
            for p in avail_positions:
                if p >= q or reconv <= p:
                    continue
                segments = _intervening_segments(p, q, b, taken, reconv)
                if segments is None:
                    continue
                if any(
                    self._leaves_strand(lo, hi, strand_id)
                    for lo, hi in segments
                ):
                    return True
        return False

    def _leaves_strand(self, begin: int, end: int, strand_id) -> bool:
        strand_of = self._strand_of
        return any(
            strand_of.get(s) != strand_id for s in range(begin, end)
        )


def _intervening_segments(
    p: int, q: int, b: int, taken: int, reconv: int
) -> Optional[List[Tuple[int, int]]]:
    """Position ranges executed between fill ``p`` and read ``q``.

    Models one hammock's reordering (taken region ``[taken, reconv)``
    before fall region ``[fall, taken)``); returns None when the
    hammock cannot interleave anything between the pair.  Ranges are
    half-open and mildly conservative: linear spans may include
    positions on statically skipped paths.
    """
    fall = b + 1
    in_fall_q = fall <= q < taken
    in_taken_q = taken <= q < reconv
    if p <= b:
        if in_taken_q:
            # The taken side runs first, straight from the fill.
            return [(p, b + 1), (taken, q)]
        if in_fall_q:
            # The whole taken region runs before the fall arm.
            return [(p, b + 1), (taken, reconv), (fall, q)]
        return [(p, q)]
    in_fall_p = fall <= p < taken
    in_taken_p = taken <= p < reconv
    if in_taken_p:
        if in_taken_q:
            return [(p, q)]
        if in_fall_q:
            # Rest of the taken arm, then the fall arm up to the read.
            return [(p, reconv), (fall, q)]
        return [(p, reconv), (fall, taken), (reconv, q)]
    if in_fall_p:
        if in_fall_q:
            # Same arm; the taken side ran entirely before the fill.
            return [(p, q)]
        return [(p, taken), (reconv, q)]
    # p >= reconv: the hammock is entirely before the fill.
    return None


# ---------------------------------------------------------------------------
# web construction
# ---------------------------------------------------------------------------


class _WebBuilder:
    def __init__(
        self,
        kernel: Kernel,
        partition: StrandPartition,
        reaching: ReachingDefinitions,
        cfg: Optional[ControlFlowGraph] = None,
    ) -> None:
        self.kernel = kernel
        self.partition = partition
        self.reaching = reaching
        self.local = _LocalReaching(kernel, partition, reaching)
        self.hazards = _DivergenceHazards(kernel, partition, cfg=cfg)
        self._instructions: Dict[int, Instruction] = {
            ref.position: instruction
            for ref, instruction in kernel.instructions()
        }
        #: def_id -> set of (position, slot) reads it locally reaches.
        self._local_uses: Dict[int, Set[Tuple[int, int]]] = {}
        for key, def_ids in self.local.read_local.items():
            for def_id in def_ids:
                self._local_uses.setdefault(def_id, set()).add(key)

    def build(self) -> List[StrandValues]:
        return [
            self._build_for_strand(strand)
            for strand in self.partition.strands
        ]

    # -- per-strand construction ---------------------------------------------

    def _build_for_strand(self, strand: Strand) -> StrandValues:
        in_strand_defs = self._collect_defs(strand)

        parent: Dict[int, int] = {d: d for d in in_strand_defs}

        def find(def_id: int) -> int:
            root = def_id
            while parent[root] != root:
                root = parent[root]
            while parent[def_id] != root:
                parent[def_id], def_id = root, parent[def_id]
            return root

        def union(a: int, b: int) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        read_info: List[Tuple[ReadSite, FrozenSet[int], bool]] = []
        external_reads: List[ReadSite] = []

        for ref in strand.refs:
            instruction = self._instructions[ref.position]
            for slot, reg in instruction.gpr_reads():
                global_ids = self.reaching.reaching_defs(ref, slot)
                local_ids = self.local.local_defs(ref, slot)
                web_ids = frozenset(
                    d for d in local_ids if d in in_strand_defs
                )
                site = ReadSite(ref, slot, reg)
                if not web_ids:
                    external_reads.append(site)
                    continue
                # Mixed if any path may deliver the value from outside
                # the strand (or from a pinned definition).
                mixed = web_ids != global_ids
                read_info.append((site, web_ids, mixed))
                ids = sorted(web_ids)
                for other in ids[1:]:
                    union(ids[0], other)

        webs = self._assemble_webs(strand, in_strand_defs, find, read_info)
        candidates = self._assemble_read_candidates(strand, external_reads)
        return StrandValues(strand, webs, candidates)

    def _collect_defs(self, strand: Strand) -> Set[int]:
        """In-strand, non-pinned (allocatable) definition ids."""
        result: Set[int] = set()
        for ref in strand.refs:
            definition = self.reaching.def_at(ref)
            if definition is None or definition.mrf_pinned:
                continue
            result.add(definition.def_id)
        return result

    def _assemble_webs(
        self,
        strand: Strand,
        in_strand_defs: Set[int],
        find,
        read_info: List[Tuple[ReadSite, FrozenSet[int], bool]],
    ) -> List[Web]:
        groups: Dict[int, List[int]] = {}
        for def_id in in_strand_defs:
            groups.setdefault(find(def_id), []).append(def_id)

        webs: List[Web] = []
        web_of_root: Dict[int, Web] = {}
        for root, def_ids in sorted(groups.items()):
            defs = [self.reaching.definition(d) for d in sorted(def_ids)]
            units = [
                self._instructions[d.ref.position].unit
                for d in defs
                if d.ref is not None
            ]
            web = Web(
                web_id=len(webs),
                strand_id=strand.strand_id,
                reg=defs[0].reg,
                defs=defs,
                def_units=units,
                live_out=self._is_live_out(defs),
            )
            webs.append(web)
            web_of_root[root] = web

        for site, web_ids, mixed in read_info:
            root = find(next(iter(web_ids)))
            web = web_of_root[root]
            instruction = self._instructions[site.ref.position]
            def_positions = tuple(
                d.ref.position for d in web.defs if d.ref is not None
            )
            web.reads.append(
                WebRead(
                    site=site,
                    shared_unit=instruction.unit.is_shared,
                    mixed=mixed,
                    divergence_unsafe=self.hazards.unsafe(
                        def_positions, site.ref.position
                    ),
                )
            )
        for web in webs:
            web.reads.sort(key=lambda read: read.position)
        return webs

    def _is_live_out(self, defs: List[Definition]) -> bool:
        """True if some use of the value is *not* strand-locally fed.

        A use in a later strand, or a loop-carried use reached around a
        backward branch, does not appear among the definition's
        strand-local uses and therefore needs the value in the MRF.
        """
        for definition in defs:
            local = self._local_uses.get(definition.def_id, set())
            for use in self.reaching.uses_of(definition.def_id):
                if (use.ref.position, use.slot) not in local:
                    return True
        return False

    # -- read operand candidates ---------------------------------------------

    def _assemble_read_candidates(
        self,
        strand: Strand,
        external_reads: List[ReadSite],
    ) -> List[ReadOperandCandidate]:
        by_reg: Dict[Register, List[WebRead]] = {}
        for site in external_reads:
            instruction = self._instructions[site.ref.position]
            by_reg.setdefault(site.reg, []).append(
                WebRead(
                    site=site,
                    shared_unit=instruction.unit.is_shared,
                    mixed=False,
                )
            )
        successors = _strand_successors(self.kernel, strand)
        candidates: List[ReadOperandCandidate] = []
        for reg in sorted(by_reg, key=lambda r: (r.reg_class.value, r.index)):
            reads = sorted(by_reg[reg], key=lambda read: read.position)
            coverable = _definitely_preceded_subset(
                strand, reads, successors
            )
            if coverable:
                fill = (coverable[0].position,)
                coverable = [coverable[0]] + [
                    read
                    for read in coverable[1:]
                    if not self.hazards.unsafe(fill, read.position)
                ]
            candidates.append(
                ReadOperandCandidate(
                    strand_id=strand.strand_id,
                    reg=reg,
                    reads=reads,
                    coverable_reads=coverable,
                )
            )
        return candidates


def _strand_successors(
    kernel: Kernel, strand: Strand
) -> Dict[int, List[int]]:
    """Instruction-level successor map restricted to strand positions."""
    positions = strand.positions
    first_position_of_block: Dict[int, int] = {}
    position = 0
    for block_index, block in enumerate(kernel.blocks):
        first_position_of_block[block_index] = position
        position += len(block.instructions)

    successors: Dict[int, List[int]] = {}
    for ref in strand.refs:
        instruction = kernel.instruction_at(ref)
        succs: List[int] = []
        block = kernel.blocks[ref.block_index]
        is_last = ref.instr_index == len(block.instructions) - 1
        if instruction.opcode is Opcode.BRA:
            target_block = kernel.block_index(instruction.target)
            target_position = first_position_of_block[target_block]
            if target_position in positions:
                succs.append(target_position)
            if instruction.guard is not None:
                fall = _fall_through(
                    kernel, ref, first_position_of_block
                )
                if fall is not None and fall in positions:
                    succs.append(fall)
        elif not instruction.opcode.is_exit:
            if is_last:
                fall = _fall_through(kernel, ref, first_position_of_block)
                if fall is not None and fall in positions:
                    succs.append(fall)
            elif ref.position + 1 in positions:
                succs.append(ref.position + 1)
        successors[ref.position] = succs
    return successors


def _fall_through(
    kernel: Kernel, ref, first_position_of_block: Dict[int, int]
) -> Optional[int]:
    block = kernel.blocks[ref.block_index]
    if ref.instr_index + 1 < len(block.instructions):
        return ref.position + 1
    next_block = ref.block_index + 1
    if next_block >= len(kernel.blocks):
        return None
    return first_position_of_block[next_block]


def _definitely_preceded_subset(
    strand: Strand,
    reads: List[WebRead],
    successors: Dict[int, List[int]],
) -> List[WebRead]:
    """The first read plus every read it definitely precedes.

    A later read may be redirected to the ORF only if every intra-strand
    path from the strand's entry to it passes through the first read
    (which performs the MRF fetch and the ORF fill).  We check this by
    BFS from the strand entry with the first read's position removed:
    reads still reachable have a path avoiding the fill and stay in the
    MRF.
    """
    if not reads:
        return []
    first = reads[0]
    if len(reads) == 1:
        return [first]
    entry = strand.refs[0].position
    blocked = first.position
    reachable: Set[int] = set()
    if entry != blocked:
        frontier = [entry]
        reachable.add(entry)
        while frontier:
            current = frontier.pop()
            for succ in successors.get(current, ()):
                if succ == blocked or succ in reachable:
                    continue
                reachable.add(succ)
                frontier.append(succ)
    covered = [first]
    for read in reads[1:]:
        if read.position == first.position:
            # Another operand slot of the same instruction: the ORF
            # fill happens in this instruction's write phase, so this
            # read cannot see it and must use the MRF.
            continue
        if read.position not in reachable:
            covered.append(read)
    return covered

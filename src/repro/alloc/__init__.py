"""Compile-time hierarchy allocation — the paper's core contribution
(Section 4)."""

from .allocator import (
    AllocationConfig,
    AllocationResult,
    ReadOperandAssignment,
    WebAssignment,
    allocate_kernel,
    allocate_kernels_batch,
)
from .analysis import (
    KernelAnalysis,
    analyze_kernel,
    clear_analysis_cache,
    kernel_analysis,
)
from .intervals import EntryFile
from .serialize import (
    AnnotationFormatError,
    annotations_from_dict,
    annotations_to_dict,
    dump_annotations,
    load_annotations,
)
from .savings import (
    occupancy_slots,
    priority,
    read_operand_savings,
    value_allocation_savings,
)
from .webs import (
    ReadOperandCandidate,
    StrandValues,
    Web,
    WebRead,
    build_strand_values,
)

__all__ = [
    "AllocationConfig",
    "AnnotationFormatError",
    "AllocationResult",
    "EntryFile",
    "KernelAnalysis",
    "analyze_kernel",
    "allocate_kernels_batch",
    "clear_analysis_cache",
    "kernel_analysis",
    "ReadOperandAssignment",
    "ReadOperandCandidate",
    "StrandValues",
    "Web",
    "WebAssignment",
    "WebRead",
    "allocate_kernel",
    "annotations_from_dict",
    "annotations_to_dict",
    "dump_annotations",
    "load_annotations",
    "build_strand_values",
    "occupancy_slots",
    "priority",
    "read_operand_savings",
    "value_allocation_savings",
]

"""Energy-savings functions driving allocation (Figures 6 and 9).

The paper's allocator is energy-greedy: a value is placed in the
ORF/LRF only if doing so saves energy, and candidates are prioritised
by savings divided by the number of static issue slots the value would
occupy (Figure 7).  We evaluate the savings with the full energy model
(access + wire), using each read's actual consuming datapath — a read
by the shared datapath saves less when moved to the ORF because the
ORF-to-shared wire is longer (Table 4).

Figure 6 (write/value allocation)::

    savings = NumberOfReadsInStrand * (MRF_Read - ORF_Read) - ORF_Write
    if not LiveOutOfStrand: savings += MRF_Write

Figure 9 (read operand allocation)::

    savings = (NumberOfReadsInStrand - 1) * (MRF_Read - ORF_Read)
              - ORF_Write
"""

from __future__ import annotations

from typing import Sequence

from ..energy.model import EnergyModel
from ..levels import Level
from .webs import ReadOperandCandidate, Web, WebRead


def value_allocation_savings(
    web: Web,
    covered_reads: Sequence[WebRead],
    level: Level,
    model: EnergyModel,
    force_mrf_write: bool = False,
) -> float:
    """Energy saved by placing a register instance at ``level``.

    ``covered_reads`` is the subset of the web's non-mixed reads that
    will be serviced from the allocated level (all of them for a full
    range; a prefix for a partial range, Section 4.3).
    ``force_mrf_write`` accounts partial ranges: reads beyond the range
    come from the MRF, so the MRF write cannot be elided.
    """
    if level is Level.MRF:
        return 0.0
    words = web.width_words
    savings = 0.0
    for read in covered_reads:
        savings += model.read_energy(Level.MRF, read.shared_unit)
        savings -= model.read_energy(level, read.shared_unit)
    # One write per definition (a hammock instance writes the entry on
    # each side of the branch, Figure 10c).
    for unit in web.def_units:
        savings -= model.write_energy(level, unit.is_shared)
        if not web.needs_mrf_write and not force_mrf_write:
            savings += model.write_energy(Level.MRF, unit.is_shared)
    return savings * words


def read_operand_savings(
    candidate: ReadOperandCandidate,
    covered_reads: Sequence[WebRead],
    model: EnergyModel,
) -> float:
    """Energy saved by caching an MRF-resident read operand in the ORF.

    The first covered read still comes from the MRF (and additionally
    writes the ORF); only subsequent covered reads hit the ORF
    (Figure 9).
    """
    if len(covered_reads) < 2:
        return -model.write_energy(Level.ORF, covered_reads[0].shared_unit) \
            if covered_reads else 0.0
    words = candidate.width_words
    first = covered_reads[0]
    savings = -model.write_energy(Level.ORF, first.shared_unit)
    for read in covered_reads[1:]:
        savings += model.read_energy(Level.MRF, read.shared_unit)
        savings -= model.read_energy(Level.ORF, read.shared_unit)
    return savings * words


def occupancy_slots(begin_position: int, end_position: int) -> int:
    """Static issue slots a value occupies an entry for (>= 1)."""
    return max(1, end_position - begin_position + 1)


def priority(savings: float, begin_position: int, end_position: int) -> float:
    """Allocation priority: savings per occupied issue slot (Figure 7)."""
    return savings / occupancy_slots(begin_position, end_position)

"""Interval-based entry availability for the ORF and LRF.

Each ORF/LRF entry can hold one value over a range of static issue
slots; two values may share an entry only if their occupancy intervals
are disjoint.  Intervals are expressed in global layout positions,
which strictly increase along every dynamic path within a strand
(strands contain no backward branches), so interval disjointness is a
sound — mildly conservative across hammock arms — sharing condition.

Two window flavours exist, distinguished by ``closed``:

* **Value windows** (webs, ``closed=False``): occupancy starts at the
  *write phase* of the defining slot and ends at the *read phase* of
  the last covered read.  Reads happen before writes within a slot, so
  a value last read at slot N and a value defined at slot N may share
  an entry — unless both begin at N (both write the entry in N's write
  phase).
* **Read-operand windows** (Section 4.4 groups, ``closed=True``):
  occupancy spans the whole group inclusively.  The entry is filled in
  the *read phase* of the first read and must still be observable in
  the read phase of the last read; under SIMT divergence the boundary
  slots can be revisited on another path before the group is done
  (fuzz seed 320: a web defined at the group's final slot clobbered
  the entry between divergent arm executions).  A closed window
  therefore conflicts with *any* window it touches, in either
  direction — placed read-operand ranges are entry occupancy for webs,
  and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: One occupancy window: (begin, end, closed).
Window = Tuple[int, int, bool]


def windows_conflict(a: Window, b: Window) -> bool:
    """True if two occupancy windows cannot share one entry.

    This predicate is the single source of truth for entry sharing;
    the allocator enforces it and the property tests re-check the
    allocator's output against it.
    """
    begin_a, end_a, closed_a = a
    begin_b, end_b, closed_b = b
    if closed_a or closed_b:
        # Inclusive overlap: a closed (read-operand) window owns its
        # boundary slots outright.
        return begin_a <= end_b and begin_b <= end_a
    # Two value windows: write-phase begin vs. read-phase end allows
    # boundary sharing, except when both write the entry in the same
    # slot's write phase.
    return begin_a == begin_b or (begin_a < end_b and begin_b < end_a)


@dataclass
class _Entry:
    occupied: List[Window] = field(default_factory=list)

    def available(self, begin: int, end: int, closed: bool = False) -> bool:
        """True if the window may be added without a sharing conflict."""
        candidate = (begin, end, closed)
        for other in self.occupied:
            if windows_conflict(candidate, other):
                return False
        return True

    def allocate(self, begin: int, end: int, closed: bool = False) -> None:
        if not self.available(begin, end, closed):
            raise ValueError(
                f"interval [{begin}, {end}] overlaps an existing allocation"
            )
        self.occupied.append((begin, end, closed))


class EntryFile:
    """Availability tracker for an N-entry register file level."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 0:
            raise ValueError("num_entries must be >= 0")
        self._entries = [_Entry() for _ in range(num_entries)]

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def find_free(
        self, begin: int, end: int, closed: bool = False
    ) -> Optional[int]:
        """Lowest-index entry free over [begin, end], or None."""
        if begin > end:
            raise ValueError(f"empty interval [{begin}, {end}]")
        for index, entry in enumerate(self._entries):
            if entry.available(begin, end, closed):
                return index
        return None

    def find_free_group(
        self, begin: int, end: int, count: int, closed: bool = False
    ) -> Optional[List[int]]:
        """``count`` distinct free entries over [begin, end], or None.

        Wide (64/128-bit) values occupy multiple 32-bit entries
        (Section 3.2: "the compiler allocates multiple entries to store
        the value in the ORF").
        """
        free: List[int] = []
        if count <= 0:
            return free
        for index, entry in enumerate(self._entries):
            if entry.available(begin, end, closed):
                free.append(index)
                if len(free) == count:
                    return free
        return None

    def allocate(
        self, entry_index: int, begin: int, end: int, closed: bool = False
    ) -> None:
        self._entries[entry_index].allocate(begin, end, closed)

    def is_available(
        self, entry_index: int, begin: int, end: int, closed: bool = False
    ) -> bool:
        return self._entries[entry_index].available(begin, end, closed)

"""Interval-based entry availability for the ORF and LRF.

Each ORF/LRF entry can hold one value over a range of static issue
slots; two values may share an entry only if their occupancy intervals
are disjoint.  Intervals are expressed in global layout positions,
which strictly increase along every dynamic path within a strand
(strands contain no backward branches), so interval disjointness is a
sound — mildly conservative across hammock arms — sharing condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class _Entry:
    occupied: List[Tuple[int, int]] = field(default_factory=list)

    def available(self, begin: int, end: int) -> bool:
        """True if (begin, end] does not overlap any occupied window.

        A value occupies its entry from the *write phase* of its
        defining slot to the *read phase* of its last-read slot.  Reads
        happen before writes within a slot, so a value last read at
        slot N and a value defined at slot N can share the entry:
        windows conflict only when each begins strictly before the
        other ends — except that two windows beginning at the same slot
        always conflict (both write the entry in that slot's write
        phase).
        """
        return all(
            begin != other_begin
            and (begin >= other_end or other_begin >= end)
            for other_begin, other_end in self.occupied
        )

    def allocate(self, begin: int, end: int) -> None:
        if not self.available(begin, end):
            raise ValueError(
                f"interval [{begin}, {end}] overlaps an existing allocation"
            )
        self.occupied.append((begin, end))


class EntryFile:
    """Availability tracker for an N-entry register file level."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 0:
            raise ValueError("num_entries must be >= 0")
        self._entries = [_Entry() for _ in range(num_entries)]

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def find_free(self, begin: int, end: int) -> Optional[int]:
        """Lowest-index entry free over [begin, end], or None."""
        if begin > end:
            raise ValueError(f"empty interval [{begin}, {end}]")
        for index, entry in enumerate(self._entries):
            if entry.available(begin, end):
                return index
        return None

    def find_free_group(
        self, begin: int, end: int, count: int
    ) -> Optional[List[int]]:
        """``count`` distinct free entries over [begin, end], or None.

        Wide (64/128-bit) values occupy multiple 32-bit entries
        (Section 3.2: "the compiler allocates multiple entries to store
        the value in the ORF").
        """
        free = [
            index
            for index, entry in enumerate(self._entries)
            if entry.available(begin, end)
        ]
        if len(free) < count:
            return None
        return free[:count]

    def allocate(self, entry_index: int, begin: int, end: int) -> None:
        self._entries[entry_index].allocate(begin, end)

    def is_available(self, entry_index: int, begin: int, end: int) -> bool:
        return self._entries[entry_index].available(begin, end)

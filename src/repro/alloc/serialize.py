"""Serialisation of allocation annotations (the 'binary' side-channel).

The paper's compiler encodes, per instruction, where each operand lives
(folded into the register namespace) plus the end-of-strand bit
(Section 3.1, 6.5).  This module materialises that encoding: the
annotations of an allocated kernel round-trip through a JSON document,
so an allocation can be produced once and shipped alongside the kernel
the way a JIT would embed it in the binary.

The document is keyed by instruction position and validated against the
kernel on load (operand counts, level names, entry indices), so loading
a stale document into a modified kernel fails loudly rather than
mis-annotating.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..ir.instructions import DestAnnotation, SourceAnnotation
from ..ir.kernel import Kernel
from ..levels import Level

FORMAT_VERSION = 1


class AnnotationFormatError(ValueError):
    """The document does not match the kernel or the schema."""


def annotations_to_dict(kernel: Kernel) -> Dict:
    """Extract every operand annotation and strand bit from a kernel."""
    instructions: List[Dict] = []
    for ref, instruction in kernel.instructions():
        entry: Dict = {"position": ref.position}
        if instruction.ends_strand:
            entry["ends_strand"] = True
        if instruction.dst_ann is not None:
            entry["dst"] = {
                "levels": [
                    level.value for level in instruction.dst_ann.levels
                ],
                "orf_entry": instruction.dst_ann.orf_entry,
                "lrf_bank": instruction.dst_ann.lrf_bank,
            }
        if instruction.src_anns is not None:
            entry["srcs"] = [
                {
                    "level": annotation.level.value,
                    "orf_entry": annotation.orf_entry,
                    "lrf_bank": annotation.lrf_bank,
                    "orf_write_entry": annotation.orf_write_entry,
                }
                for annotation in instruction.src_anns
            ]
        instructions.append(entry)
    return {
        "format_version": FORMAT_VERSION,
        "kernel": kernel.name,
        "num_instructions": kernel.num_instructions,
        "instructions": instructions,
    }


def dump_annotations(kernel: Kernel) -> str:
    """Annotations as a JSON string."""
    return json.dumps(annotations_to_dict(kernel), indent=1)


def annotations_from_dict(kernel: Kernel, document: Dict) -> None:
    """Apply a previously-extracted annotation document to a kernel.

    Raises :class:`AnnotationFormatError` on any mismatch.
    """
    if document.get("format_version") != FORMAT_VERSION:
        raise AnnotationFormatError(
            f"unsupported format version {document.get('format_version')}"
        )
    if document.get("kernel") != kernel.name:
        raise AnnotationFormatError(
            f"document is for kernel {document.get('kernel')!r}, "
            f"not {kernel.name!r}"
        )
    if document.get("num_instructions") != kernel.num_instructions:
        raise AnnotationFormatError(
            "instruction count mismatch: document has "
            f"{document.get('num_instructions')}, kernel has "
            f"{kernel.num_instructions}"
        )
    by_position = {
        entry["position"]: entry
        for entry in document.get("instructions", [])
    }
    kernel.reset_annotations()
    for ref, instruction in kernel.instructions():
        entry = by_position.get(ref.position)
        if entry is None:
            raise AnnotationFormatError(
                f"no document entry for position {ref.position}"
            )
        instruction.ends_strand = bool(entry.get("ends_strand", False))
        dst = entry.get("dst")
        if dst is not None:
            if instruction.gpr_write() is None:
                raise AnnotationFormatError(
                    f"position {ref.position}: destination annotation "
                    "for an instruction without a GPR write"
                )
            instruction.dst_ann = DestAnnotation(
                levels=tuple(_level(name) for name in dst["levels"]),
                orf_entry=dst.get("orf_entry"),
                lrf_bank=dst.get("lrf_bank"),
            )
        srcs = entry.get("srcs")
        if srcs is not None:
            if len(srcs) != len(instruction.srcs):
                raise AnnotationFormatError(
                    f"position {ref.position}: {len(srcs)} source "
                    f"annotations for {len(instruction.srcs)} operands"
                )
            instruction.src_anns = tuple(
                SourceAnnotation(
                    level=_level(annotation["level"]),
                    orf_entry=annotation.get("orf_entry"),
                    lrf_bank=annotation.get("lrf_bank"),
                    orf_write_entry=annotation.get("orf_write_entry"),
                )
                for annotation in srcs
            )


def load_annotations(kernel: Kernel, text: str) -> None:
    """Apply annotations from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise AnnotationFormatError(f"malformed JSON: {error}") from error
    annotations_from_dict(kernel, document)


def _level(name: str) -> Level:
    try:
        return Level(name)
    except ValueError:
        raise AnnotationFormatError(
            f"unknown hierarchy level {name!r}"
        ) from None

"""Scheme-independent kernel analysis for the allocator.

Everything the allocation pipeline computes *before* it looks at an
:class:`~repro.alloc.allocator.AllocationConfig` — the control-flow
graph, strand partition, reaching definitions, register instances
(webs), read-operand groups, and the divergence-hazard fencing baked
into them — depends only on the kernel's architectural content plus one
bit of configuration: the ``assume_persistent_strands`` limit-study
flag, which changes where strands end.  A multi-config sweep
(sensitivity studies, the bench harness's 18-scheme software grid, the
auto-tuner direction in the ROADMAP) therefore re-derives identical
structures once per config unless the analysis is factored out.

:class:`KernelAnalysis` is that factored phase.  :func:`analyze_kernel`
computes one from scratch on a pristine clone of the kernel (the clone
is owned by the analysis and never annotated — per-config levels passes
annotate their *own* clones, resolving instruction refs by position);
:func:`kernel_analysis` memoizes by ``(content fingerprint,
assume_persistent)`` exactly like the compiled-trace layer's liveness
cache.  Attaching a :class:`~repro.obs.provenance.ProvenanceRecorder`
to an allocation never touches this cache: every provenance event is
emitted by the per-config levels pass, so recorded and unrecorded runs
share the same cached analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.cfg import ControlFlowGraph
from ..analysis.reaching import ReachingDefinitions
from ..ir.kernel import Kernel
from ..obs.tracer import TRACER
from ..strands.model import StrandPartition
from ..strands.partition import partition_strands
from .webs import StrandValues, build_strand_values


@dataclass
class KernelAnalysis:
    """The scheme-independent inputs to the per-config levels pass.

    ``kernel`` is the analysis's private pristine clone; all contained
    refs (:class:`~repro.ir.kernel.InstructionRef`) are position-based
    and resolve identically on any structurally identical kernel, which
    is what lets one analysis drive annotation of many per-config
    clones.  Instances are immutable by convention: the levels pass
    only reads them.
    """

    fingerprint: str
    assume_persistent: bool
    kernel: Kernel
    cfg: ControlFlowGraph
    reaching: ReachingDefinitions
    partition: StrandPartition
    strand_values: List[StrandValues]


def analyze_kernel(
    kernel: Kernel, assume_persistent: bool = False
) -> KernelAnalysis:
    """Run the scheme-independent pipeline phase on a clone of ``kernel``.

    Uncached: every call pays full analysis cost.  Use
    :func:`kernel_analysis` unless you specifically need a fresh
    instance (the bench harness times this function to isolate the
    analysis share of a cold allocation).
    """
    clone = kernel.clone()
    with TRACER.span(
        "alloc.analysis",
        kernel=kernel.name,
        persistent=assume_persistent,
    ):
        with TRACER.span("alloc.partition"):
            cfg = ControlFlowGraph(clone)
            partition = partition_strands(
                clone, cfg, assume_persistent=assume_persistent
            )
        with TRACER.span("alloc.webs"):
            reaching = ReachingDefinitions(clone, cfg)
            strand_values = build_strand_values(
                clone, partition, reaching, cfg=cfg
            )
    return KernelAnalysis(
        fingerprint=kernel.content_fingerprint(),
        assume_persistent=assume_persistent,
        kernel=clone,
        cfg=cfg,
        reaching=reaching,
        partition=partition,
        strand_values=strand_values,
    )


#: (kernel content fingerprint, assume_persistent) -> KernelAnalysis.
#: Bounded like the compiled layer's analysis cache: cleared wholesale
#: at the limit, which keeps long fuzz runs from accumulating kernels.
_ANALYSIS_CACHE: Dict[Tuple[str, bool], KernelAnalysis] = {}
_ANALYSIS_CACHE_LIMIT = 128


def kernel_analysis(
    kernel: Kernel, assume_persistent: bool = False
) -> KernelAnalysis:
    """Cached accessor for :func:`analyze_kernel`.

    Analysis is deterministic in the kernel's architectural content, so
    a fingerprint hit is exact; structurally identical kernels (and all
    their clones) share one entry per ``assume_persistent`` flavour.
    """
    key = (kernel.content_fingerprint(), assume_persistent)
    hit = _ANALYSIS_CACHE.get(key)
    if hit is None:
        if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_LIMIT:
            _ANALYSIS_CACHE.clear()
        hit = analyze_kernel(kernel, assume_persistent)
        _ANALYSIS_CACHE[key] = hit
    return hit


def clear_analysis_cache() -> None:
    """Drop every cached analysis (benchmark cold-start, tests)."""
    _ANALYSIS_CACHE.clear()

"""The compile-time hierarchy allocator (Section 4).

``allocate_kernel`` runs the full pipeline on one kernel:

1. partition the kernel into strands (Section 4.1);
2. build register instances and read-operand groups per strand;
3. per strand, greedily allocate instances to the LRF (three-level
   configurations, Section 4.6) and then to the ORF (Figure 7),
   prioritised by energy savings per occupied issue slot, with partial
   range allocation (Section 4.3) and read operand allocation
   (Section 4.4) as configured;
4. annotate every instruction operand with its hierarchy level.

Steps 1–2 are scheme-independent and factored into
:mod:`repro.alloc.analysis` (:class:`KernelAnalysis`, cached by kernel
content fingerprint); steps 3–4 are the per-config *levels pass*.
``allocate_kernels_batch`` exploits the split: one analysis, one levels
pass per configuration — the workhorse of multi-config sweeps.

The allocator never changes program semantics: it only decides where
each value lives.  Any value whose location would be ambiguous at a
read (mixed reaching definitions, Figure 10) is kept available in the
MRF.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..energy.model import EnergyModel
from ..ir.instructions import DestAnnotation, SourceAnnotation
from ..ir.kernel import Kernel
from ..levels import Level
from ..obs.provenance import ProvenanceRecorder
from ..obs.tracer import TRACER
from ..strands.model import StrandPartition
from .analysis import KernelAnalysis, kernel_analysis
from .intervals import EntryFile
from .savings import (
    priority,
    read_operand_savings,
    value_allocation_savings,
)
from .webs import (
    ReadOperandCandidate,
    StrandValues,
    Web,
    WebRead,
)


@dataclass(frozen=True)
class AllocationConfig:
    """Configuration of the software-managed hierarchy.

    ``orf_entries`` is per thread (the paper sweeps 1-8; 3 is the most
    energy-efficient, Section 6.4).  ``use_lrf`` enables the three-level
    hierarchy; ``split_lrf`` gives each operand slot its own LRF bank.
    ``enable_partial_ranges`` and ``enable_read_operands`` toggle the
    Section 4.3/4.4 optimisations (off reproduces the baseline
    algorithm of Section 4.2).  ``allow_forward_branches`` lets values
    stay in the ORF across forward branches (Section 4.5); off restricts
    allocation to single basic blocks as in the baseline algorithm.
    """

    orf_entries: int = 3
    use_lrf: bool = False
    split_lrf: bool = False
    enable_partial_ranges: bool = True
    enable_read_operands: bool = True
    allow_forward_branches: bool = True
    #: Number of LRF banks when split (one per operand slot A/B/C).
    lrf_banks: int = 3
    #: Section 7 idealisation: ORF/LRF contents survive descheduling,
    #: so strands end only at backward branches.  NOT realisable in
    #: hardware; used by the limit study to bound cross-strand
    #: scheduling benefits.
    assume_persistent_strands: bool = False

    def energy_model(self) -> EnergyModel:
        return EnergyModel(
            orf_entries=self.orf_entries, split_lrf=self.split_lrf
        )

    @staticmethod
    def baseline_two_level(orf_entries: int = 3) -> "AllocationConfig":
        """Section 4.2 baseline: ORF only, no optimisations, block scope."""
        return AllocationConfig(
            orf_entries=orf_entries,
            use_lrf=False,
            enable_partial_ranges=False,
            enable_read_operands=False,
            allow_forward_branches=False,
        )

    @staticmethod
    def best_paper_config() -> "AllocationConfig":
        """The paper's most energy-efficient design (Section 6.4):
        3-entry ORF with a split LRF, all optimisations on."""
        return AllocationConfig(orf_entries=3, use_lrf=True, split_lrf=True)

    # -- serialization -----------------------------------------------------
    #
    # The JSON image is the config's cross-process form (the tune API,
    # tuner frontiers, explain --json); until now configs only crossed
    # process boundaries via pickle.  ``from_dict`` validates so a
    # hand-written document cannot silently build a config the
    # allocator would misinterpret.

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able image; ``from_dict`` round-trips it."""
        return {
            spec.name: getattr(self, spec.name)
            for spec in dataclasses.fields(self)
        }

    @staticmethod
    def from_dict(obj: Dict[str, Any]) -> "AllocationConfig":
        """Build a validated config from its JSON image.

        Raises :class:`ValueError` naming the offending field on
        unknown keys, wrong types, ``orf_entries < 1``, ``lrf_banks``
        outside 1..3, a non-default ``lrf_banks`` without
        ``split_lrf`` (the field is ignored unless the LRF is split,
        so a mismatch means the document does not describe the config
        it would build), or ``split_lrf`` without ``use_lrf``.
        """
        if not isinstance(obj, dict):
            raise ValueError("config must be an object")
        specs = {spec.name: spec for spec in dataclasses.fields(
            AllocationConfig
        )}
        unknown = set(obj) - set(specs)
        if unknown:
            raise ValueError(
                f"unknown config field(s): {', '.join(sorted(unknown))}"
            )
        kwargs: Dict[str, Any] = {}
        for name, spec in specs.items():
            if name not in obj:
                continue
            value = obj[name]
            if spec.type == "int":
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValueError(f"{name} must be an integer")
            elif not isinstance(value, bool):
                raise ValueError(f"{name} must be a boolean")
            kwargs[name] = value
        config = AllocationConfig(**kwargs)
        if config.orf_entries < 1:
            raise ValueError(
                f"orf_entries must be >= 1, got {config.orf_entries}"
            )
        if not 1 <= config.lrf_banks <= 3:
            raise ValueError(
                f"lrf_banks must be in 1..3, got {config.lrf_banks}"
            )
        if not config.split_lrf and config.lrf_banks != 3:
            raise ValueError(
                f"lrf_banks={config.lrf_banks} mismatches "
                "split_lrf=False (banks are only meaningful with a "
                "split LRF; omit the field or use the default 3)"
            )
        if config.split_lrf and not config.use_lrf:
            raise ValueError("split_lrf requires use_lrf")
        return config


@dataclass
class WebAssignment:
    """Where one register instance was placed."""

    web: Web
    level: Level
    #: ORF entry indices (len == width_words) or the LRF bank in [0].
    entries: Tuple[int, ...]
    #: Reads serviced from the allocated level (position order).
    covered_reads: Tuple[WebRead, ...]
    #: True if the range was shortened (Section 4.3).
    partial: bool
    #: Estimated energy saved (pJ per dynamic execution of the strand).
    savings: float


@dataclass
class ReadOperandAssignment:
    """A read operand cached in the ORF (Section 4.4)."""

    candidate: ReadOperandCandidate
    entries: Tuple[int, ...]
    covered_reads: Tuple[WebRead, ...]
    partial: bool
    savings: float


@dataclass
class AllocationResult:
    """Outcome of allocating one kernel."""

    kernel: Kernel
    config: AllocationConfig
    partition: StrandPartition
    strand_values: List[StrandValues]
    web_assignments: List[WebAssignment] = field(default_factory=list)
    read_assignments: List[ReadOperandAssignment] = field(
        default_factory=list
    )

    def assignments_for_level(self, level: Level) -> List[WebAssignment]:
        return [a for a in self.web_assignments if a.level is level]

    @property
    def num_webs(self) -> int:
        return sum(len(sv.webs) for sv in self.strand_values)

    def summary(self) -> Dict[str, int]:
        return {
            "strands": self.partition.num_strands,
            "webs": self.num_webs,
            "lrf_values": len(self.assignments_for_level(Level.LRF)),
            "orf_values": len(self.assignments_for_level(Level.ORF)),
            "partial_ranges": sum(
                1 for a in self.web_assignments if a.partial
            ),
            "read_operands": len(self.read_assignments),
        }

    def strand_report(self) -> List[Dict[str, object]]:
        """Per-strand allocation quality: instance counts, how many
        landed in each level, and the estimated static energy saved.

        Useful when diagnosing why a kernel under-uses the hierarchy
        (e.g. the paper's Reduction: tiny strands, nothing to allocate).
        """
        by_strand: Dict[int, Dict[str, object]] = {}
        for values in self.strand_values:
            by_strand[values.strand.strand_id] = {
                "strand": values.strand.strand_id,
                "instructions": len(values.strand),
                "webs": len(values.webs),
                "lrf_values": 0,
                "orf_values": 0,
                "read_operands": 0,
                "estimated_savings_pj": 0.0,
            }
        for assignment in self.web_assignments:
            row = by_strand[assignment.web.strand_id]
            key = (
                "lrf_values"
                if assignment.level is Level.LRF
                else "orf_values"
            )
            row[key] += 1  # type: ignore[operator]
            row["estimated_savings_pj"] += assignment.savings  # type: ignore[operator]
        for assignment in self.read_assignments:
            row = by_strand[assignment.candidate.strand_id]
            row["read_operands"] += 1  # type: ignore[operator]
            row["estimated_savings_pj"] += assignment.savings  # type: ignore[operator]
        return [by_strand[key] for key in sorted(by_strand)]


def allocate_kernel(
    kernel: Kernel,
    config: AllocationConfig,
    model: Optional[EnergyModel] = None,
    recorder: Optional[ProvenanceRecorder] = None,
    analysis: Optional[KernelAnalysis] = None,
) -> AllocationResult:
    """Run the full allocation pipeline on a kernel (annotates in place).

    The scheme-independent phase comes from the shared analysis cache
    (:func:`repro.alloc.analysis.kernel_analysis`); only the per-config
    levels pass runs here.  ``analysis`` may supply the phase
    explicitly (it must describe a structurally identical kernel under
    ``config``'s persistence flag); batch sweeps pass one analysis to
    many configs.

    ``recorder`` (kept out of :class:`AllocationConfig`, which is
    hashed into memo keys) collects a provenance trail of every
    allocation decision; attaching one never changes the result — nor
    the shared analysis, which records nothing.
    """
    with TRACER.span("alloc.kernel", kernel=kernel.name):
        if analysis is None:
            analysis = kernel_analysis(
                kernel, config.assume_persistent_strands
            )
        elif analysis.assume_persistent != config.assume_persistent_strands:
            raise ValueError(
                "analysis was computed with assume_persistent="
                f"{analysis.assume_persistent} but config requires "
                f"{config.assume_persistent_strands}"
            )
        return _levels_pass(kernel, analysis, config, model, recorder)


def allocate_kernels_batch(
    kernel: Kernel,
    configs: Sequence[AllocationConfig],
    model: Optional[EnergyModel] = None,
    recorders: Optional[Sequence[Optional[ProvenanceRecorder]]] = None,
) -> List[AllocationResult]:
    """Allocate one kernel under many configs, sharing the analysis.

    Semantically ``[allocate_kernel(kernel.clone(), c) for c in
    configs]`` — each config annotates its own pristine clone — but the
    scheme-independent phase runs once per distinct
    ``assume_persistent_strands`` flavour instead of once per config.
    ``model`` (optional) applies to every config; ``recorders``, when
    given, is parallel to ``configs`` and attaches per-config
    provenance without touching the shared analysis.
    """
    if recorders is not None and len(recorders) != len(configs):
        raise ValueError("recorders must parallel configs")
    results: List[AllocationResult] = []
    analyses: Dict[bool, KernelAnalysis] = {}
    with TRACER.span(
        "alloc.levels_batch", kernel=kernel.name, configs=len(configs)
    ):
        for index, config in enumerate(configs):
            flag = config.assume_persistent_strands
            analysis = analyses.get(flag)
            if analysis is None:
                analysis = kernel_analysis(kernel, flag)
                analyses[flag] = analysis
            results.append(
                allocate_kernel(
                    kernel.clone(),
                    config,
                    model=model,
                    recorder=recorders[index] if recorders else None,
                    analysis=analysis,
                )
            )
    return results


def _levels_pass(
    kernel: Kernel,
    analysis: KernelAnalysis,
    config: AllocationConfig,
    model: Optional[EnergyModel],
    recorder: Optional[ProvenanceRecorder],
) -> AllocationResult:
    """The per-config phase: stamp strand bits, place values, annotate.

    ``kernel`` must be structurally identical to ``analysis.kernel``;
    every ref in the analysis resolves by position.  The analysis is
    read-only here — partitions and strand values are shared across
    all configs built from them.
    """
    kernel.reset_annotations()
    ending = analysis.partition.ends_strand_positions
    for ref, instruction in kernel.instructions():
        instruction.ends_strand = ref.position in ending
        instruction.ensure_default_annotations()
    if model is None:
        model = config.energy_model()

    result = AllocationResult(
        kernel, config, analysis.partition, analysis.strand_values
    )
    with TRACER.span("alloc.levels"):
        for values in analysis.strand_values:
            _allocate_strand(
                kernel, values, config, model, result, recorder
            )
    return result


# ---------------------------------------------------------------------------
# per-strand allocation
# ---------------------------------------------------------------------------


def _allocate_strand(
    kernel: Kernel,
    values: StrandValues,
    config: AllocationConfig,
    model: EnergyModel,
    result: AllocationResult,
    recorder: Optional[ProvenanceRecorder] = None,
) -> None:
    lrf_assigned: Dict[int, WebAssignment] = {}
    if config.use_lrf:
        lrf_assigned = _lrf_pass(
            kernel, values, config, model, result, recorder
        )
    _orf_pass(
        kernel, values, config, model, result, lrf_assigned, recorder
    )


def _web_positions(web: Web, covered: Sequence[WebRead]) -> List[int]:
    positions = [d.ref.position for d in web.defs if d.ref is not None]
    positions.extend(read.position for read in covered)
    return sorted(set(positions))


def _web_scope_ok(web: Web, config: AllocationConfig) -> bool:
    """Baseline block-scope restriction (Section 4.2)."""
    if config.allow_forward_branches:
        return True
    blocks = {d.ref.block_index for d in web.defs if d.ref is not None}
    return len(blocks) == 1


def _scoped_reads(web: Web, config: AllocationConfig) -> List[WebRead]:
    """Coverable reads, restricted to block scope for the baseline."""
    reads = web.coverable_reads
    if config.allow_forward_branches:
        return reads
    def_blocks = {d.ref.block_index for d in web.defs if d.ref is not None}
    if len(def_blocks) != 1:
        return []
    (block,) = def_blocks
    return [read for read in reads if read.site.ref.block_index == block]


def _lrf_pass(
    kernel: Kernel,
    values: StrandValues,
    config: AllocationConfig,
    model: EnergyModel,
    result: AllocationResult,
    recorder: Optional[ProvenanceRecorder] = None,
) -> Dict[int, WebAssignment]:
    """Allocate instances to the LRF first (Section 4.6)."""
    strand_id = values.strand.strand_id
    num_banks = config.lrf_banks if config.split_lrf else 1
    banks = EntryFile(num_banks)

    # Entries carry the push-time savings: covered never changes
    # between push and pop, so recomputing at pop would yield the
    # identical float.
    heap: List[
        Tuple[float, int, Web, List[WebRead], Optional[int], float]
    ] = []
    for seq, web in enumerate(values.webs):
        if web.width_words != 1 or not web.all_private:
            if recorder is not None:
                recorder.record(
                    "skip", strand_id, "web", web.reg,
                    level="LRF",
                    positions=_web_positions(web, web.coverable_reads),
                    reason="wide_or_shared",
                )
            continue
        if not _web_scope_ok(web, config):
            if recorder is not None:
                recorder.record(
                    "skip", strand_id, "web", web.reg,
                    level="LRF",
                    positions=_web_positions(web, web.coverable_reads),
                    reason="block_scope",
                )
            continue
        covered = _scoped_reads(web, config)
        bank = _lrf_bank_for(web, covered, config)
        if bank is None:
            if recorder is not None:
                recorder.record(
                    "skip", strand_id, "web", web.reg,
                    level="LRF",
                    positions=_web_positions(web, covered),
                    reason="multi_slot_split_lrf",
                )
            continue
        partial_excludes = len(covered) != len(web.coverable_reads)
        savings = value_allocation_savings(
            web, covered, Level.LRF, model,
            force_mrf_write=partial_excludes,
        )
        if savings <= 0:
            if recorder is not None:
                recorder.record(
                    "skip", strand_id, "web", web.reg,
                    level="LRF",
                    positions=_web_positions(web, covered),
                    reason="no_savings", savings=round(savings, 6),
                )
            continue
        begin, end = _web_interval(web, covered)
        if recorder is not None:
            recorder.record(
                "candidate", strand_id, "web", web.reg,
                level="LRF",
                positions=_web_positions(web, covered),
                savings=round(savings, 6),
                priority=round(priority(savings, begin, end), 6),
                bank=bank, reads=len(covered),
            )
        heapq.heappush(
            heap,
            (-priority(savings, begin, end), seq, web, covered, bank, savings),
        )

    assigned: Dict[int, WebAssignment] = {}
    while heap:
        _, _, web, covered, bank, savings = heapq.heappop(heap)
        begin, end = _web_interval(web, covered)
        if config.split_lrf:
            if not banks.is_available(bank, begin, end):
                if recorder is not None:
                    recorder.record(
                        "fail", strand_id, "web", web.reg,
                        level="LRF",
                        positions=_web_positions(web, covered),
                        reason="bank_busy", bank=bank,
                    )
                continue
            entry = bank
        else:
            entry = banks.find_free(begin, end)
            if entry is None:
                if recorder is not None:
                    recorder.record(
                        "fail", strand_id, "web", web.reg,
                        level="LRF",
                        positions=_web_positions(web, covered),
                        reason="no_free_bank",
                    )
                continue
        banks.allocate(entry, begin, end)
        assignment = WebAssignment(
            web=web,
            level=Level.LRF,
            entries=(entry,),
            covered_reads=tuple(covered),
            partial=False,
            savings=savings,
        )
        assigned[web.web_id] = assignment
        result.web_assignments.append(assignment)
        _annotate_web(kernel, assignment, config)
        if recorder is not None:
            recorder.record(
                "place", strand_id, "web", web.reg,
                level="LRF",
                positions=_web_positions(web, covered),
                entry=entry, savings=round(savings, 6),
                reads=len(covered),
            )
    return assigned


def _lrf_bank_for(
    web: Web, covered: Sequence[WebRead], config: AllocationConfig
) -> Optional[int]:
    """Which LRF bank a web may use; None if LRF-ineligible.

    With a split LRF, a value read from more than one operand slot must
    go to the ORF instead (Section 3.2).  With a unified LRF there is a
    single bank 0.
    """
    if not config.split_lrf:
        return 0
    slots = {read.site.slot for read in covered}
    if len(slots) > 1:
        return None
    if not slots:
        return 0  # dead value: any bank; use bank 0
    (slot,) = slots
    if slot >= config.lrf_banks:
        return None
    return slot


def _orf_pass(
    kernel: Kernel,
    values: StrandValues,
    config: AllocationConfig,
    model: EnergyModel,
    result: AllocationResult,
    lrf_assigned: Dict[int, WebAssignment],
    recorder: Optional[ProvenanceRecorder] = None,
) -> None:
    """Greedy ORF allocation with partial ranges and read operands."""
    strand_id = values.strand.strand_id
    orf = EntryFile(config.orf_entries)

    # Items: ("web", web) and ("read", candidate), one shared queue.
    # Entries carry the push-time savings so the first allocation
    # attempt does not recompute the identical value.
    heap: List[Tuple[float, int, str, object, List[WebRead], float]] = []
    seq = 0
    for web in values.webs:
        if web.web_id in lrf_assigned:
            continue
        if not _web_scope_ok(web, config):
            if recorder is not None:
                recorder.record(
                    "skip", strand_id, "web", web.reg,
                    level="ORF",
                    positions=_web_positions(web, web.coverable_reads),
                    reason="block_scope",
                )
            continue
        covered = _scoped_reads(web, config)
        partial_excludes = len(covered) != len(web.coverable_reads)
        savings = value_allocation_savings(
            web, covered, Level.ORF, model,
            force_mrf_write=partial_excludes,
        )
        if savings <= 0:
            if recorder is not None:
                recorder.record(
                    "skip", strand_id, "web", web.reg,
                    level="ORF",
                    positions=_web_positions(web, covered),
                    reason="no_savings", savings=round(savings, 6),
                )
            continue
        begin, end = _web_interval(web, covered)
        if recorder is not None:
            recorder.record(
                "candidate", strand_id, "web", web.reg,
                level="ORF",
                positions=_web_positions(web, covered),
                savings=round(savings, 6),
                priority=round(priority(savings, begin, end), 6),
                reads=len(covered), width=web.width_words,
            )
        heapq.heappush(
            heap,
            (-priority(savings, begin, end), seq, "web", web, covered, savings),
        )
        seq += 1

    if config.enable_read_operands:
        for candidate in values.read_candidates:
            covered = list(candidate.coverable_reads)
            if not config.allow_forward_branches:
                blocks = {r.site.ref.block_index for r in covered}
                if len(blocks) != 1:
                    if recorder is not None:
                        recorder.record(
                            "skip", strand_id, "read_operand",
                            candidate.reg, level="ORF",
                            positions=[r.position for r in covered],
                            reason="block_scope",
                        )
                    continue
            savings = read_operand_savings(candidate, covered, model)
            if savings <= 0:
                if recorder is not None:
                    recorder.record(
                        "skip", strand_id, "read_operand",
                        candidate.reg, level="ORF",
                        positions=[r.position for r in covered],
                        reason="no_savings", savings=round(savings, 6),
                    )
                continue
            begin = covered[0].position
            end = covered[-1].position
            if recorder is not None:
                recorder.record(
                    "candidate", strand_id, "read_operand",
                    candidate.reg, level="ORF",
                    positions=[r.position for r in covered],
                    savings=round(savings, 6),
                    priority=round(priority(savings, begin, end), 6),
                    reads=len(covered),
                )
            heapq.heappush(
                heap,
                (
                    -priority(savings, begin, end),
                    seq,
                    "read",
                    candidate,
                    covered,
                    savings,
                ),
            )
            seq += 1

    while heap:
        _, _, kind, item, covered, savings = heapq.heappop(heap)
        if kind == "web":
            _try_allocate_web(
                kernel, item, covered, orf, config, model, result,
                recorder, strand_id, savings=savings,
            )
        else:
            _try_allocate_read_operand(
                kernel, item, covered, orf, config, model, result,
                recorder, strand_id, savings=savings,
            )


def _try_allocate_web(
    kernel: Kernel,
    web: Web,
    covered: List[WebRead],
    orf: EntryFile,
    config: AllocationConfig,
    model: EnergyModel,
    result: AllocationResult,
    recorder: Optional[ProvenanceRecorder] = None,
    strand_id: int = -1,
    savings: Optional[float] = None,
) -> None:
    full_covered_count = len(covered)
    while True:
        if savings is None:
            partial = len(covered) != len(web.coverable_reads)
            savings = value_allocation_savings(
                web, covered, Level.ORF, model, force_mrf_write=partial
            )
        if savings <= 0:
            if recorder is not None:
                recorder.record(
                    "fail", strand_id, "web", web.reg,
                    level="ORF",
                    positions=_web_positions(web, covered),
                    reason="no_savings_after_trim"
                    if len(covered) != full_covered_count
                    else "no_savings",
                    savings=round(savings, 6),
                )
            return
        begin, end = _web_interval(web, covered)
        entries = orf.find_free_group(begin, end, web.width_words)
        if entries is not None:
            for entry in entries:
                orf.allocate(entry, begin, end)
            assignment = WebAssignment(
                web=web,
                level=Level.ORF,
                entries=tuple(entries),
                covered_reads=tuple(covered),
                partial=len(covered) != full_covered_count,
                savings=savings,
            )
            result.web_assignments.append(assignment)
            _annotate_web(kernel, assignment, config)
            if recorder is not None:
                recorder.record(
                    "place", strand_id, "web", web.reg,
                    level="ORF",
                    positions=_web_positions(web, covered),
                    entries=list(entries),
                    savings=round(savings, 6),
                    partial=len(covered) != full_covered_count,
                    reads=len(covered),
                    range=[begin, end],
                )
            return
        # Partial range allocation (Section 4.3): reassign the last read
        # in the strand to the MRF and retry with a shorter range.
        if not config.enable_partial_ranges or not covered:
            if recorder is not None:
                recorder.record(
                    "fail", strand_id, "web", web.reg,
                    level="ORF",
                    positions=_web_positions(web, covered),
                    reason="orf_full", range=[begin, end],
                )
            return
        if recorder is not None:
            recorder.record(
                "trim", strand_id, "web", web.reg,
                level="ORF",
                positions=_web_positions(web, covered),
                dropped_read=covered[-1].position,
                range=[begin, end],
            )
        covered = covered[:-1]
        savings = None


def _try_allocate_read_operand(
    kernel: Kernel,
    candidate: ReadOperandCandidate,
    covered: List[WebRead],
    orf: EntryFile,
    config: AllocationConfig,
    model: EnergyModel,
    result: AllocationResult,
    recorder: Optional[ProvenanceRecorder] = None,
    strand_id: int = -1,
    savings: Optional[float] = None,
) -> None:
    full_covered_count = len(covered)
    while len(covered) >= 2:
        if savings is None:
            savings = read_operand_savings(candidate, covered, model)
        if savings <= 0:
            if recorder is not None:
                recorder.record(
                    "fail", strand_id, "read_operand", candidate.reg,
                    level="ORF",
                    positions=[r.position for r in covered],
                    reason="no_savings", savings=round(savings, 6),
                )
            return
        begin = covered[0].position
        end = covered[-1].position
        # Read-operand ranges are *closed* occupancy: the entry is
        # filled in the first read's read phase and must survive until
        # the last read's read phase, so they conflict with any web
        # window touching either boundary (fuzz seed 320).
        entries = orf.find_free_group(
            begin, end, candidate.width_words, closed=True
        )
        if entries is not None:
            for entry in entries:
                orf.allocate(entry, begin, end, closed=True)
            assignment = ReadOperandAssignment(
                candidate=candidate,
                entries=tuple(entries),
                covered_reads=tuple(covered),
                partial=len(covered) != full_covered_count,
                savings=savings,
            )
            result.read_assignments.append(assignment)
            _annotate_read_operand(kernel, assignment)
            if recorder is not None:
                recorder.record(
                    "place", strand_id, "read_operand", candidate.reg,
                    level="ORF",
                    positions=[r.position for r in covered],
                    entries=list(entries),
                    savings=round(savings, 6),
                    partial=len(covered) != full_covered_count,
                    reads=len(covered),
                    range=[begin, end],
                )
            return
        if not config.enable_partial_ranges:
            if recorder is not None:
                recorder.record(
                    "fail", strand_id, "read_operand", candidate.reg,
                    level="ORF",
                    positions=[r.position for r in covered],
                    reason="orf_full", range=[begin, end],
                )
            return
        if recorder is not None:
            recorder.record(
                "trim", strand_id, "read_operand", candidate.reg,
                level="ORF",
                positions=[r.position for r in covered],
                dropped_read=covered[-1].position,
                range=[begin, end],
            )
        covered = covered[:-1]
        savings = None


def _web_interval(
    web: Web, covered: Sequence[WebRead]
) -> Tuple[int, int]:
    begin = web.first_def_position
    end = covered[-1].position if covered else begin
    last_def = max(d.ref.position for d in web.defs if d.ref is not None)
    return begin, max(end, last_def)


# ---------------------------------------------------------------------------
# annotation
# ---------------------------------------------------------------------------


def _annotate_web(
    kernel: Kernel, assignment: WebAssignment, config: AllocationConfig
) -> None:
    web = assignment.web
    level = assignment.level
    entry = assignment.entries[0]
    needs_mrf = web.needs_mrf_write or len(assignment.covered_reads) != len(
        web.coverable_reads
    )
    levels: Tuple[Level, ...] = (level,) + (
        (Level.MRF,) if needs_mrf else ()
    )
    for definition in web.defs:
        if definition.ref is None:
            continue
        instruction = kernel.instruction_at(definition.ref)
        instruction.dst_ann = DestAnnotation(
            levels=levels,
            orf_entry=entry if level is Level.ORF else None,
            lrf_bank=entry if level is Level.LRF else None,
        )
    for read in assignment.covered_reads:
        instruction = kernel.instruction_at(read.site.ref)
        anns = list(instruction.src_anns or ())
        anns[read.site.slot] = SourceAnnotation(
            level=level,
            orf_entry=entry if level is Level.ORF else None,
            lrf_bank=entry if level is Level.LRF else None,
        )
        instruction.src_anns = tuple(anns)


def _annotate_read_operand(
    kernel: Kernel, assignment: ReadOperandAssignment
) -> None:
    entry = assignment.entries[0]
    first, *rest = assignment.covered_reads
    instruction = kernel.instruction_at(first.site.ref)
    anns = list(instruction.src_anns or ())
    anns[first.site.slot] = SourceAnnotation(
        level=Level.MRF, orf_write_entry=entry
    )
    instruction.src_anns = tuple(anns)
    for read in rest:
        instruction = kernel.instruction_at(read.site.ref)
        anns = list(instruction.src_anns or ())
        anns[read.site.slot] = SourceAnnotation(
            level=Level.ORF, orf_entry=entry
        )
        instruction.src_anns = tuple(anns)

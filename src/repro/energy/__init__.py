"""Energy model and accounting (Section 5.2, Tables 3-4)."""

from .accounting import (
    EnergyBreakdown,
    compute_energy,
    energy_savings,
    normalized_energy,
)
from .chip_power import ChipPowerResult, chip_power_savings
from .encoding import EncodingOverheadResult, encoding_overhead
from .model import EnergyModel, EnergyModelError

__all__ = [
    "ChipPowerResult",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyModelError",
    "EncodingOverheadResult",
    "chip_power_savings",
    "compute_energy",
    "encoding_overhead",
    "energy_savings",
    "normalized_energy",
]

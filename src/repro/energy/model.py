"""The register-file energy model (Section 5.2).

Energy per warp-level operand access decomposes into *access* energy
(the storage array) and *wire* energy (moving 32 x 32-bit values between
the array and the consuming/producing datapath).  Both depend on the
hierarchy level; wire energy additionally depends on whether the private
(ALU) or shared (SFU/MEM/TEX) datapath is on the other end, and ORF
access energy depends on the ORF size (Table 3).

All public methods return picojoules for one warp-wide access of one
32-bit register operand.  Multi-word (64/128-bit) operands are accounted
as multiple 32-bit accesses by the callers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..levels import Level
from . import tables


class EnergyModelError(ValueError):
    """Raised for physically impossible queries (e.g. shared-unit LRF)."""


@dataclass(frozen=True)
class EnergyModel:
    """Parameterised energy model; defaults follow Tables 3 and 4.

    Parameters
    ----------
    orf_entries:
        ORF entries per thread (1-8); selects the Table 3 row.
    split_lrf:
        If True, model the split LRF (one bank per operand slot).  The
        per-access energy equals the unified 1-entry LRF, but the wire
        distance to the ALUs grows because three banks must be placed
        (Section 6.4 discusses this tradeoff and finds LRF wire energy
        under 1% of the baseline either way).
    split_lrf_distance_mm:
        ALU-to-LRF distance used when ``split_lrf`` is set.
    """

    orf_entries: int = 3
    split_lrf: bool = False
    split_lrf_distance_mm: float = 0.075
    #: Per-128-bit access energies; override for sensitivity studies.
    mrf_read_pj: float = tables.MRF_READ_PJ
    mrf_write_pj: float = tables.MRF_WRITE_PJ
    lrf_read_pj: float = tables.LRF_READ_PJ
    lrf_write_pj: float = tables.LRF_WRITE_PJ
    wire_pj_per_mm: float = tables.WIRE_PJ_PER_MM_32B
    #: Multiplier on the Table 3 ORF energies (sensitivity studies).
    orf_energy_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.orf_entries not in tables.ORF_ENERGY_PJ:
            raise EnergyModelError(
                f"no Table 3 row for ORF size {self.orf_entries}; "
                f"valid sizes: {sorted(tables.ORF_ENERGY_PJ)}"
            )
        # Per-instance memo for read_energy/write_energy: the model is
        # frozen, so each of the six (level, datapath) combinations has
        # one answer — and the allocator's savings loops query them
        # millions of times across a sweep.  Not a dataclass field, so
        # equality/hash/repr are unaffected.
        object.__setattr__(self, "_operand_energy_memo", {})

    # -- access energy (storage array only) --------------------------------

    def access_energy(self, level: Level, is_read: bool) -> float:
        """pJ for one warp access (8 x 128-bit entries), array only."""
        per_entry = self._per_entry_access(level, is_read)
        return per_entry * tables.WARP_ENTRY_ACCESSES

    def _per_entry_access(self, level: Level, is_read: bool) -> float:
        if level is Level.MRF:
            return self.mrf_read_pj if is_read else self.mrf_write_pj
        if level is Level.ORF:
            read_pj, write_pj = tables.ORF_ENERGY_PJ[self.orf_entries]
            scaled = read_pj if is_read else write_pj
            return scaled * self.orf_energy_scale
        if level is Level.LRF:
            return self.lrf_read_pj if is_read else self.lrf_write_pj
        raise EnergyModelError(f"unknown level {level!r}")

    # -- wire energy ---------------------------------------------------------

    def wire_distance_mm(self, level: Level, shared_unit: bool) -> float:
        """Distance between a hierarchy level and a datapath (Table 4)."""
        if level is Level.MRF:
            return (
                tables.MRF_TO_SHARED_MM
                if shared_unit
                else tables.MRF_TO_PRIVATE_MM
            )
        if level is Level.ORF:
            return (
                tables.ORF_TO_SHARED_MM
                if shared_unit
                else tables.ORF_TO_PRIVATE_MM
            )
        if level is Level.LRF:
            if shared_unit:
                raise EnergyModelError(
                    "the LRF is not reachable from the shared datapath "
                    "(Section 3.2)"
                )
            if self.split_lrf:
                return self.split_lrf_distance_mm
            return tables.LRF_TO_PRIVATE_MM
        raise EnergyModelError(f"unknown level {level!r}")

    def wire_energy(self, level: Level, shared_unit: bool) -> float:
        """pJ to move one warp operand (32 x 32 bits) to/from a level."""
        distance = self.wire_distance_mm(level, shared_unit)
        return (
            self.wire_pj_per_mm * distance * tables.THREADS_PER_WARP
        )

    # -- combined (what the allocator's savings functions use) -------------

    def read_energy(self, level: Level, shared_unit: bool = False) -> float:
        """Total pJ (access + wire) for one warp operand read."""
        key = (level, shared_unit, True)
        cached = self._operand_energy_memo.get(key)
        if cached is None:
            cached = self.access_energy(level, True) + self.wire_energy(
                level, shared_unit
            )
            self._operand_energy_memo[key] = cached
        return cached

    def write_energy(self, level: Level, shared_unit: bool = False) -> float:
        """Total pJ (access + wire) for one warp operand write."""
        key = (level, shared_unit, False)
        cached = self._operand_energy_memo.get(key)
        if cached is None:
            cached = self.access_energy(level, False) + self.wire_energy(
                level, shared_unit
            )
            self._operand_energy_memo[key] = cached
        return cached

    def with_orf_entries(self, orf_entries: int) -> "EnergyModel":
        """A copy of this model with a different ORF size."""
        from dataclasses import replace

        return replace(self, orf_entries=orf_entries)

    def scaled(
        self,
        mrf: float = 1.0,
        wire: float = 1.0,
        orf: float = 1.0,
        lrf: float = 1.0,
    ) -> "EnergyModel":
        """A copy with component energies multiplied (sensitivity
        studies: how far can the synthesis numbers move before the
        paper's conclusions change?)."""
        from dataclasses import replace

        return replace(
            self,
            mrf_read_pj=self.mrf_read_pj * mrf,
            mrf_write_pj=self.mrf_write_pj * mrf,
            wire_pj_per_mm=self.wire_pj_per_mm * wire,
            orf_energy_scale=self.orf_energy_scale * orf,
            lrf_read_pj=self.lrf_read_pj * lrf,
            lrf_write_pj=self.lrf_write_pj * lrf,
        )

"""Turning access counts into energy (Figures 13-15).

``compute_energy`` combines an :class:`AccessCounters` with an
:class:`EnergyModel` into a per-level access/wire breakdown;
``normalized_energy`` divides by the single-level-MRF baseline, which is
how every energy figure in the paper is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..hierarchy.counters import AccessCounters
from ..levels import ALL_LEVELS, Level
from .model import EnergyModel


@dataclass
class EnergyBreakdown:
    """Access and wire energy (pJ) per hierarchy level."""

    access_pj: Dict[Level, float] = field(
        default_factory=lambda: {level: 0.0 for level in ALL_LEVELS}
    )
    wire_pj: Dict[Level, float] = field(
        default_factory=lambda: {level: 0.0 for level in ALL_LEVELS}
    )

    @property
    def total_pj(self) -> float:
        return sum(self.access_pj.values()) + sum(self.wire_pj.values())

    def level_total(self, level: Level) -> float:
        return self.access_pj[level] + self.wire_pj[level]

    def normalized_by(self, baseline_pj: float) -> "EnergyBreakdown":
        """All components divided by a baseline total."""
        if baseline_pj <= 0:
            raise ValueError("baseline energy must be positive")
        result = EnergyBreakdown()
        for level in ALL_LEVELS:
            result.access_pj[level] = self.access_pj[level] / baseline_pj
            result.wire_pj[level] = self.wire_pj[level] / baseline_pj
        return result


def compute_energy(
    counters: AccessCounters, model: EnergyModel
) -> EnergyBreakdown:
    """Energy of a set of hierarchy accesses under a model."""
    breakdown = EnergyBreakdown()
    for (level, is_read, shared_unit), count in counters.items():
        if count == 0:
            continue
        breakdown.access_pj[level] += count * model.access_energy(
            level, is_read
        )
        breakdown.wire_pj[level] += count * model.wire_energy(
            level, shared_unit
        )
    return breakdown


def normalized_energy(
    counters: AccessCounters,
    baseline: AccessCounters,
    model: EnergyModel,
    baseline_model: EnergyModel = None,
) -> float:
    """Total energy normalized to the single-level baseline (Fig 13).

    The baseline is evaluated with MRF energies only (its counters only
    touch the MRF), so its model's ORF size is irrelevant; pass
    ``baseline_model`` to override regardless.
    """
    if baseline_model is None:
        baseline_model = model
    total = compute_energy(counters, model).total_pj
    baseline_total = compute_energy(baseline, baseline_model).total_pj
    if baseline_total <= 0:
        raise ValueError("baseline has no accesses")
    return total / baseline_total


def energy_savings(
    counters: AccessCounters,
    baseline: AccessCounters,
    model: EnergyModel,
) -> float:
    """Fractional savings vs the baseline (paper headline: 0.54)."""
    return 1.0 - normalized_energy(counters, baseline, model)

"""Instruction-encoding overhead model (Section 6.5).

The SW-managed hierarchy changes instruction encodings in two ways:
operand hierarchy levels (folded into unused register-namespace space on
current GPUs, so zero extra bits in the optimistic case) and one extra
bit per instruction marking strand endpoints.  The paper's high-level
model assumes added bits increase fetch+decode energy linearly, with
fetch+decode at ~10% of chip-wide dynamic power.

Paper numbers reproduced by this module:

* optimistic (1 extra bit): +3% fetch/decode energy, +0.3% chip-wide,
  leaving a net 5.5% chip-wide saving from the 54% register file saving;
* pessimistic (5 extra bits: 4 namespace bits + 1 strand bit): +15%
  fetch/decode, +1.5% chip-wide, net >= 4.3% chip-wide saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import tables


@dataclass(frozen=True)
class EncodingOverheadResult:
    extra_bits: int
    fetch_decode_increase: float
    chip_wide_overhead: float
    register_file_savings: float
    chip_wide_gross_savings: float
    chip_wide_net_savings: float


def encoding_overhead(
    extra_bits: int,
    register_file_savings: float,
    baseline_bits: int = tables.BASELINE_ENCODING_BITS,
    fetch_decode_fraction: float = tables.FETCH_DECODE_FRACTION_OF_CHIP_POWER,
    register_file_chip_fraction: float = None,
) -> EncodingOverheadResult:
    """Chip-wide net savings after encoding overhead.

    Parameters
    ----------
    extra_bits:
        Bits added to every instruction (1 optimistic, 5 pessimistic).
    register_file_savings:
        Fractional register file energy saving (e.g. 0.54).
    register_file_chip_fraction:
        Fraction of chip dynamic power spent in register files; defaults
        to the paper's model (register file is ~15.4% of SM power, SM
        power is ~70% of chip power, giving the paper's 5.8% chip-wide
        saving for a 54% register file saving).
    """
    if extra_bits < 0:
        raise ValueError("extra_bits must be >= 0")
    if not 0.0 <= register_file_savings <= 1.0:
        raise ValueError("register_file_savings must be in [0, 1]")
    if register_file_chip_fraction is None:
        register_file_chip_fraction = (
            tables.REGISTER_FILE_FRACTION_OF_SM_POWER
            * tables.SM_FRACTION_OF_CHIP_POWER
        )
    fetch_decode_increase = extra_bits / baseline_bits
    chip_wide_overhead = fetch_decode_fraction * fetch_decode_increase
    chip_wide_gross = register_file_savings * register_file_chip_fraction
    return EncodingOverheadResult(
        extra_bits=extra_bits,
        fetch_decode_increase=fetch_decode_increase,
        chip_wide_overhead=chip_wide_overhead,
        register_file_savings=register_file_savings,
        chip_wide_gross_savings=chip_wide_gross,
        chip_wide_net_savings=chip_wide_gross - chip_wide_overhead,
    )

"""Published energy-model constants (Tables 3 and 4 of the paper).

The authors synthesised the ORF/LRF as 3R1W flip-flop arrays in a
commercial 40 nm library at 1 GHz / 0.9 V and generated the MRF SRAM
banks with a memory compiler (Section 5.2).  We use their published
numbers verbatim; this module is pure data.

Energies are per 128-bit access (one bank entry = one register for
4 threads).  A full-warp operand access touches 8 such entries
(32 threads x 32 bits), and warp-level wire energy moves 32 x 32-bit
values.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table 3 — ORF read/write energy (pJ) per 128-bit access, keyed by the
#: number of ORF entries per thread.
ORF_ENERGY_PJ: Dict[int, Tuple[float, float]] = {
    1: (0.7, 2.0),
    2: (1.2, 3.8),
    3: (1.2, 4.4),
    4: (1.9, 6.1),
    5: (2.0, 6.0),
    6: (2.0, 6.7),
    7: (2.4, 7.7),
    8: (3.4, 10.9),
}

#: Table 4 — MRF access energy (pJ per 128-bit access).
MRF_READ_PJ = 8.0
MRF_WRITE_PJ = 11.0

#: Table 4 — LRF access energy (pJ per 128-bit access).  Matches the
#: 1-entry row of Table 3: the LRF is a 1-entry flip-flop array.
LRF_READ_PJ = 0.7
LRF_WRITE_PJ = 2.0

#: Table 4 — wire energy for a 32-bit value (pJ per mm).
WIRE_PJ_PER_MM_32B = 1.9

#: Table 4 — wire distances (mm) from each level to the private (ALU)
#: datapath and to the shared datapath (SFU/MEM/TEX).
MRF_TO_PRIVATE_MM = 1.0
ORF_TO_PRIVATE_MM = 0.2
LRF_TO_PRIVATE_MM = 0.05
MRF_TO_SHARED_MM = 1.0
ORF_TO_SHARED_MM = 0.4
#: The LRF is not reachable from the shared datapath (Section 3.2).

#: Table 4 — remaining physical parameters (recorded for completeness).
MRF_BANK_AREA_UM2 = 38_000.0
WIRE_CAPACITANCE_FF_PER_MM = 300.0
VOLTAGE_V = 0.9
FREQUENCY_GHZ = 1.0

#: Lanes per warp and 128-bit entries per warp-wide operand access.
THREADS_PER_WARP = 32
ENTRIES_PER_WARP_ACCESS = 4  # per 4-lane cluster; see note below
#: A warp operand = 32 threads x 32 bits = 8 entries of 128 bits.
WARP_ENTRY_ACCESSES = THREADS_PER_WARP * 32 // 128

#: Section 6.4 — the paper's high-level GPU power model attributes
#: 15-20% of SM dynamic power to the register file; their 54% register
#: file saving equates to 8.3% of SM dynamic power and 5.8% chip-wide.
REGISTER_FILE_FRACTION_OF_SM_POWER = 0.154
SM_FRACTION_OF_CHIP_POWER = 0.70

#: Section 6.5 — instruction fetch/decode/schedule is ~15% of chip-wide
#: dynamic power; fetch+decode alone ~10%.
FETCH_DECODE_FRACTION_OF_CHIP_POWER = 0.10
#: Baseline instruction encoding width assumed by the linear-overhead
#: model for added bits (a 3% fetch/decode increase for 1 added bit
#: implies a ~33-bit baseline encoding budget; we follow that).
BASELINE_ENCODING_BITS = 33

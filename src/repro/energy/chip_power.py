"""High-level GPU power model (Section 6.4).

The paper translates register-file energy savings into SM- and
chip-level dynamic power savings using its previously proposed GPU
power model [11]: the register file consumes 15-20% of SM dynamic
power.  Their 54% register-file saving maps to an 8.3% SM dynamic power
reduction and a 5.8% chip-wide reduction, which fixes the two scaling
fractions used here.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import tables


@dataclass(frozen=True)
class ChipPowerResult:
    register_file_savings: float
    sm_dynamic_power_savings: float
    chip_dynamic_power_savings: float


def chip_power_savings(
    register_file_savings: float,
    register_file_fraction_of_sm: float = (
        tables.REGISTER_FILE_FRACTION_OF_SM_POWER
    ),
    sm_fraction_of_chip: float = tables.SM_FRACTION_OF_CHIP_POWER,
) -> ChipPowerResult:
    """Scale a register-file saving to SM and chip dynamic power."""
    if not 0.0 <= register_file_savings <= 1.0:
        raise ValueError("register_file_savings must be in [0, 1]")
    sm_savings = register_file_savings * register_file_fraction_of_sm
    return ChipPowerResult(
        register_file_savings=register_file_savings,
        sm_dynamic_power_savings=sm_savings,
        chip_dynamic_power_savings=sm_savings * sm_fraction_of_chip,
    )

"""Dynamic register value usage statistics (Figure 2 of the paper).

The paper characterises GPU register traffic by, for every value
*written into the register file*, the number of times it is read and —
for values read exactly once — the lifetime in instructions between
production and the read.  These statistics motivate the whole design:
up to 70% of values are read at most once, and 50% of all values are
read once within three instructions of being produced (Section 2.1).

:class:`ValueUsageTracker` consumes one warp's dynamic instruction
stream and closes out a :class:`ValueRecord` whenever a register is
overwritten (or at end of trace).  Suites aggregate trackers from many
warps/kernels into a :class:`UsageHistogram`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.instructions import Instruction
from ..ir.registers import Register


@dataclass
class ValueRecord:
    """Usage of one dynamic register value."""

    num_reads: int
    #: Dynamic-instruction distance from production to the last read
    #: (0 if never read).
    lifetime: int
    #: True if any read came from the shared datapath (SFU/MEM/TEX).
    read_by_shared: bool


@dataclass
class _LiveValue:
    birth: int
    num_reads: int = 0
    last_read: Optional[int] = None
    read_by_shared: bool = False

    def close(self) -> ValueRecord:
        lifetime = 0
        if self.last_read is not None:
            lifetime = self.last_read - self.birth
        return ValueRecord(self.num_reads, lifetime, self.read_by_shared)


class ValueUsageTracker:
    """Tracks value usage over one warp's dynamic instruction stream."""

    def __init__(self) -> None:
        self._clock = 0
        self._live: Dict[Register, _LiveValue] = {}
        self.records: List[ValueRecord] = []

    def observe(
        self, instruction: Instruction, guard_passed: bool = True
    ) -> None:
        """Account one dynamically executed instruction.

        ``guard_passed`` is False for predicate-squashed instructions,
        which read operands but produce no value.
        """
        self._clock += 1
        shared = instruction.unit.is_shared
        for _, reg in instruction.gpr_reads():
            value = self._live.get(reg)
            if value is not None:
                value.num_reads += 1
                value.last_read = self._clock
                value.read_by_shared = value.read_by_shared or shared
        written = instruction.gpr_write()
        if written is not None and guard_passed:
            previous = self._live.pop(written, None)
            if previous is not None:
                self.records.append(previous.close())
            self._live[written] = _LiveValue(birth=self._clock)

    def finish(self) -> None:
        """Close out all still-live values at end of trace."""
        for value in self._live.values():
            self.records.append(value.close())
        self._live.clear()


@dataclass
class UsageHistogram:
    """Aggregated Figure 2 statistics.

    ``read_counts`` buckets: 0, 1, 2, and >2 reads (Figure 2a).
    ``lifetimes`` buckets (values read exactly once): 1, 2, 3, >3
    dynamic instructions (Figure 2b).
    """

    read_counts: Dict[str, int] = field(
        default_factory=lambda: {"0": 0, "1": 0, "2": 0, ">2": 0}
    )
    lifetimes: Dict[str, int] = field(
        default_factory=lambda: {"1": 0, "2": 0, "3": 0, ">3": 0}
    )
    total_values: int = 0
    read_once_total: int = 0
    read_by_shared: int = 0

    def add_record(self, record: ValueRecord, weight: int = 1) -> None:
        """Add one value record, ``weight`` times.

        Buckets are plain sums, so a weighted add is identical to
        repeating the record — this is what lets deduplicated warp
        traces be observed once and scaled by multiplicity.
        """
        self.total_values += weight
        if record.num_reads == 0:
            self.read_counts["0"] += weight
        elif record.num_reads == 1:
            self.read_counts["1"] += weight
        elif record.num_reads == 2:
            self.read_counts["2"] += weight
        else:
            self.read_counts[">2"] += weight
        if record.read_by_shared:
            self.read_by_shared += weight
        if record.num_reads == 1:
            self.read_once_total += weight
            if record.lifetime <= 1:
                self.lifetimes["1"] += weight
            elif record.lifetime == 2:
                self.lifetimes["2"] += weight
            elif record.lifetime == 3:
                self.lifetimes["3"] += weight
            else:
                self.lifetimes[">3"] += weight

    def add_tracker(
        self, tracker: ValueUsageTracker, multiplicity: int = 1
    ) -> None:
        for record in tracker.records:
            self.add_record(record, multiplicity)

    def merge(self, other: "UsageHistogram") -> None:
        for key, value in other.read_counts.items():
            self.read_counts[key] += value
        for key, value in other.lifetimes.items():
            self.lifetimes[key] += value
        self.total_values += other.total_values
        self.read_once_total += other.read_once_total
        self.read_by_shared += other.read_by_shared

    # -- derived fractions (the numbers quoted in the paper) --------------

    def fraction_read_at_most_once(self) -> float:
        """Paper: 'up to 70% of values are only read once [or never]'."""
        if self.total_values == 0:
            return 0.0
        return (
            self.read_counts["0"] + self.read_counts["1"]
        ) / self.total_values

    def fraction_read_once_within(self, distance: int) -> float:
        """Fraction of *all* values read exactly once within ``distance``.

        Paper: '50% of all values produced are only read once, within
        three instructions of being produced'.
        """
        if self.total_values == 0:
            return 0.0
        count = 0
        for bucket, bucket_count in self.lifetimes.items():
            if bucket == ">3":
                continue
            if int(bucket) <= distance:
                count += bucket_count
        return count / self.total_values

    def fraction_read_by_shared(self) -> float:
        """Paper Section 3.2: ~7% of values are consumed by SFU/MEM/TEX."""
        if self.total_values == 0:
            return 0.0
        return self.read_by_shared / self.total_values

    def read_count_fractions(self) -> Dict[str, float]:
        total = max(1, self.total_values)
        return {key: count / total for key, count in self.read_counts.items()}

    def lifetime_fractions(self) -> Dict[str, float]:
        total = max(1, self.read_once_total)
        return {key: count / total for key, count in self.lifetimes.items()}

"""Control-flow graph utilities over :class:`repro.ir.Kernel`.

The kernel itself stores blocks in layout order; this module adds the
derived graph structure the compiler passes need: reverse postorder,
reachability, and edge classification.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..ir.kernel import Kernel


class ControlFlowGraph:
    """Immutable CFG view of a kernel (block-index based)."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.num_blocks = len(kernel.blocks)
        self.successors: Tuple[Tuple[int, ...], ...] = tuple(
            kernel.successors(index) for index in range(self.num_blocks)
        )
        preds: List[List[int]] = [[] for _ in range(self.num_blocks)]
        for index, succs in enumerate(self.successors):
            for succ in succs:
                preds[succ].append(index)
        self.predecessors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(plist) for plist in preds
        )
        self.entry = 0
        self._rpo = self._compute_reverse_postorder()
        self._reachable = frozenset(self._rpo)

    def _compute_reverse_postorder(self) -> Tuple[int, ...]:
        visited: Set[int] = set()
        postorder: List[int] = []

        # Iterative DFS to avoid recursion limits on long CFGs.
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        visited.add(self.entry)
        while stack:
            node, edge_index = stack[-1]
            succs = self.successors[node]
            if edge_index < len(succs):
                stack[-1] = (node, edge_index + 1)
                succ = succs[edge_index]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                postorder.append(node)
                stack.pop()
        return tuple(reversed(postorder))

    @property
    def reverse_postorder(self) -> Tuple[int, ...]:
        """Reachable blocks in reverse postorder from the entry."""
        return self._rpo

    def is_reachable(self, block_index: int) -> bool:
        return block_index in self._reachable

    def backward_edges(self) -> Set[Tuple[int, int]]:
        """All (src, dst) edges that are backward in layout order.

        The paper defines strand boundaries in terms of *backward
        branches* — branches to the same or an earlier layout position
        (Section 4.1) — so edge direction is judged by layout order, not
        by DFS ancestry.
        """
        edges: Set[Tuple[int, int]] = set()
        for src in range(self.num_blocks):
            for dst in self.successors[src]:
                if self.kernel.is_backward_edge(src, dst):
                    edges.add((src, dst))
        return edges

    def merge_blocks(self) -> Set[int]:
        """Blocks with more than one predecessor."""
        return {
            index
            for index in range(self.num_blocks)
            if len(self.predecessors[index]) > 1
        }

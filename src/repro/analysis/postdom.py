"""Post-dominator analysis (reconvergence points for SIMT divergence).

When a warp's threads diverge at a branch, the hardware reconverges
them at the branch block's *immediate post-dominator* — the first block
every path from the branch must pass through on its way to the exit
(Section 2's SIMT execution model).  Computed by running the iterative
dominator algorithm (Cooper/Harvey/Kennedy) on the reversed CFG with a
virtual exit node joining every ``EXIT`` block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .cfg import ControlFlowGraph


class PostDominatorTree:
    """Immediate post-dominators for every block that reaches an exit."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        #: Virtual exit node id.
        self._virtual = cfg.num_blocks
        self.ipdom: Dict[int, Optional[int]] = self._compute()

    def _compute(self) -> Dict[int, Optional[int]]:
        cfg = self.cfg
        virtual = self._virtual

        # Reversed graph: node -> its "successors" in reverse = CFG
        # predecessors; the virtual exit's reverse-successors are the
        # real exit blocks.
        def reverse_successors(node: int) -> List[int]:
            if node == virtual:
                return [
                    block
                    for block in range(cfg.num_blocks)
                    if not cfg.successors[block]
                ]
            return list(cfg.predecessors[node])

        # Forward edges of the reversed graph from the virtual exit.
        rpo = self._reverse_postorder(reverse_successors, virtual)
        order_index = {node: i for i, node in enumerate(rpo)}

        ipdom: Dict[int, int] = {virtual: virtual}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while order_index[a] > order_index[b]:
                    a = ipdom[a]
                while order_index[b] > order_index[a]:
                    b = ipdom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == virtual:
                    continue
                # Predecessors in the reversed graph = CFG successors
                # (plus the virtual exit for real exit blocks).
                preds: List[int] = list(
                    self.cfg.successors[node]
                ) if node < cfg.num_blocks else []
                if node < cfg.num_blocks and not cfg.successors[node]:
                    preds = [virtual]
                candidates = [
                    pred
                    for pred in preds
                    if pred in ipdom and pred in order_index
                ]
                if not candidates:
                    continue
                new = candidates[0]
                for pred in candidates[1:]:
                    new = intersect(new, pred)
                if ipdom.get(node) != new:
                    ipdom[node] = new
                    changed = True

        result: Dict[int, Optional[int]] = {}
        for node, parent in ipdom.items():
            if node == virtual:
                continue
            result[node] = None if parent == virtual else parent
        return result

    @staticmethod
    def _reverse_postorder(successors_fn, entry: int) -> List[int]:
        visited: Set[int] = {entry}
        postorder: List[int] = []
        stack: List[Tuple[int, int]] = [(entry, 0)]
        while stack:
            node, edge = stack[-1]
            succs = successors_fn(node)
            if edge < len(succs):
                stack[-1] = (node, edge + 1)
                nxt = succs[edge]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                postorder.append(node)
                stack.pop()
        return list(reversed(postorder))

    def immediate_post_dominator(self, block: int) -> Optional[int]:
        """The reconvergence block for a branch in ``block``; None when
        paths only rejoin at kernel exit."""
        return self.ipdom.get(block)

    def post_dominates(self, a: int, b: int) -> bool:
        """True if every path from ``b`` to the exit passes ``a``
        (irreflexive on exit-only joins, reflexive otherwise)."""
        node: Optional[int] = b
        seen: Set[int] = set()
        while node is not None:
            if node == a:
                return True
            if node in seen:  # pragma: no cover - cyclic safety
                return False
            seen.add(node)
            node = self.ipdom.get(node)
        return False

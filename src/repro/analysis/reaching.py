"""Reaching-definitions analysis and def-use chains.

The allocator reasons about *register instances* — one static
definition of an architectural register together with the reads it
reaches (Section 4).  PTX is pseudo-SSA (no phi nodes, Section 4.2), so
the same architectural register can be written on both sides of a
hammock and read at the merge point (Figure 10); reaching definitions
recover exactly that structure.

Definitions come in three flavours relevant to allocation:

* ordinary in-kernel writes (allocation candidates),
* long-latency writes (global loads, texture fetches) whose results
  always land in the MRF — any in-strand consumer would have ended the
  strand, so these are never ORF/LRF candidates,
* external definitions for kernel live-in registers (thread id,
  parameters), which conceptually arrive in the MRF.

Guarded writes are *may*-definitions: they generate but do not kill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..ir.instructions import Instruction
from ..ir.kernel import InstructionRef, Kernel
from ..ir.registers import Register
from .cfg import ControlFlowGraph


@dataclass(frozen=True)
class Definition:
    """One reaching-definitions fact: a write (or live-in) of a register."""

    def_id: int
    reg: Register
    #: Site of the write; None for external (live-in) definitions.
    ref: Optional[InstructionRef]
    is_external: bool = False
    is_long_latency: bool = False
    is_guarded: bool = False

    @property
    def mrf_pinned(self) -> bool:
        """True if this definition's value is only available in the MRF.

        External values arrive in the MRF; long-latency results are
        written to the MRF because their consumers are always in a later
        strand (Section 4.1).
        """
        return self.is_external or self.is_long_latency


@dataclass(frozen=True)
class ReadSite:
    """One static read of a register: instruction, operand slot, register."""

    ref: InstructionRef
    slot: int
    reg: Register


class ReachingDefinitions:
    """Whole-kernel reaching definitions with per-read queries."""

    def __init__(self, kernel: Kernel, cfg: ControlFlowGraph) -> None:
        self.kernel = kernel
        self.cfg = cfg
        self.definitions: List[Definition] = []
        self._def_at_ref: Dict[int, int] = {}  # position -> def_id
        self._external_defs: Dict[Register, int] = {}
        self._reads: List[ReadSite] = []
        self._read_reaching: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._def_uses: Dict[int, List[ReadSite]] = {}
        self._collect_definitions()
        self._solve()
        self._record_reads()

    # -- setup -------------------------------------------------------------

    def _collect_definitions(self) -> None:
        for reg in self.kernel.live_in:
            if not reg.is_gpr:
                continue
            def_id = len(self.definitions)
            self.definitions.append(
                Definition(def_id, reg, None, is_external=True)
            )
            self._external_defs[reg] = def_id
        for ref, instruction in self.kernel.instructions():
            written = instruction.gpr_write()
            if written is None:
                continue
            def_id = len(self.definitions)
            self.definitions.append(
                Definition(
                    def_id,
                    written,
                    ref,
                    is_long_latency=instruction.is_long_latency,
                    is_guarded=instruction.guard is not None,
                )
            )
            self._def_at_ref[ref.position] = def_id

    def _defs_of_reg(self) -> Dict[Register, FrozenSet[int]]:
        by_reg: Dict[Register, Set[int]] = {}
        for definition in self.definitions:
            by_reg.setdefault(definition.reg, set()).add(definition.def_id)
        return {reg: frozenset(ids) for reg, ids in by_reg.items()}

    def _solve(self) -> None:
        defs_of_reg = self._defs_of_reg()
        num_blocks = len(self.kernel.blocks)
        block_in: List[Set[int]] = [set() for _ in range(num_blocks)]
        block_out: List[Set[int]] = [set() for _ in range(num_blocks)]

        entry_in = set(self._external_defs.values())

        def transfer(block_index: int, live: Set[int]) -> Set[int]:
            current = set(live)
            block = self.kernel.blocks[block_index]
            for instruction in block.instructions:
                self._apply_instruction(instruction, current, defs_of_reg)
            return current

        changed = True
        while changed:
            changed = False
            for block_index in self.cfg.reverse_postorder:
                if block_index == self.cfg.entry:
                    incoming = set(entry_in)
                else:
                    incoming = set()
                for pred in self.cfg.predecessors[block_index]:
                    incoming |= block_out[pred]
                if incoming != block_in[block_index]:
                    block_in[block_index] = incoming
                    changed = True
                new_out = transfer(block_index, incoming)
                if new_out != block_out[block_index]:
                    block_out[block_index] = new_out
                    changed = True

        self._block_in = [frozenset(s) for s in block_in]
        self._block_out = [frozenset(s) for s in block_out]

    def _apply_instruction(
        self,
        instruction: Instruction,
        live: Set[int],
        defs_of_reg: Dict[Register, FrozenSet[int]],
    ) -> None:
        written = instruction.gpr_write()
        if written is None:
            return
        def_id = self._find_def_id(instruction)
        if instruction.guard is None:
            live -= defs_of_reg.get(written, frozenset())
        live.add(def_id)

    def _find_def_id(self, instruction: Instruction) -> int:
        # The solver walks blocks in order, so recover def_id by identity.
        # We store def_ids by position during collection; look them up by
        # scanning is avoided via the per-ref map in _record_reads.  Here
        # the instruction's position is recovered lazily.
        if not hasattr(self, "_instr_to_def"):
            self._instr_to_def: Dict[int, int] = {}
            for ref, inst in self.kernel.instructions():
                if ref.position in self._def_at_ref:
                    self._instr_to_def[id(inst)] = self._def_at_ref[
                        ref.position
                    ]
        return self._instr_to_def[id(instruction)]

    def _record_reads(self) -> None:
        defs_of_reg = self._defs_of_reg()
        for block_index, block in enumerate(self.kernel.blocks):
            live: Set[int] = set(self._block_in[block_index])
            if block_index == self.cfg.entry:
                live |= set(self._external_defs.values())
            position_base = None
            for instr_index, instruction in enumerate(block.instructions):
                ref = self._ref_for(block_index, instr_index)
                for slot, reg in instruction.gpr_reads():
                    reaching = frozenset(
                        def_id
                        for def_id in live
                        if self.definitions[def_id].reg == reg
                    )
                    site = ReadSite(ref, slot, reg)
                    self._reads.append(site)
                    self._read_reaching[(ref.position, slot)] = reaching
                    for def_id in reaching:
                        self._def_uses.setdefault(def_id, []).append(site)
                self._apply_instruction(instruction, live, defs_of_reg)
            del position_base

    def _ref_for(self, block_index: int, instr_index: int) -> InstructionRef:
        if not hasattr(self, "_ref_cache"):
            self._ref_cache: Dict[Tuple[int, int], InstructionRef] = {}
            for ref, _ in self.kernel.instructions():
                self._ref_cache[(ref.block_index, ref.instr_index)] = ref
        return self._ref_cache[(block_index, instr_index)]

    # -- queries ----------------------------------------------------------

    def definition(self, def_id: int) -> Definition:
        return self.definitions[def_id]

    def def_at(self, ref: InstructionRef) -> Optional[Definition]:
        """The definition created by the instruction at ``ref``, if any."""
        def_id = self._def_at_ref.get(ref.position)
        if def_id is None:
            return None
        return self.definitions[def_id]

    def reaching_defs(
        self, ref: InstructionRef, slot: int
    ) -> FrozenSet[int]:
        """Def ids reaching the given read operand."""
        return self._read_reaching.get((ref.position, slot), frozenset())

    def uses_of(self, def_id: int) -> Tuple[ReadSite, ...]:
        """All read sites this definition may reach."""
        return tuple(self._def_uses.get(def_id, ()))

    def reads(self) -> Iterator[ReadSite]:
        return iter(self._reads)

    @property
    def external_definitions(self) -> Dict[Register, int]:
        return dict(self._external_defs)

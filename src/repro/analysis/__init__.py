"""Compiler analyses: CFG, dominance, liveness, reaching definitions,
and dynamic value-usage statistics."""

from .cfg import ControlFlowGraph
from .dominance import DominatorTree
from .liveness import LivenessAnalysis
from .reaching import Definition, ReachingDefinitions, ReadSite
from .usage import UsageHistogram, ValueRecord, ValueUsageTracker

__all__ = [
    "ControlFlowGraph",
    "Definition",
    "DominatorTree",
    "LivenessAnalysis",
    "ReachingDefinitions",
    "ReadSite",
    "UsageHistogram",
    "ValueRecord",
    "ValueUsageTracker",
]

"""Classic backward liveness dataflow over GPRs.

Used in two places that mirror the paper:

* the hardware RFC baseline uses *static liveness information encoded in
  the binary* to elide write-back of dead values on eviction or flush
  (Section 2.2);
* the allocator must know whether a value is live out of its strand
  (Figure 6: a dead-at-strand-end value avoids the MRF write entirely
  when it is captured by the ORF).

Guarded (predicated) instructions are treated as may-defs: they do not
kill liveness of their destination.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from ..ir.instructions import Instruction
from ..ir.kernel import InstructionRef, Kernel
from ..ir.registers import Register
from .cfg import ControlFlowGraph


class LivenessAnalysis:
    """Per-block live-in/live-out sets plus per-point queries."""

    def __init__(self, kernel: Kernel, cfg: ControlFlowGraph) -> None:
        self.kernel = kernel
        self.cfg = cfg
        self.live_in: Dict[int, FrozenSet[Register]] = {}
        self.live_out: Dict[int, FrozenSet[Register]] = {}
        self._block_use: Dict[int, FrozenSet[Register]] = {}
        self._block_def: Dict[int, FrozenSet[Register]] = {}
        self._compute()

    @staticmethod
    def _instruction_uses(instruction: Instruction) -> Tuple[Register, ...]:
        return tuple(reg for _, reg in instruction.gpr_reads())

    @staticmethod
    def _instruction_kill(instruction: Instruction) -> Tuple[Register, ...]:
        # A guarded write may not execute, so it does not kill.
        written = instruction.gpr_write()
        if written is None or instruction.guard is not None:
            return ()
        return (written,)

    def _compute(self) -> None:
        for index, block in enumerate(self.kernel.blocks):
            uses: Set[Register] = set()
            defs: Set[Register] = set()
            for instruction in block.instructions:
                for reg in self._instruction_uses(instruction):
                    if reg not in defs:
                        uses.add(reg)
                # Guarded writes both use (pass-through) and may-def;
                # treating them as non-killing is enough for safety.
                for reg in self._instruction_kill(instruction):
                    defs.add(reg)
            self._block_use[index] = frozenset(uses)
            self._block_def[index] = frozenset(defs)
            self.live_in[index] = frozenset()
            self.live_out[index] = frozenset()

        changed = True
        while changed:
            changed = False
            for index in reversed(self.cfg.reverse_postorder):
                out: Set[Register] = set()
                for succ in self.cfg.successors[index]:
                    out |= self.live_in[succ]
                new_out = frozenset(out)
                new_in = frozenset(
                    self._block_use[index]
                    | (new_out - self._block_def[index])
                )
                if (
                    new_out != self.live_out[index]
                    or new_in != self.live_in[index]
                ):
                    self.live_out[index] = new_out
                    self.live_in[index] = new_in
                    changed = True

    def live_after(self, ref: InstructionRef) -> FrozenSet[Register]:
        """Registers live immediately *after* the referenced instruction."""
        block = self.kernel.blocks[ref.block_index]
        live: Set[Register] = set(self.live_out[ref.block_index])
        for position in range(len(block.instructions) - 1, ref.instr_index, -1):
            instruction = block.instructions[position]
            for reg in self._instruction_kill(instruction):
                live.discard(reg)
            for reg in self._instruction_uses(instruction):
                live.add(reg)
        return frozenset(live)

    def live_before(self, ref: InstructionRef) -> FrozenSet[Register]:
        """Registers live immediately *before* the referenced instruction."""
        live: Set[Register] = set(self.live_after(ref))
        instruction = self.kernel.instruction_at(ref)
        for reg in self._instruction_kill(instruction):
            live.discard(reg)
        for reg in self._instruction_uses(instruction):
            live.add(reg)
        return frozenset(live)

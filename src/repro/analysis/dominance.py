"""Dominator analysis (Cooper/Harvey/Kennedy iterative algorithm).

Ocelot, the framework the paper builds on, exposes dominance analysis
to its passes (Section 5.1); we provide the same facility.  The
allocator itself relies on reaching definitions, but dominance is used
by kernel structure checks and is part of the public analysis API.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .cfg import ControlFlowGraph


class DominatorTree:
    """Immediate dominators for every reachable block."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self.idom: Dict[int, Optional[int]] = self._compute()

    def _compute(self) -> Dict[int, Optional[int]]:
        rpo = self.cfg.reverse_postorder
        order_index = {block: index for index, block in enumerate(rpo)}
        idom: Dict[int, Optional[int]] = {self.cfg.entry: self.cfg.entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while order_index[a] > order_index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while order_index[b] > order_index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block == self.cfg.entry:
                    continue
                candidates = [
                    pred
                    for pred in self.cfg.predecessors[block]
                    if pred in idom
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = intersect(new_idom, pred)
                if idom.get(block) != new_idom:
                    idom[block] = new_idom
                    changed = True

        result: Dict[int, Optional[int]] = {
            block: idom.get(block) for block in rpo
        }
        result[self.cfg.entry] = None
        return result

    def dominates(self, a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        if not self.cfg.is_reachable(b) or not self.cfg.is_reachable(a):
            return False
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False

    def dominators_of(self, block: int) -> Set[int]:
        """All blocks dominating ``block`` (including itself)."""
        result: Set[int] = set()
        node: Optional[int] = block
        while node is not None:
            result.add(node)
            node = self.idom[node]
        return result

"""Unified BenchReport schema shared by every benchmark producer.

Each BENCH file gains a top-level ``"bench"`` section::

    "bench": {
      "bench_schema": 1,
      "tool": "bench-accounting",
      "env": {...environment fingerprint...},
      "rule": {"rule": "ci", "min_repeats": 3, ...},
      "metrics": {
        "hardware_speedup": {
          "samples": [18.4, 18.9, 18.7],
          "median": 18.7,
          "ci": [18.4, 18.9],
          "repeats": 3,
          "stop_reason": "ci_half_width",
          "unit": "x",
          "direction": "higher",
          "comparable": true
        },
        ...
      }
    }

``direction`` says which way is better; ``comparable`` marks metrics
that are machine-portable ratios (speedups, hit rates) safe to gate on
across runs — absolute timings (seconds, ns/instr) carry
``comparable: false`` and are reported by ``repro bench diff`` without
ever failing the gate.

Compat rule: a metric entry that is a bare number (or lacks
``samples``/``ci`` keys) is read as a legacy point estimate —
``samples=[v]``, ``ci=[v, v]`` — so old BENCH files still diff.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .env import environment_fingerprint
from .stopping import StoppingRule, run_repeater

#: Version of the shared ``"bench"`` section layout (producers keep
#: their own top-level ``schema`` numbers on top of this).
BENCH_SECTION_SCHEMA = 1


def metric_from_samples(
    name: str,
    samples: Sequence[float],
    *,
    unit: str,
    direction: str = "higher",
    comparable: bool = False,
    rule: Optional[StoppingRule] = None,
    stop_reason: str = "fixed_repeats",
) -> Dict[str, Any]:
    """Build one metric entry from collected samples.

    When ``rule`` is given its interval estimator supplies the CI
    bounds; otherwise the sample min/max envelope is used.
    """
    if direction not in ("higher", "lower"):
        raise ValueError("direction must be 'higher' or 'lower'")
    data = [float(v) for v in samples]
    if not data:
        raise ValueError(f"metric {name!r} has no samples")
    median = float(statistics.median(data))
    if rule is not None:
        lo, hi = rule.interval(data)
    else:
        lo, hi = min(data), max(data)
    return {
        "samples": data,
        "median": median,
        "ci": [float(lo), float(hi)],
        "repeats": len(data),
        "stop_reason": stop_reason,
        "unit": unit,
        "direction": direction,
        "comparable": bool(comparable),
    }


def measure(
    sample_fn: Callable[[int], float],
    rule: StoppingRule,
    *,
    name: str,
    unit: str,
    direction: str = "lower",
    comparable: bool = False,
) -> Tuple[List[float], Dict[str, Any]]:
    """Adaptively repeat ``sample_fn`` under ``rule`` and build the
    metric entry; returns ``(samples, entry)`` so callers can reuse
    the raw samples for derived metrics."""
    samples, stop_reason = run_repeater(sample_fn, rule)
    entry = metric_from_samples(
        name,
        samples,
        unit=unit,
        direction=direction,
        comparable=comparable,
        rule=rule,
        stop_reason=stop_reason,
    )
    return samples, entry


def metric_entry(value: Any) -> Dict[str, Any]:
    """Normalize a metric entry, applying the legacy compat rule.

    Bare numbers — and dict entries missing ``samples``/``ci`` — are
    read as point estimates with a degenerate interval.
    """
    if isinstance(value, dict):
        median = float(value.get("median", value.get("value", 0.0)))
        samples = [float(v) for v in value.get("samples", [median])]
        ci = value.get("ci")
        if not (isinstance(ci, (list, tuple)) and len(ci) == 2):
            ci = [median, median]
        return {
            "samples": samples,
            "median": median,
            "ci": [float(ci[0]), float(ci[1])],
            "repeats": int(value.get("repeats", len(samples))),
            "stop_reason": str(value.get("stop_reason", "legacy")),
            "unit": str(value.get("unit", "")),
            "direction": str(value.get("direction", "higher")),
            "comparable": bool(value.get("comparable", False)),
        }
    v = float(value)
    return {
        "samples": [v],
        "median": v,
        "ci": [v, v],
        "repeats": 1,
        "stop_reason": "legacy",
        "unit": "",
        "direction": "higher",
        "comparable": False,
    }


def bench_section(
    tool: str,
    metrics: Dict[str, Dict[str, Any]],
    *,
    rule: Optional[StoppingRule] = None,
    env: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the shared ``"bench"`` section of a BENCH payload."""
    section: Dict[str, Any] = {
        "bench_schema": BENCH_SECTION_SCHEMA,
        "tool": tool,
        "env": env if env is not None else environment_fingerprint(),
        "metrics": metrics,
    }
    if rule is not None:
        section["rule"] = rule.describe()
    return section


def write_report(path: Any, payload: Dict[str, Any]) -> Path:
    """The single canonical BENCH writer.

    Every producer routes through here so formatting (2-space indent,
    trailing newline) and location policy stay in one place.  Returns
    the path written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return target

"""Environment fingerprint stamped into every BENCH report.

Perf numbers are only interpretable next to the machine that produced
them.  The fingerprint is intentionally small and cheap: interpreter
version/implementation, platform triple, CPU count, and the cpufreq
governor when the kernel exposes one (a ``performance`` vs
``powersave``/``schedutil`` governor is the single most common cause
of noisy medians on Linux runners).
"""

from __future__ import annotations

import os
import platform
from typing import Dict, Optional

_GOVERNOR_PATH = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"


def _governor_hint(path: str = _GOVERNOR_PATH) -> Optional[str]:
    try:
        with open(path, "r", encoding="ascii") as handle:
            value = handle.read().strip()
        return value or None
    except OSError:
        return None


def environment_fingerprint() -> Dict[str, object]:
    """Describe the machine well enough to judge BENCH comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine() or "unknown",
        "cpu_count": os.cpu_count() or 1,
        "governor": _governor_hint(),
    }

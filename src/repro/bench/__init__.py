"""Shared statistical measurement subsystem for every benchmark producer.

Every BENCH file the repo emits (``BENCH_accounting.json``,
``BENCH_service.json``, ``BENCH_tuner.json``) is produced through this
package: adaptive repetition with statistical stopping rules
(:mod:`repro.bench.stopping`), an environment fingerprint stamped into
each report (:mod:`repro.bench.env`), a unified per-metric schema of
samples / median / CI bounds / repeats / stop-reason
(:mod:`repro.bench.report`), and a regression-gating differ
(:mod:`repro.bench.diff`) behind ``repro bench diff``.
"""

from .env import environment_fingerprint
from .report import (
    BENCH_SECTION_SCHEMA,
    bench_section,
    measure,
    metric_entry,
    metric_from_samples,
    write_report,
)
from .stopping import (
    STOP_MAX_REPEATS,
    CiHalfWidthRule,
    HdiWidthRule,
    KsStabilityRule,
    StoppingRule,
    make_rule,
    run_repeater,
)
from .diff import diff_reports, format_diff, load_metrics, run_diff

__all__ = [
    "BENCH_SECTION_SCHEMA",
    "STOP_MAX_REPEATS",
    "CiHalfWidthRule",
    "HdiWidthRule",
    "KsStabilityRule",
    "StoppingRule",
    "bench_section",
    "diff_reports",
    "environment_fingerprint",
    "format_diff",
    "load_metrics",
    "make_rule",
    "measure",
    "metric_entry",
    "metric_from_samples",
    "run_diff",
    "run_repeater",
    "write_report",
]

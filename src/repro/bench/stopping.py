"""Statistical stopping rules for adaptive benchmark repetition.

A benchmark loop repeats a measurement until a :class:`StoppingRule`
says the sample set is stable enough, or ``max_repeats`` is reached.
Three rules are provided (the SHARP repeaters shape):

* ``ci`` — :class:`CiHalfWidthRule`: bootstrap the median and stop
  when the confidence interval's half-width falls below ``target``
  (relative to the median's magnitude).
* ``hdi`` — :class:`HdiWidthRule`: stop when the narrowest window
  covering 95% of the sorted samples (the highest-density interval)
  is below ``target`` relative width.
* ``ks`` — :class:`KsStabilityRule`: split the samples into first and
  second halves and stop when the two-sample Kolmogorov–Smirnov
  statistic drops below ``target`` — i.e. the distribution has stopped
  drifting as repeats accumulate.

Every rule is deterministic: randomness (the bootstrap) comes from a
``random.Random`` seeded from the rule's ``seed`` and the current
sample count, never from global state or the clock.  Checking the same
sample list twice yields the same decision and the same interval.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Stop reason reported when a rule never fired before the repeat cap.
STOP_MAX_REPEATS = "max_repeats"

#: Guard against a zero median turning relative targets into 0/0.
_TINY = 1e-12


def _median(samples: Sequence[float]) -> float:
    return float(statistics.median(samples))


def _relative(width: float, center: float) -> float:
    return width / max(abs(center), _TINY)


@dataclass
class StoppingRule:
    """Base repeater: knobs shared by every rule.

    Subclasses implement :meth:`interval` (the stability measure as a
    ``(lo, hi)`` pair around the samples) and :meth:`_stop_reason`
    (``None`` to keep sampling, or a short reason string to stop).
    """

    min_repeats: int = 3
    max_repeats: int = 30
    target: float = 0.05
    seed: int = 0

    name = "base"

    def __post_init__(self) -> None:
        if self.min_repeats < 1:
            raise ValueError("min_repeats must be >= 1")
        if self.max_repeats < self.min_repeats:
            raise ValueError("max_repeats must be >= min_repeats")
        if not (self.target > 0.0):
            raise ValueError("target must be positive")

    def _rng(self, n_samples: int) -> random.Random:
        # Keyed on (seed, sample count) so each check is deterministic
        # and independent of how many checks ran before it.
        return random.Random(self.seed * 1_000_003 + n_samples)

    def interval(self, samples: Sequence[float]) -> Tuple[float, float]:
        raise NotImplementedError

    def _stop_reason(self, samples: Sequence[float]) -> Optional[str]:
        raise NotImplementedError

    def check(self, samples: Sequence[float]) -> Optional[str]:
        """Stop reason if sampling may stop now, else ``None``.

        ``min_repeats`` gates every rule; ``max_repeats`` is enforced
        here too so ``check`` alone guarantees termination.
        """
        if len(samples) < self.min_repeats:
            return None
        if len(samples) >= self.max_repeats:
            reason = self._stop_reason(samples)
            return reason if reason is not None else STOP_MAX_REPEATS
        return self._stop_reason(samples)

    def describe(self) -> Dict[str, object]:
        return {
            "rule": self.name,
            "min_repeats": self.min_repeats,
            "max_repeats": self.max_repeats,
            "target": self.target,
            "seed": self.seed,
        }


@dataclass
class CiHalfWidthRule(StoppingRule):
    """Bootstrap confidence interval on the median.

    Resamples the observations ``resamples`` times, takes the median of
    each resample, and reports the central ``confidence`` percentile
    interval of those medians.  Stops when the interval's half-width is
    at most ``target`` relative to the sample median.  The reported
    interval is widened (if needed) to include the sample median, so it
    is always a valid covering interval for the point estimate.
    """

    resamples: int = 200
    confidence: float = 0.95

    name = "ci"

    def interval(self, samples: Sequence[float]) -> Tuple[float, float]:
        data = list(samples)
        med = _median(data)
        if len(data) == 1:
            return med, med
        rng = self._rng(len(data))
        medians = sorted(
            _median([rng.choice(data) for _ in data])
            for _ in range(self.resamples)
        )
        tail = (1.0 - self.confidence) / 2.0
        lo_idx = int(math.floor(tail * (len(medians) - 1)))
        hi_idx = int(math.ceil((1.0 - tail) * (len(medians) - 1)))
        lo, hi = medians[lo_idx], medians[hi_idx]
        return min(lo, med), max(hi, med)

    def _stop_reason(self, samples: Sequence[float]) -> Optional[str]:
        lo, hi = self.interval(samples)
        half_width = (hi - lo) / 2.0
        if _relative(half_width, _median(samples)) <= self.target:
            return "ci_half_width"
        return None


@dataclass
class HdiWidthRule(StoppingRule):
    """Highest-density interval width.

    The HDI is the narrowest contiguous window of the sorted samples
    containing at least ``mass`` of them — a robust spread measure that
    ignores stray outliers outside the window.  Stops when the window
    width is at most ``target`` relative to the sample median.
    """

    mass: float = 0.95

    name = "hdi"

    def interval(self, samples: Sequence[float]) -> Tuple[float, float]:
        data = sorted(samples)
        n = len(data)
        k = max(1, int(math.ceil(self.mass * n)))
        if k >= n:
            return data[0], data[-1]
        best = (data[k - 1] - data[0], 0)
        for start in range(1, n - k + 1):
            width = data[start + k - 1] - data[start]
            if width < best[0]:
                best = (width, start)
        start = best[1]
        return data[start], data[start + k - 1]

    def _stop_reason(self, samples: Sequence[float]) -> Optional[str]:
        lo, hi = self.interval(samples)
        if _relative(hi - lo, _median(samples)) <= self.target:
            return "hdi_width"
        return None


@dataclass
class KsStabilityRule(StoppingRule):
    """Two-sample KS test between first and second half of samples.

    If the empirical distributions of the early and late halves agree
    (KS statistic at most ``target``), the measurement has stopped
    drifting — warmup effects are over — and sampling may stop.  The
    reported interval is the min/max envelope of the samples.
    """

    name = "ks"

    def interval(self, samples: Sequence[float]) -> Tuple[float, float]:
        return min(samples), max(samples)

    @staticmethod
    def statistic(first: Sequence[float], second: Sequence[float]) -> float:
        """KS distance: max ECDF gap over the pooled sample points."""
        a, b = sorted(first), sorted(second)
        n_a, n_b = len(a), len(b)
        i = j = 0
        d = 0.0
        while i < n_a and j < n_b:
            x = min(a[i], b[j])
            while i < n_a and a[i] <= x:
                i += 1
            while j < n_b and b[j] <= x:
                j += 1
            d = max(d, abs(i / n_a - j / n_b))
        return max(d, abs(1.0 - (j / n_b if n_b else 1.0)),
                   abs((i / n_a if n_a else 1.0) - 1.0))

    def _stop_reason(self, samples: Sequence[float]) -> Optional[str]:
        half = len(samples) // 2
        if half < 1:
            return None
        first, second = samples[:half], samples[half:]
        if self.statistic(first, second) <= self.target:
            return "ks_stable"
        return None


_RULES = {
    CiHalfWidthRule.name: CiHalfWidthRule,
    HdiWidthRule.name: HdiWidthRule,
    KsStabilityRule.name: KsStabilityRule,
}


def make_rule(
    name: str,
    *,
    min_repeats: int = 3,
    max_repeats: int = 30,
    target: float = 0.05,
    seed: int = 0,
) -> StoppingRule:
    """Build a stopping rule by name (``ci``, ``hdi``, or ``ks``)."""
    try:
        cls = _RULES[name]
    except KeyError:
        raise ValueError(
            f"unknown stopping rule {name!r}; "
            f"choose from {sorted(_RULES)}"
        ) from None
    return cls(
        min_repeats=min_repeats,
        max_repeats=max_repeats,
        target=target,
        seed=seed,
    )


def run_repeater(
    sample_fn: Callable[[int], float],
    rule: StoppingRule,
) -> Tuple[List[float], str]:
    """Repeat ``sample_fn(i)`` under ``rule`` until it says stop.

    Returns the collected samples and the stop reason.  Guaranteed to
    terminate within ``rule.max_repeats`` calls.
    """
    samples: List[float] = []
    while True:
        samples.append(float(sample_fn(len(samples))))
        reason = rule.check(samples)
        if reason is not None:
            return samples, reason

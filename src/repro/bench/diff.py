"""``repro bench diff`` — statistical comparison of two BENCH files.

For every metric present in both reports the differ computes the
median delta (as a percentage of the old median, normalized
per-dynamic-instruction for timing metrics because the producers
already emit ``*_ns_per_instr`` series) and a significance verdict
from confidence-interval overlap: a delta only *counts* when the two
intervals are disjoint.  A **regression** is a significant,
direction-aware worsening beyond the gate percentage on a metric both
sides mark ``comparable`` (machine-portable ratios; absolute timings
never fail the gate, they are reported as info rows).

Exit codes: 0 — no significant regression; 1 — at least one metric
regressed beyond the gate; 2 — a report could not be read.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .report import metric_entry

_TINY = 1e-12

#: Legacy key suffixes that read as ratio metrics (higher is better,
#: machine-portable, safe to gate on).
_LEGACY_RATIO_SUFFIXES = ("speedup", "improvement_over_baseline", "rate")

#: Legacy key suffixes that read as absolute timings (lower is better,
#: machine-dependent, report-only).
_LEGACY_TIME_SUFFIXES = ("_s", "_ms", "ns_per_instr")


def _flatten(payload: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = float(value)
    return flat


def _legacy_metrics(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Read a pre-bench-schema BENCH file as point estimates."""
    metrics: Dict[str, Dict[str, Any]] = {}
    for name, value in _flatten(payload).items():
        if name.endswith(_LEGACY_RATIO_SUFFIXES):
            direction, comparable = "higher", True
        elif name.endswith(_LEGACY_TIME_SUFFIXES):
            direction, comparable = "lower", False
        else:
            continue  # counts, seeds, schema numbers: not perf metrics
        entry = metric_entry(value)
        entry["direction"] = direction
        entry["comparable"] = comparable
        metrics[name] = entry
    return metrics


def load_metrics(path: Any) -> Dict[str, Dict[str, Any]]:
    """Load a BENCH file and normalize its metrics.

    Prefers the shared ``"bench"`` section; files predating it fall
    back to the legacy point-estimate reading.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: BENCH payload must be a JSON object")
    bench = payload.get("bench")
    if isinstance(bench, dict) and isinstance(bench.get("metrics"), dict):
        return {
            name: metric_entry(value)
            for name, value in bench["metrics"].items()
        }
    return _legacy_metrics(payload)


def diff_reports(
    old_metrics: Dict[str, Dict[str, Any]],
    new_metrics: Dict[str, Dict[str, Any]],
    *,
    gate_pct: float = 5.0,
) -> List[Dict[str, Any]]:
    """Compare metric maps; one row per shared metric name."""
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(old_metrics) & set(new_metrics)):
        old, new = old_metrics[name], new_metrics[name]
        direction = new.get("direction") or old.get("direction", "higher")
        delta_pct = (
            (new["median"] - old["median"])
            / max(abs(old["median"]), _TINY)
            * 100.0
        )
        worse = delta_pct < 0.0 if direction == "higher" else delta_pct > 0.0
        disjoint = (
            new["ci"][0] > old["ci"][1] or new["ci"][1] < old["ci"][0]
        )
        comparable = bool(old.get("comparable")) and bool(
            new.get("comparable")
        )
        regression = (
            comparable
            and worse
            and disjoint
            and abs(delta_pct) > gate_pct
        )
        rows.append({
            "metric": name,
            "old_median": old["median"],
            "new_median": new["median"],
            "old_ci": list(old["ci"]),
            "new_ci": list(new["ci"]),
            "delta_pct": delta_pct,
            "direction": direction,
            "comparable": comparable,
            "significant": disjoint,
            "regression": regression,
        })
    return rows


def _verdict(row: Dict[str, Any]) -> str:
    if row["regression"]:
        return "REGRESSION"
    if not row["comparable"]:
        return "info"
    if not row["significant"]:
        return "noise"
    worse = (
        row["delta_pct"] < 0.0
        if row["direction"] == "higher"
        else row["delta_pct"] > 0.0
    )
    return "worse" if worse else "improved"


def format_diff(
    rows: List[Dict[str, Any]], *, gate_pct: float = 5.0
) -> str:
    """Render the human table."""
    header = (
        f"{'metric':<42} {'old':>12} {'new':>12} "
        f"{'delta%':>8}  verdict"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['metric']:<42} "
            f"{row['old_median']:>12.4f} "
            f"{row['new_median']:>12.4f} "
            f"{row['delta_pct']:>+8.2f}  "
            f"{_verdict(row)}"
        )
    regressions = [r["metric"] for r in rows if r["regression"]]
    if regressions:
        lines.append("")
        lines.append(
            f"FAIL: {len(regressions)} significant regression(s) beyond "
            f"{gate_pct:.1f}% gate: {', '.join(regressions)}"
        )
    else:
        lines.append("")
        lines.append(
            f"OK: no significant regression beyond {gate_pct:.1f}% gate "
            f"({len(rows)} metric(s) compared)"
        )
    return "\n".join(lines)


def run_diff(
    old_path: Any,
    new_path: Any,
    *,
    gate_pct: float = 5.0,
) -> Tuple[int, str, List[Dict[str, Any]]]:
    """Full diff pipeline: returns (exit_code, rendered table, rows)."""
    try:
        old_metrics = load_metrics(old_path)
        new_metrics = load_metrics(new_path)
    except (OSError, ValueError) as exc:
        return 2, f"bench diff: cannot load report: {exc}", []
    rows = diff_reports(old_metrics, new_metrics, gate_pct=gate_pct)
    if not rows:
        return 2, (
            "bench diff: no shared metrics between "
            f"{old_path} and {new_path}"
        ), []
    text = format_diff(rows, gate_pct=gate_pct)
    code = 1 if any(r["regression"] for r in rows) else 0
    return code, text, rows

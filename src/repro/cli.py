"""Command-line front-end: ``repro <experiment>`` or ``python -m repro``.

Regenerates the paper's figures as text tables::

    repro fig13 --scale 1.0
    repro all
    repro show matrixmul        # annotated allocation of one benchmark
    repro list                  # benchmark inventory

and fronts the allocation service::

    repro serve --port 8077 --jobs 4        # the batching async server
    repro loadgen --port 8077               # benchmark a running server
    repro allocate kernel.asm               # one-shot allocation of a file

and the observability layer::

    repro trace vectoradd --trace-out trace.json    # Chrome/Perfetto trace
    repro explain fuzz:320 --orf-entries 1 --no-lrf --reg R18
    repro fig13 --trace-out t.json --profile-out p.txt

and the auto-tuner::

    repro tune matrixmul --strategy evolutionary --budget 64
    repro tune fuzz:911 --objective mrf --out BENCH_tuner.json

``trace``, ``explain``, and ``tune`` all accept the same kernel
target forms: a benchmark name, ``fuzz:SEED`` for a generated
workload, or a path to an IR text file (``-`` for stdin).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import experiments
from .alloc.allocator import AllocationConfig, allocate_kernel
from .ir.printer import format_allocated_kernel
from .sim.schemes import BEST_SCHEME, Scheme, SchemeKind
from .workloads.suites import (
    BENCHMARK_NAMES,
    all_workloads,
    get_workload,
    suite_of,
)

_FIGURES = {
    "fig2": (experiments.run_fig2, experiments.format_fig2),
    "fig11": (experiments.run_fig11, experiments.format_fig11),
    "fig12": (experiments.run_fig12, experiments.format_fig12),
    "fig13": (experiments.run_fig13, experiments.format_fig13),
    "fig14": (experiments.run_fig14, experiments.format_fig14),
    "fig15": (experiments.run_fig15, experiments.format_fig15),
    "limit": (experiments.run_limit_study, experiments.format_limit_study),
    "encoding": (
        experiments.run_encoding_study,
        experiments.format_encoding_study,
    ),
    "variable": (
        experiments.run_variable_orf_study,
        experiments.format_variable_orf,
    ),
    "sensitivity": (
        experiments.run_sensitivity_study,
        experiments.format_sensitivity,
    ),
}


def _version_text() -> str:
    """The installed distribution version, falling back to the
    package's own constant when running from a source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from . import __version__

        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Compile-Time Managed Multi-Level "
            "Register File Hierarchy' (MICRO 2011)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_version_text()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for the experiment engine (default 1)",
        )
        cmd.add_argument(
            "--cache-dir",
            default=None,
            help="content-addressed result cache directory (off unless set)",
        )
        cmd.add_argument(
            "--cache-max-bytes",
            type=int,
            default=None,
            help=(
                "cap the cache directory size; oldest entries are "
                "pruned on write (unbounded unless set)"
            ),
        )
        cmd.add_argument(
            "--metrics-out",
            default=None,
            help="write engine run metrics (JSON) to this path",
        )
        add_obs_flags(cmd)

    def add_obs_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--trace-out",
            default=None,
            help="enable span tracing; write a Chrome trace-event JSON "
                 "(load in chrome://tracing or Perfetto) to this path",
        )
        cmd.add_argument(
            "--trace-jsonl",
            default=None,
            help="enable span tracing; stream spans to this JSONL file",
        )
        cmd.add_argument(
            "--profile-out",
            default=None,
            help="capture per-stage cProfile stats; write the report "
                 "to this path",
        )

    def add_repeater_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--rule", choices=("ci", "hdi", "ks"), default=None,
            help="adaptive stopping rule for repeated measurements: "
                 "bootstrap CI half-width (ci), highest-density "
                 "interval width (hdi), or KS first/second-half "
                 "stability (ks); default: the tool's built-in rule",
        )
        cmd.add_argument(
            "--min-repeats", type=int, default=None,
            help="repeats before the stopping rule may fire",
        )
        cmd.add_argument(
            "--max-repeats", type=int, default=None,
            help="hard repeat cap regardless of the rule",
        )
        cmd.add_argument(
            "--target", dest="bench_target", type=float, default=None,
            help="rule threshold: relative CI/HDI width, or KS "
                 "statistic bound (ks wants ~0.25 at small repeat "
                 "counts)",
        )
        cmd.add_argument(
            "--bench-seed", type=int, default=None,
            help="bootstrap RNG seed for the stopping rule (default 0)",
        )

    for name in list(_FIGURES) + ["all"]:
        cmd = sub.add_parser(name, help=f"run the {name} experiment")
        cmd.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="multiply workload trip counts (default 1.0)",
        )
        add_engine_flags(cmd)

    unroll = sub.add_parser(
        "unroll", help="unroll-and-hoist ablation (Section 6.4)"
    )
    unroll.add_argument("--factor", type=int, default=4)
    unroll.add_argument(
        "--benchmarks",
        nargs="*",
        default=["reduction", "scalarprod", "vectoradd"],
    )

    sched = sub.add_parser(
        "scheduler", help="two-level warp scheduler IPC study"
    )
    sched.add_argument("--scale", type=float, default=1.0)
    sched.add_argument(
        "--benchmarks",
        nargs="*",
        default=["matrixmul", "reduction", "hotspot", "mandelbrot"],
        help="benchmarks to schedule (default: a representative four)",
    )
    sched.add_argument("--warps", type=int, default=32)

    timing = sub.add_parser(
        "timing",
        help="performance neutrality with operand-delivery timing",
    )
    timing.add_argument("--scale", type=float, default=1.0)
    timing.add_argument(
        "--benchmarks",
        nargs="*",
        default=["matrixmul", "hotspot", "reduction", "montecarlo"],
    )
    timing.add_argument("--warps", type=int, default=32)

    show = sub.add_parser(
        "show", help="print one benchmark's annotated allocation"
    )
    show.add_argument("benchmark", choices=sorted(BENCHMARK_NAMES))
    show.add_argument("--orf-entries", type=int, default=3)
    show.add_argument("--no-lrf", action="store_true")
    show.add_argument(
        "--strands", action="store_true",
        help="also print the per-strand allocation report",
    )

    export = sub.add_parser(
        "export", help="write every figure as CSV to a directory"
    )
    export.add_argument("directory")
    export.add_argument("--scale", type=float, default=1.0)
    export.add_argument(
        "--skip-slow", action="store_true",
        help="skip the limit study (the most expensive driver)",
    )
    add_engine_flags(export)

    report = sub.add_parser(
        "report", help="write the full reproduction report (markdown)"
    )
    report.add_argument("path", nargs="?", default="REPORT.md")
    report.add_argument("--scale", type=float, default=1.0)
    add_engine_flags(report)

    bench = sub.add_parser(
        "bench-accounting",
        help="time scalar vs. compiled accounting; write JSON",
    )
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--out",
        default="BENCH_accounting.json",
        help="output JSON path (default BENCH_accounting.json)",
    )
    add_repeater_flags(bench)

    bench_tools = sub.add_parser(
        "bench",
        help="benchmark-report tooling (compare BENCH files)",
    )
    bench_sub = bench_tools.add_subparsers(
        dest="bench_command", required=True
    )
    bench_diff = bench_sub.add_parser(
        "diff",
        help="compare two BENCH reports; exit 1 on significant "
             "regression beyond the gate",
    )
    bench_diff.add_argument("old", help="baseline BENCH JSON")
    bench_diff.add_argument("new", help="candidate BENCH JSON")
    bench_diff.add_argument(
        "--gate", type=float, default=5.0,
        help="regression gate in percent: a comparable metric moving "
             "worse than this with non-overlapping CIs fails "
             "(default 5.0)",
    )

    allocate = sub.add_parser(
        "allocate",
        help="allocate a kernel from an IR text file (or '-' for stdin)",
    )
    allocate.add_argument("path", help="assembly file, or '-' for stdin")
    allocate.add_argument("--orf-entries", type=int, default=3)
    allocate.add_argument("--no-lrf", action="store_true")

    trace = sub.add_parser(
        "trace",
        help="run one kernel through the full pipeline with span "
             "tracing on and write a Chrome trace-event JSON",
    )
    trace.add_argument(
        "target",
        nargs="?",
        default="vectoradd",
        help="benchmark name, 'fuzz:SEED' for a generated workload, or "
             "a path to an IR text file ('-' for stdin); "
             "default vectoradd",
    )
    trace.add_argument("--scale", type=float, default=1.0)
    trace.add_argument(
        "--trace-out", default="trace.json",
        help="Chrome trace-event JSON output (default trace.json)",
    )
    trace.add_argument(
        "--trace-jsonl", default=None,
        help="also stream spans to this JSONL file",
    )
    trace.add_argument(
        "--profile-out", default=None,
        help="capture per-stage cProfile stats to this path",
    )
    trace.add_argument("--metrics-out", default=None)
    trace.add_argument("--orf-entries", type=int, default=3)
    trace.add_argument("--no-lrf", action="store_true")

    explain = sub.add_parser(
        "explain",
        help="re-run the allocator with provenance recording and print "
             "the decision chain behind every placement",
    )
    explain.add_argument(
        "target",
        help="benchmark name, 'fuzz:SEED' for a generated workload, or "
             "a path to an IR text file ('-' for stdin)",
    )
    explain.add_argument(
        "--reg", default=None,
        help="only show decisions about this register, or decisions "
             "covering instructions that mention it (e.g. R18)",
    )
    explain.add_argument(
        "--pos", type=int, default=None,
        help="only show decisions covering this instruction position",
    )
    explain.add_argument("--orf-entries", type=int, default=3)
    explain.add_argument("--no-lrf", action="store_true")
    explain.add_argument(
        "--no-forward-branches", action="store_true",
        help="restrict allocation to basic-block scope (Section 4.2)",
    )
    explain.add_argument(
        "--no-partial-ranges", action="store_true",
        help="disable partial range allocation (Section 4.3)",
    )
    explain.add_argument(
        "--no-read-operands", action="store_true",
        help="disable read operand allocation (Section 4.4)",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report (strand map, decision "
             "trail, annotations) as JSON instead of text",
    )

    tune = sub.add_parser(
        "tune",
        help="search the AllocationConfig design space for one kernel "
             "and write the best config, frontier, and search trace",
    )
    tune.add_argument(
        "target",
        help="benchmark name, 'fuzz:SEED' for a generated workload, or "
             "a path to an IR text file ('-' for stdin)",
    )
    tune.add_argument(
        "--strategy",
        choices=("exhaustive", "hillclimb", "evolutionary"),
        default="evolutionary",
        help="search strategy (default evolutionary)",
    )
    tune.add_argument(
        "--budget", type=int, default=64,
        help="max distinct configs to evaluate (default 64)",
    )
    tune.add_argument(
        "--seed", type=int, default=0,
        help="search RNG seed; same seed replays byte-identically "
             "(default 0)",
    )
    tune.add_argument(
        "--objective", choices=("energy", "mrf"), default="energy",
        help="minimise energy/instr (pJ) or MRF accesses/instr "
             "(default energy)",
    )
    tune.add_argument(
        "--time-budget-s", type=float, default=None,
        help="stop the search after this many seconds (a stop "
             "condition, never an objective)",
    )
    tune.add_argument(
        "--include-ideal", action="store_true",
        help="open the assume_persistent_strands axis (Section 7 "
             "idealisation, not realisable in hardware)",
    )
    tune.add_argument("--scale", type=float, default=1.0)
    tune.add_argument(
        "--warps", type=int, default=2,
        help="warp count for fuzz:SEED targets (default 2)",
    )
    tune.add_argument(
        "--out", default="BENCH_tuner.json",
        help="output JSON path (default BENCH_tuner.json)",
    )
    add_repeater_flags(tune)
    add_engine_flags(tune)

    serve = sub.add_parser(
        "serve", help="run the allocation service (HTTP/JSON)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8077,
        help="listen port (0 picks an ephemeral port; default 8077)",
    )
    serve.add_argument(
        "--jobs", type=int, default=2,
        help="executor workers for the evaluation stage (default 2)",
    )
    serve.add_argument(
        "--executor", choices=("process", "thread"), default="process",
        help="evaluation executor; 'process' falls back to threads "
             "when a pool cannot start (default process)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="distinct jobs in flight before 429 (default 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request seconds before 504 (default 30)",
    )
    serve.add_argument(
        "--linger-ms", type=float, default=0.0,
        help="micro-batch coalescing window in ms (default 0)",
    )
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--cache-max-bytes", type=int, default=None)
    serve.add_argument("--metrics-out", default=None)
    serve.add_argument(
        "--trace-out", default=None,
        help="enable span tracing; write a Chrome trace on shutdown",
    )
    serve.add_argument(
        "--trace-jsonl", default=None,
        help="enable span tracing; stream spans to this JSONL file",
    )
    serve.add_argument(
        "--shard-of", default=None, metavar="K/N",
        help="cluster identity (e.g. 0/2): stamp responses with this "
             "shard label; normally set by 'repro cluster'",
    )

    cluster = sub.add_parser(
        "cluster",
        help="run a cluster coordinator over N allocation-service shards",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port", type=int, default=8078,
        help="coordinator listen port (default 8078)",
    )
    cluster.add_argument(
        "--shards", type=int, default=0,
        help="spawn this many shard subprocesses on ephemeral ports",
    )
    cluster.add_argument(
        "--shard-addr", action="append", default=[], metavar="HOST:PORT",
        help="attach to an already-running shard (repeatable); "
             "mutually exclusive with --shards",
    )
    cluster.add_argument(
        "--shard-jobs", type=int, default=2,
        help="executor workers per spawned shard (default 2)",
    )
    cluster.add_argument(
        "--shard-executor", choices=("process", "thread"),
        default="process",
        help="evaluation executor for spawned shards (default process)",
    )
    cluster.add_argument(
        "--shard-port-base", type=int, default=0,
        help="first shard port (0 = ephemeral; shard i gets base+i)",
    )
    cluster.add_argument("--cache-dir", default=None)
    cluster.add_argument(
        "--replication", type=int, default=2,
        help="ring successors eligible to serve a hot fingerprint "
             "(default 2)",
    )
    cluster.add_argument(
        "--hot-threshold", type=int, default=8,
        help="requests per window promoting a fingerprint to hot "
             "(default 8)",
    )
    cluster.add_argument(
        "--max-pending", type=int, default=256,
        help="coordinator-wide in-flight forwards before 429 "
             "(default 256)",
    )
    cluster.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-forward seconds before 504 (default 30)",
    )
    cluster.add_argument(
        "--wait-secs", type=float, default=60.0,
        help="wait this long for spawned shards to become healthy",
    )
    cluster.add_argument("--metrics-out", default=None)
    cluster.add_argument(
        "--trace-out", default=None,
        help="enable cluster-wide span tracing: spawned shards stream "
             "spans to per-shard JSONL sinks and everything merges "
             "into one Chrome trace here on shutdown",
    )
    cluster.add_argument(
        "--trace-jsonl", default=None,
        help="also stream the coordinator's own spans to this JSONL "
             "file",
    )

    loadgen = sub.add_parser(
        "loadgen", help="benchmark a running allocation service"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8077)
    loadgen.add_argument(
        "--requests", type=int, default=300,
        help="requests per phase (fired twice: cold, warm; default 300)",
    )
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--timeout", type=float, default=60.0)
    loadgen.add_argument(
        "--wait-secs", type=float, default=15.0,
        help="wait this long for the server to become healthy",
    )
    loadgen.add_argument(
        "--no-verify", action="store_true",
        help="skip byte-identical verification against the direct "
             "engine path",
    )
    loadgen.add_argument(
        "--out", default="BENCH_service.json",
        help="output JSON path (default BENCH_service.json)",
    )
    loadgen.add_argument(
        "--trace-out", default=None,
        help="record client-side per-request spans and write a Chrome "
             "trace-event JSON here",
    )
    loadgen.add_argument(
        "--shards", type=int, default=None,
        help="target is a cluster coordinator with this many shards: "
             "verify via /v1/cluster/healthz, record per-shard stats, "
             "and run an in-run single-server baseline for comparison",
    )
    loadgen.add_argument(
        "--baseline-jobs", type=int, default=2,
        help="executor workers for the sharded-mode baseline server "
             "(default 2)",
    )
    loadgen.add_argument(
        "--retries", type=int, default=0,
        help="client retries per request on 429/503 (default 0)",
    )
    add_repeater_flags(loadgen)

    sub.add_parser("list", help="list the synthesised benchmarks")
    return parser


def _make_engine(args):
    """An ExperimentEngine when any engine flag was used, else None.

    ``--profile-out`` forces an engine: the per-stage profiler hooks
    into ``RunMetrics.stage``, which only runs under an engine.
    """
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    metrics_out = getattr(args, "metrics_out", None)
    profile_out = getattr(args, "profile_out", None)
    if (
        jobs <= 1
        and cache_dir is None
        and metrics_out is None
        and profile_out is None
    ):
        return None
    from .engine import ExperimentEngine

    try:
        return ExperimentEngine(
            jobs=jobs,
            cache_dir=cache_dir,
            cache_max_bytes=getattr(args, "cache_max_bytes", None),
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def _make_stopping_rule(args):
    """A StoppingRule when any repeater flag was used, else None (each
    tool then applies its own built-in default rule)."""
    knobs = (
        getattr(args, "rule", None),
        getattr(args, "min_repeats", None),
        getattr(args, "max_repeats", None),
        getattr(args, "bench_target", None),
        getattr(args, "bench_seed", None),
    )
    if all(value is None for value in knobs):
        return None
    from .bench import make_rule

    kwargs = {}
    if args.min_repeats is not None:
        kwargs["min_repeats"] = args.min_repeats
    if args.max_repeats is not None:
        kwargs["max_repeats"] = args.max_repeats
    if args.bench_target is not None:
        kwargs["target"] = args.bench_target
    if args.bench_seed is not None:
        kwargs["seed"] = args.bench_seed
    try:
        return make_rule(args.rule or "ci", **kwargs)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def _finish_engine(engine, args) -> None:
    if engine is None:
        return
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        engine.metrics.write(metrics_out)
    print(engine.metrics.summary(), file=sys.stderr)


#: Commands that own their tracer lifecycle (the service configures the
#: tracer from ServiceConfig; loadgen writes its own client-side trace).
_OBS_SELF_MANAGED = ("serve", "loadgen", "cluster")


def _setup_observability(args) -> None:
    if getattr(args, "command", None) in _OBS_SELF_MANAGED:
        return
    trace_out = getattr(args, "trace_out", None)
    trace_jsonl = getattr(args, "trace_jsonl", None)
    if trace_out or trace_jsonl:
        from .obs.tracer import TRACER

        TRACER.configure(enabled=True, jsonl_path=trace_jsonl)
    if getattr(args, "profile_out", None):
        from .obs import profiling

        profiling.install(profiling.StageProfiler())


def _finish_observability(args) -> None:
    if getattr(args, "command", None) in _OBS_SELF_MANAGED:
        return
    trace_out = getattr(args, "trace_out", None)
    trace_jsonl = getattr(args, "trace_jsonl", None)
    if trace_out or trace_jsonl:
        from .obs.tracer import TRACER

        spans = TRACER.drain()
        TRACER.enabled = False
        if trace_out:
            from .obs.exporters import write_chrome_trace

            write_chrome_trace(trace_out, spans)
            print(
                f"wrote {len(spans)} spans to {trace_out}",
                file=sys.stderr,
            )
    profile_out = getattr(args, "profile_out", None)
    if profile_out:
        from .obs import profiling

        profiler = profiling.current()
        if profiler is not None:
            profiler.write(profile_out)
            profiling.uninstall()
            print(f"wrote stage profile to {profile_out}", file=sys.stderr)


def _plan_schemes(names: List[str]) -> List[Scheme]:
    """Every (scheme) a figure run will evaluate the suite under.

    Built from the figure modules' own sweep constants so the plan can
    never drift from what the drivers actually request; anything the
    plan misses is simply evaluated lazily (and cached) when the driver
    asks for it.
    """
    schemes: List[Scheme] = []

    def add(scheme: Scheme) -> None:
        if scheme not in schemes:
            schemes.append(scheme)

    for name in names:
        if name == "fig11":
            from .experiments.fig11 import ENTRY_SWEEP

            for entries in ENTRY_SWEEP:
                add(Scheme(SchemeKind.HW_TWO_LEVEL, entries))
                add(Scheme(SchemeKind.SW_TWO_LEVEL, entries))
        elif name == "fig12":
            from .experiments.fig12 import ENTRY_SWEEP

            for entries in ENTRY_SWEEP:
                add(Scheme(SchemeKind.HW_THREE_LEVEL, entries))
                add(Scheme(SchemeKind.SW_THREE_LEVEL, entries))
                add(
                    Scheme(
                        SchemeKind.SW_THREE_LEVEL, entries, split_lrf=True
                    )
                )
        elif name == "fig13":
            from .experiments.fig13 import ENTRY_SWEEP, EXTRA_SERIES, SERIES

            for _, base_scheme in SERIES + EXTRA_SERIES:
                for entries in ENTRY_SWEEP:
                    add(base_scheme.with_entries(entries))
        elif name == "fig14":
            from .experiments.fig14 import ENTRY_SWEEP

            for entries in ENTRY_SWEEP:
                add(
                    Scheme(
                        SchemeKind.SW_THREE_LEVEL, entries, split_lrf=True
                    )
                )
        elif name == "fig15":
            add(BEST_SCHEME)
        elif name == "limit":
            add(BEST_SCHEME)
            add(
                Scheme(
                    SchemeKind.HW_TWO_LEVEL, 3,
                    flush_on_backward_branch=True,
                )
            )
            add(Scheme(SchemeKind.HW_TWO_LEVEL, 3))
        elif name == "sensitivity":
            add(Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True))
            add(Scheme(SchemeKind.HW_TWO_LEVEL, 3))
    return schemes


def _run_allocate(args) -> int:
    """``repro allocate``: parse a file, allocate, print.

    Parse failures exit with code 2 and a one-line diagnostic — the
    same clean message the service returns as HTTP 400 — never a
    traceback.
    """
    from .ir.parser import AsmSyntaxError, parse_kernels

    try:
        if args.path == "-":
            text = sys.stdin.read()
        else:
            with open(args.path, "r", encoding="utf-8") as handle:
                text = handle.read()
    except OSError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    try:
        kernels = parse_kernels(text)
    except AsmSyntaxError as error:
        print(f"repro: parse error: {error}", file=sys.stderr)
        return 2
    if not kernels:
        print("repro: parse error: no kernels in input", file=sys.stderr)
        return 2
    config = AllocationConfig(
        orf_entries=args.orf_entries,
        use_lrf=not args.no_lrf,
        split_lrf=not args.no_lrf,
    )
    for index, kernel in enumerate(kernels):
        if index:
            print()
        result = allocate_kernel(kernel, config)
        print(format_allocated_kernel(kernel))
        print()
        print(result.summary())
    return 0


class _TargetError(Exception):
    """A CLI kernel target did not resolve; the message is the clean
    one-line diagnostic (no traceback)."""


def _resolve_target(target: str, scale: float = 1.0, num_warps: int = 2):
    """Resolve the target form shared by trace/explain/tune.

    Accepts a benchmark name, ``fuzz:SEED`` for a generated workload,
    or a path to an IR text file (``-`` for stdin); returns a
    :class:`~repro.workloads.shapes.WorkloadSpec`.  Raises
    :class:`_TargetError` with a clean message on any bad input.
    """
    if target in BENCHMARK_NAMES:
        return get_workload(target, scale)
    if target.startswith("fuzz:"):
        from .workloads.generators import generate_workload

        try:
            seed = int(target.split(":", 1)[1])
        except ValueError:
            raise _TargetError(
                f"bad fuzz target {target!r} (expected fuzz:SEED)"
            ) from None
        return generate_workload(seed, num_warps=num_warps)
    from .ir.parser import AsmSyntaxError, parse_kernels
    from .sim.executor import WarpInput
    from .workloads.shapes import WorkloadSpec

    try:
        if target == "-":
            text = sys.stdin.read()
        else:
            with open(target, "r", encoding="utf-8") as handle:
                text = handle.read()
    except OSError as error:
        raise _TargetError(str(error)) from None
    try:
        kernels = parse_kernels(text)
    except AsmSyntaxError as error:
        raise _TargetError(f"parse error: {error}") from None
    if not kernels:
        raise _TargetError("parse error: no kernels in input")
    kernel = kernels[0]
    return WorkloadSpec(
        name=kernel.name,
        suite="file",
        kernel=kernel,
        warp_inputs=[
            WarpInput(live_in_values={}) for _ in range(num_warps)
        ],
        description=f"parsed from {target}",
    )


def _run_trace(args) -> int:
    """``repro trace``: one kernel through trace → allocate →
    account under a spread of schemes, spans on; the generic
    observability teardown writes the Chrome trace."""
    from .engine import ExperimentEngine
    from .sim.schemes import (
        BEST_HW_TWO_LEVEL,
        BEST_SW_TWO_LEVEL,
    )

    engine = ExperimentEngine()
    try:
        spec = _resolve_target(args.target, args.scale)
    except _TargetError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    traces = engine.build_traces(spec.kernel, spec.warp_inputs)
    schemes = [
        Scheme(SchemeKind.BASELINE),
        BEST_SW_TWO_LEVEL.with_entries(args.orf_entries),
        BEST_HW_TWO_LEVEL,
    ]
    if not args.no_lrf:
        schemes.append(
            Scheme(
                SchemeKind.SW_THREE_LEVEL,
                args.orf_entries,
                split_lrf=True,
            )
        )
    for scheme in schemes:
        evaluation = engine.evaluate(traces, scheme)
        print(
            f"{spec.name:<16} {scheme.name:<16} "
            f"{evaluation.dynamic_instructions} dyn instrs"
        )
    if args.metrics_out:
        engine.metrics.write(args.metrics_out)
    print(engine.metrics.summary(), file=sys.stderr)
    return 0


def _run_explain(args) -> int:
    """``repro explain``: resolve the target kernel and print the
    allocator's provenance report (text, or JSON with ``--json``)."""
    try:
        kernel = _resolve_target(args.target, num_warps=1).kernel
    except _TargetError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2

    config = AllocationConfig(
        orf_entries=args.orf_entries,
        use_lrf=not args.no_lrf,
        split_lrf=not args.no_lrf,
        enable_partial_ranges=not args.no_partial_ranges,
        enable_read_operands=not args.no_read_operands,
        allow_forward_branches=not args.no_forward_branches,
    )
    if args.json:
        import json

        from .obs.explain import explain_json

        payload = explain_json(
            kernel, config, reg=args.reg, position=args.pos
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    from .obs.explain import explain_report

    print(explain_report(kernel, config, reg=args.reg, position=args.pos))
    return 0


def _run_tune(args) -> int:
    """``repro tune``: design-space search over AllocationConfig for
    one kernel; prints the report and writes the tuner JSON."""
    from .engine import ExperimentEngine
    from .tuner import default_space, format_tune, run_tune, write_tune

    try:
        spec = _resolve_target(args.target, args.scale, args.warps)
    except _TargetError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    engine = _make_engine(args)
    if engine is None:
        engine = ExperimentEngine()
    traces = engine.build_traces(spec.kernel, spec.warp_inputs)
    # The CLI always benches wall time (warm re-searches are cheap:
    # every candidate is a record-memo hit); the service endpoint
    # stays single-shot by passing rule=None to run_tune directly.
    rule = _make_stopping_rule(args)
    if rule is None:
        from .bench import make_rule

        rule = make_rule("ci", min_repeats=2, max_repeats=5, target=0.2)
    try:
        payload = run_tune(
            traces,
            space=default_space(include_ideal=args.include_ideal),
            strategy=args.strategy,
            objective=args.objective,
            budget=args.budget,
            seed=args.seed,
            engine=engine,
            time_budget_s=args.time_budget_s,
            rule=rule,
        )
    except ValueError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    print(format_tune(payload))
    print(write_tune(args.out, payload), file=sys.stderr)
    _finish_engine(engine, args)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _setup_observability(args)
    try:
        return _dispatch(args)
    finally:
        _finish_observability(args)


def _dispatch(args) -> int:
    if args.command == "list":
        for name in BENCHMARK_NAMES:
            print(f"{name:<22} {suite_of(name)}")
        return 0

    if args.command == "show":
        spec = get_workload(args.benchmark)
        config = AllocationConfig(
            orf_entries=args.orf_entries,
            use_lrf=not args.no_lrf,
            split_lrf=not args.no_lrf,
        )
        result = allocate_kernel(spec.kernel, config)
        print(format_allocated_kernel(spec.kernel))
        print()
        print(result.summary())
        if args.strands:
            print()
            header = (
                f"{'strand':>7}{'instrs':>8}{'webs':>6}{'lrf':>5}"
                f"{'orf':>5}{'rdop':>6}{'est. pJ saved':>15}"
            )
            print(header)
            for row in result.strand_report():
                print(
                    f"{row['strand']:>7}{row['instructions']:>8}"
                    f"{row['webs']:>6}{row['lrf_values']:>5}"
                    f"{row['orf_values']:>5}{row['read_operands']:>6}"
                    f"{row['estimated_savings_pj']:>15.1f}"
                )
        return 0

    if args.command == "allocate":
        return _run_allocate(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "explain":
        return _run_explain(args)

    if args.command == "tune":
        return _run_tune(args)

    if args.command == "serve":
        from .service.server import ServiceConfig, serve_forever

        shard = args.shard_of
        if shard is not None:
            try:
                index, _, count = shard.partition("/")
                if not 0 <= int(index) < int(count):
                    raise ValueError(shard)
            except ValueError:
                print(
                    f"repro serve: error: --shard-of must be K/N with "
                    f"0 <= K < N, got {shard!r}",
                    file=sys.stderr,
                )
                return 2
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            executor=args.executor,
            max_pending=args.max_pending,
            request_timeout_s=args.timeout,
            linger_s=args.linger_ms / 1e3,
            cache_dir=args.cache_dir,
            cache_max_bytes=args.cache_max_bytes,
            announce=True,
            trace_out=args.trace_out,
            trace_jsonl=args.trace_jsonl,
            shard=shard,
        )
        return serve_forever(config, metrics_out=args.metrics_out)

    if args.command == "cluster":
        from .service.cluster import ClusterConfig
        from .service.cluster.launcher import launch_cluster

        if args.shards and args.shard_addr:
            print(
                "repro cluster: error: --shards and --shard-addr are "
                "mutually exclusive",
                file=sys.stderr,
            )
            return 2
        config = ClusterConfig(
            host=args.host,
            port=args.port,
            shards=tuple(args.shard_addr),
            replication=args.replication,
            hot_threshold=args.hot_threshold,
            max_pending=args.max_pending,
            request_timeout_s=args.timeout,
            announce=True,
        )
        return launch_cluster(
            config,
            spawn=args.shards,
            shard_jobs=args.shard_jobs,
            shard_executor=args.shard_executor,
            cache_dir=args.cache_dir,
            shard_port_base=args.shard_port_base,
            wait_secs=args.wait_secs,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            trace_jsonl=args.trace_jsonl,
        )

    if args.command == "loadgen":
        from .service.client import wait_until_healthy
        from .service.loadgen import (
            format_loadgen,
            run_loadgen,
            write_loadgen,
        )

        if not wait_until_healthy(args.host, args.port, args.wait_secs):
            print(
                f"repro: error: no healthy service at "
                f"{args.host}:{args.port} within {args.wait_secs}s",
                file=sys.stderr,
            )
            return 1
        payload = run_loadgen(
            args.host,
            args.port,
            requests=args.requests,
            concurrency=args.concurrency,
            timeout=args.timeout,
            verify=not args.no_verify,
            trace_out=args.trace_out,
            shards=args.shards,
            baseline_jobs=args.baseline_jobs,
            rule=_make_stopping_rule(args),
            retries=args.retries,
        )
        print(format_loadgen(payload))
        print(write_loadgen(args.out, payload))
        return 0 if payload["ok"] else 1

    if args.command == "export":
        from .experiments.export import export_all

        engine = _make_engine(args)
        data = experiments.SuiteData.build(
            all_workloads(args.scale), scale=args.scale, engine=engine
        )
        data.prefetch(_plan_schemes(list(_FIGURES)))
        written = export_all(
            data, args.directory, include_slow=not args.skip_slow
        )
        for path in written:
            print(path)
        _finish_engine(engine, args)
        return 0

    if args.command == "report":
        from .experiments.report import write_report

        engine = _make_engine(args)
        data = experiments.SuiteData.build(
            all_workloads(args.scale), scale=args.scale, engine=engine
        )
        data.prefetch(_plan_schemes(list(_FIGURES)))
        written = write_report(args.path, data)
        print(written)
        _finish_engine(engine, args)
        return 0

    if args.command == "bench-accounting":
        payload = experiments.run_bench_accounting(
            scale=args.scale,
            repeats=args.repeats,
            rule=_make_stopping_rule(args),
        )
        print(experiments.format_bench_accounting(payload))
        print(experiments.write_bench_accounting(args.out, payload))
        return 0

    if args.command == "bench":
        from .bench import run_diff

        code, text, _ = run_diff(args.old, args.new, gate_pct=args.gate)
        print(text)
        return code

    if args.command == "unroll":
        result = experiments.run_unroll_study(
            args.benchmarks, factor=args.factor
        )
        print(experiments.format_unroll_study(result))
        return 0

    if args.command == "scheduler":
        specs = [get_workload(name, args.scale) for name in args.benchmarks]
        result = experiments.run_scheduler_study(
            specs, num_warps=args.warps
        )
        print(experiments.format_scheduler_study(result))
        return 0

    if args.command == "timing":
        specs = [get_workload(name, args.scale) for name in args.benchmarks]
        result = experiments.run_timing_study(specs, num_warps=args.warps)
        print(experiments.format_timing_study(result))
        return 0

    started = time.time()
    engine = _make_engine(args)
    data = experiments.SuiteData.build(
        all_workloads(args.scale), scale=args.scale, engine=engine
    )
    print(
        f"# {len(data.items)} workloads, "
        f"{data.dynamic_instructions} dynamic warp instructions "
        f"(built in {time.time() - started:.1f}s)\n",
        file=sys.stderr,
    )

    names = list(_FIGURES) if args.command == "all" else [args.command]
    data.prefetch(_plan_schemes(names))
    for name in names:
        run, fmt = _FIGURES[name]
        print(fmt(run(data)))
        print()
    _finish_engine(engine, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Strand partitioning (Section 4.1 of the paper).

Rules implemented:

1. An instruction that reads (or overwrites) a register with a pending
   long-latency definition from the *current* strand ends the strand
   before itself; the warp is descheduled until all pending events
   complete, so the pending set is cleared.
2. A backward branch ends a strand (the warp is not descheduled).
3. A basic block targeted by a backward branch begins a new strand.
4. At a control-flow merge where the incoming pending sets differ
   (Figure 5b), an extra endpoint is inserted at the block start; the
   warp conservatively waits for all pending events there.
5. At a merge of two *different* strands with consistent pending state,
   a new strand begins (ORF/LRF contents would be path dependent).

The partition is a fixpoint over (strand identity, pending set) per
block.  Strand identity is anchored at the program point where the
strand begins, which keeps identities stable across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.cfg import ControlFlowGraph
from ..ir.instructions import Instruction
from ..ir.kernel import InstructionRef, Kernel
from ..ir.registers import Register
from .model import EndpointKind, Strand, StrandAnchor, StrandPartition

_MAX_ITERATIONS = 100


@dataclass(frozen=True)
class _EdgeState:
    """Dataflow fact carried along one CFG edge."""

    #: Strand continuing along this edge; None if the source terminator
    #: ended the strand (backward branch).
    strand: Optional[StrandAnchor]
    pending: FrozenSet[Register]


@dataclass(frozen=True)
class _EntryState:
    strand: StrandAnchor
    pending: FrozenSet[Register]
    cut: Optional[EndpointKind]


def partition_strands(
    kernel: Kernel,
    cfg: Optional[ControlFlowGraph] = None,
    assume_persistent: bool = False,
) -> StrandPartition:
    """Partition a kernel into strands and annotate ``ends_strand`` bits.

    ``assume_persistent`` implements the Section 7 idealisation in which
    ORF/LRF contents survive warp descheduling: long-latency dependences
    and pending-set uncertainty no longer end strands (backward branches
    still do).  Allocations made under this partition are *not* valid on
    real hardware; the mode exists to bound the benefit of cross-strand
    instruction scheduling.
    """
    if cfg is None:
        cfg = ControlFlowGraph(kernel)
    partitioner = _Partitioner(kernel, cfg, assume_persistent)
    return partitioner.run()


class _Partitioner:
    def __init__(
        self,
        kernel: Kernel,
        cfg: ControlFlowGraph,
        assume_persistent: bool = False,
    ) -> None:
        self.kernel = kernel
        self.cfg = cfg
        self.assume_persistent = assume_persistent
        self.backward_targets = kernel.backward_branch_targets()
        self._refs: Dict[Tuple[int, int], InstructionRef] = {}
        for ref, _ in kernel.instructions():
            self._refs[(ref.block_index, ref.instr_index)] = ref

    def run(self) -> StrandPartition:
        entry_states: Dict[int, _EntryState] = {}
        edge_states: Dict[Tuple[int, int], _EdgeState] = {}
        cut_before: Dict[int, EndpointKind] = {}

        for _ in range(_MAX_ITERATIONS):
            changed = False
            new_cuts: Dict[int, EndpointKind] = {}
            for block_index in self.cfg.reverse_postorder:
                entry = self._entry_state(
                    block_index, entry_states, edge_states
                )
                if entry_states.get(block_index) != entry:
                    entry_states[block_index] = entry
                    changed = True
                exit_edges = self._transfer(block_index, entry, new_cuts)
                for edge, state in exit_edges.items():
                    if edge_states.get(edge) != state:
                        edge_states[edge] = state
                        changed = True
            if new_cuts != cut_before:
                cut_before = new_cuts
                changed = True
            if not changed:
                break
        else:
            # Did not converge: conservatively cut every merge block.
            for block_index in self.cfg.merge_blocks():
                current = entry_states.get(block_index)
                if current is not None and current.cut is None:
                    entry_states[block_index] = _EntryState(
                        (block_index, 0),
                        frozenset(),
                        EndpointKind.UNCERTAINTY,
                    )

        return self._build_partition(entry_states, cut_before)

    # -- dataflow ------------------------------------------------------------

    def _entry_state(
        self,
        block_index: int,
        entry_states: Dict[int, _EntryState],
        edge_states: Dict[Tuple[int, int], _EdgeState],
    ) -> _EntryState:
        anchor = (block_index, 0)
        if block_index == self.cfg.entry:
            return _EntryState(anchor, frozenset(), None)

        incoming = [
            edge_states[(pred, block_index)]
            for pred in self.cfg.predecessors[block_index]
            if (pred, block_index) in edge_states
        ]
        if not incoming:
            # Not yet reached in the iteration; start fresh.
            return _EntryState(anchor, frozenset(), None)

        pendings = {state.pending for state in incoming}
        strands = {state.strand for state in incoming}
        pending_conflict = len(pendings) > 1 and not self.assume_persistent
        if len(pendings) == 1:
            common_pending = next(iter(pendings))
        elif self.assume_persistent:
            common_pending = frozenset().union(*pendings)
        else:
            common_pending = frozenset()
        strand_ended = None in strands
        strand_conflict = strand_ended or len(strands) > 1

        if block_index in self.backward_targets:
            kind = (
                EndpointKind.UNCERTAINTY
                if pending_conflict
                else EndpointKind.BACKWARD_TARGET
            )
            return _EntryState(anchor, common_pending, kind)
        if pending_conflict:
            return _EntryState(anchor, frozenset(), EndpointKind.UNCERTAINTY)
        if strand_conflict:
            kind = (
                EndpointKind.BACKWARD_BRANCH
                if strand_ended and len(strands) == 1
                else EndpointKind.MERGE
            )
            return _EntryState(anchor, common_pending, kind)
        return _EntryState(
            next(iter(strands)), common_pending, None
        )  # type: ignore[arg-type]

    def _transfer(
        self,
        block_index: int,
        entry: _EntryState,
        cuts: Dict[int, EndpointKind],
    ) -> Dict[Tuple[int, int], _EdgeState]:
        strand = entry.strand
        pending: Set[Register] = set(entry.pending)
        block = self.kernel.blocks[block_index]

        for instr_index, instruction in enumerate(block.instructions):
            ref = self._refs[(block_index, instr_index)]
            if not self.assume_persistent and self._depends_on_pending(
                instruction, pending
            ):
                cuts[ref.position] = EndpointKind.LONG_LATENCY
                strand = (block_index, instr_index)
                pending.clear()
            if instruction.is_long_latency:
                written = instruction.gpr_write()
                if written is not None:
                    pending.add(written)

        frozen_pending = frozenset(pending)
        terminator_ends = self._terminator_is_backward(block_index, block)
        exit_strand = None if terminator_ends else strand

        return {
            (block_index, succ): _EdgeState(exit_strand, frozen_pending)
            for succ in self.cfg.successors[block_index]
        }

    @staticmethod
    def _depends_on_pending(
        instruction: Instruction, pending: Set[Register]
    ) -> bool:
        for _, reg in instruction.gpr_reads():
            if reg in pending:
                return True
        written = instruction.gpr_write()
        # Write-after-write on a pending register also stalls the warp.
        return written is not None and written in pending

    def _terminator_is_backward(self, block_index: int, block) -> bool:
        target = block.branch_target
        if target is None:
            return False
        return self.kernel.is_backward_edge(
            block_index, self.kernel.block_index(target)
        )

    # -- partition construction ---------------------------------------------

    def _build_partition(
        self,
        entry_states: Dict[int, _EntryState],
        cut_before: Dict[int, EndpointKind],
    ) -> StrandPartition:
        anchor_to_refs: Dict[StrandAnchor, List[InstructionRef]] = {}
        entry_cuts: Dict[int, EndpointKind] = {}
        wait_blocks: Set[int] = set()

        for block_index, block in enumerate(self.kernel.blocks):
            entry = entry_states.get(block_index)
            if entry is None:
                # Unreachable block: isolate every instruction.
                entry = _EntryState((block_index, 0), frozenset(), None)
            if entry.cut is not None:
                entry_cuts[block_index] = entry.cut
                if entry.cut.waits_for_pending:
                    wait_blocks.add(block_index)
            strand = entry.strand
            pending: Set[Register] = set(entry.pending)
            for instr_index, instruction in enumerate(block.instructions):
                ref = self._refs[(block_index, instr_index)]
                if ref.position in cut_before:
                    strand = (block_index, instr_index)
                    pending.clear()
                anchor_to_refs.setdefault(strand, []).append(ref)
                if instruction.is_long_latency:
                    written = instruction.gpr_write()
                    if written is not None:
                        pending.add(written)

        strands: List[Strand] = []
        strand_of_position: Dict[int, int] = {}
        for anchor in sorted(anchor_to_refs):
            refs = sorted(anchor_to_refs[anchor], key=lambda r: r.position)
            strand = Strand(len(strands), anchor, tuple(refs))
            for ref in refs:
                strand_of_position[ref.position] = strand.strand_id
            strands.append(strand)

        partition = StrandPartition(
            strands=tuple(strands),
            strand_of_position=strand_of_position,
            cut_before=dict(cut_before),
            entry_cuts=entry_cuts,
            wait_blocks=wait_blocks,
        )
        self._annotate_ends_strand(partition)
        return partition

    def _annotate_ends_strand(self, partition: StrandPartition) -> None:
        """Set the per-instruction ``ends_strand`` bit (Section 4.1).

        The positions carrying the bit are also recorded on the
        partition (``ends_strand_positions``) so a structurally
        identical kernel clone can be stamped without re-partitioning.
        """
        ending: Set[int] = set()
        for ref, instruction in self.kernel.instructions():
            instruction.ends_strand = False
        for block_index, block in enumerate(self.kernel.blocks):
            for instr_index, instruction in enumerate(block.instructions):
                ref = self._refs[(block_index, instr_index)]
                next_position = ref.position + 1
                is_last = instr_index == len(block.instructions) - 1
                if not is_last:
                    if next_position in partition.cut_before:
                        instruction.ends_strand = True
                        ending.add(ref.position)
                    continue
                # Last instruction of the block: strand ends if any
                # successor block entry is a cut, or the terminator is a
                # backward branch / exit.
                if instruction.opcode.is_exit:
                    instruction.ends_strand = True
                    ending.add(ref.position)
                    continue
                if self._terminator_is_backward(block_index, block):
                    instruction.ends_strand = True
                    ending.add(ref.position)
                    continue
                for succ in self.cfg.successors[block_index]:
                    if succ in partition.entry_cuts:
                        instruction.ends_strand = True
                        ending.add(ref.position)
                        break
        partition.ends_strand_positions = frozenset(ending)

"""Strand partitioning (Section 4.1): the allocation scope of the
ORF/LRF hierarchy."""

from .model import EndpointKind, Strand, StrandPartition
from .partition import partition_strands

__all__ = [
    "EndpointKind",
    "Strand",
    "StrandPartition",
    "partition_strands",
]

"""Data model for strands (Section 4.1 of the paper).

A *strand* is a sequence of instructions in which all dependences on
long-latency instructions come from operations issued in a previous
strand.  Strands are the allocation scope of the ORF and LRF: neither
structure preserves values across strand boundaries, because the warp
may be descheduled (long-latency endpoints) or loop (backward-branch
endpoints) at a boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from ..ir.kernel import InstructionRef


class EndpointKind(enum.Enum):
    """Why a strand boundary exists at a program point."""

    #: An instruction depends on a long-latency operation issued in the
    #: current strand; the warp is descheduled until all pending
    #: long-latency operations complete (Figure 5a, strand 1 -> 2).
    LONG_LATENCY = "long_latency"
    #: A backward branch ends the strand; the warp is *not* descheduled
    #: but values may not cross the boundary in the ORF/LRF.
    BACKWARD_BRANCH = "backward_branch"
    #: Block targeted by a backward branch begins a new strand.
    BACKWARD_TARGET = "backward_target"
    #: Control-flow merge where the set of pending long-latency events
    #: differs between paths (Figure 5b); the warp conservatively waits
    #: for all pending events here.
    UNCERTAINTY = "uncertainty"
    #: Control-flow merge of two different strands with consistent
    #: pending state; no deschedule, but ORF/LRF contents are unknown.
    MERGE = "merge"

    @property
    def waits_for_pending(self) -> bool:
        """True if the warp waits for all pending long-latency events."""
        return self in (EndpointKind.LONG_LATENCY, EndpointKind.UNCERTAINTY)


#: A strand's identity: the program point (block, instr) where it starts.
StrandAnchor = Tuple[int, int]


@dataclass
class Strand:
    """One strand: the static instructions it contains.

    ``refs`` are in layout order.  A strand may span forward branches
    (Section 4.5), so its refs are not necessarily contiguous in global
    position, but positions strictly increase along every dynamic path
    through the strand (strands never contain backward branches).
    """

    strand_id: int
    anchor: StrandAnchor
    refs: Tuple[InstructionRef, ...]

    @property
    def positions(self) -> FrozenSet[int]:
        return frozenset(ref.position for ref in self.refs)

    @property
    def first_position(self) -> int:
        return min(ref.position for ref in self.refs)

    @property
    def last_position(self) -> int:
        return max(ref.position for ref in self.refs)

    def __len__(self) -> int:
        return len(self.refs)


@dataclass
class StrandPartition:
    """Result of strand partitioning for one kernel."""

    strands: Tuple[Strand, ...]
    #: Maps global instruction position -> strand id.
    strand_of_position: Dict[int, int]
    #: Positions with a strand endpoint *before* the instruction, with
    #: the endpoint's kind (intra-block LONG_LATENCY cuts).
    cut_before: Dict[int, EndpointKind]
    #: Block indices whose entry is a strand endpoint, with kind.
    entry_cuts: Dict[int, EndpointKind]
    #: Block indices at whose entry the warp must wait for all pending
    #: long-latency operations (UNCERTAINTY endpoints).
    wait_blocks: Set[int] = field(default_factory=set)
    #: Positions whose instruction carries the ``ends_strand`` bit.
    #: Recorded here so the bits can be re-stamped onto any structurally
    #: identical kernel (the batched allocator annotates per-config
    #: clones from one shared partition).
    ends_strand_positions: FrozenSet[int] = frozenset()

    def strand_of(self, ref: InstructionRef) -> Strand:
        return self.strands[self.strand_of_position[ref.position]]

    def same_strand(self, a: InstructionRef, b: InstructionRef) -> bool:
        return (
            self.strand_of_position[a.position]
            == self.strand_of_position[b.position]
        )

    @property
    def num_strands(self) -> int:
        return len(self.strands)

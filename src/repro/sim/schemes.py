"""Register-file organisation schemes compared in the evaluation.

The paper's figures compare five organisations:

* ``BASELINE`` — single-level MRF (the normalisation baseline);
* ``HW_TWO_LEVEL`` — hardware RFC + MRF (prior work, 'HW' in Fig 13);
* ``HW_THREE_LEVEL`` — hardware LRF + RFC + MRF ('HW LRF');
* ``SW_TWO_LEVEL`` — software ORF + MRF ('SW');
* ``SW_THREE_LEVEL`` — software LRF + ORF + MRF ('SW LRF', split or
  unified).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..alloc.allocator import AllocationConfig
from ..energy.model import EnergyModel


class SchemeKind(enum.Enum):
    BASELINE = "baseline"
    HW_TWO_LEVEL = "hw"
    HW_THREE_LEVEL = "hw_lrf"
    SW_TWO_LEVEL = "sw"
    SW_THREE_LEVEL = "sw_lrf"

    @property
    def is_software(self) -> bool:
        return self in (SchemeKind.SW_TWO_LEVEL, SchemeKind.SW_THREE_LEVEL)

    @property
    def is_hardware(self) -> bool:
        return self in (SchemeKind.HW_TWO_LEVEL, SchemeKind.HW_THREE_LEVEL)

    @property
    def has_lrf(self) -> bool:
        return self in (
            SchemeKind.HW_THREE_LEVEL,
            SchemeKind.SW_THREE_LEVEL,
        )


@dataclass(frozen=True)
class Scheme:
    """One evaluated register file organisation."""

    kind: SchemeKind
    #: RFC or ORF entries per thread (1-8, the x-axis of Figs 11-13).
    entries_per_thread: int = 3
    #: Split LRF (one bank per operand slot) for SW three-level.
    split_lrf: bool = False
    #: LRF banks when split (operand slots A/B/C; ignored otherwise).
    lrf_banks: int = 3
    #: Section 4.3/4.4 optimisations (software schemes).
    enable_partial_ranges: bool = True
    enable_read_operands: bool = True
    #: Section 4.5: values may stay in the ORF across forward branches.
    allow_forward_branches: bool = True
    #: Hardware variant that flushes the RFC at backward branches
    #: (compared against in the Section 7 limit study).
    flush_on_backward_branch: bool = False
    #: Section 7 idealisation (software schemes): ORF/LRF contents
    #: survive descheduling, so strands end only at backward branches.
    #: Purely an allocation-side flag — accounting is unchanged — which
    #: is what lets the limit study's persistence variant (and the
    #: tuner's ideal space) flow through the ordinary evaluation path.
    assume_persistent_strands: bool = False

    def __post_init__(self) -> None:
        if self.kind is not SchemeKind.BASELINE and not (
            1 <= self.entries_per_thread <= 8
        ):
            raise ValueError("entries_per_thread must be in 1..8")

    @property
    def name(self) -> str:
        if self.kind is SchemeKind.BASELINE:
            return "baseline"
        suffix = f"{self.entries_per_thread}"
        if self.split_lrf and self.lrf_banks != 3:
            suffix += f"b{self.lrf_banks}"
        if self.assume_persistent_strands:
            suffix += "_persist"
        if self.kind is SchemeKind.SW_THREE_LEVEL and self.split_lrf:
            return f"sw_lrf_split_{suffix}"
        return f"{self.kind.value}_{suffix}"

    def allocation_config(self) -> AllocationConfig:
        """Allocator configuration (software schemes only)."""
        if not self.kind.is_software:
            raise ValueError(f"{self.kind} has no allocator")
        return AllocationConfig(
            orf_entries=self.entries_per_thread,
            use_lrf=self.kind is SchemeKind.SW_THREE_LEVEL,
            split_lrf=self.split_lrf,
            lrf_banks=self.lrf_banks,
            enable_partial_ranges=self.enable_partial_ranges,
            enable_read_operands=self.enable_read_operands,
            allow_forward_branches=self.allow_forward_branches,
            assume_persistent_strands=self.assume_persistent_strands,
        )

    def energy_model(self) -> EnergyModel:
        entries = (
            self.entries_per_thread
            if self.kind is not SchemeKind.BASELINE
            else 1
        )
        return EnergyModel(orf_entries=entries, split_lrf=self.split_lrf)

    def with_entries(self, entries_per_thread: int) -> "Scheme":
        return replace(self, entries_per_thread=entries_per_thread)


def scheme_for_config(config: AllocationConfig) -> Scheme:
    """The software scheme that evaluates ``config``.

    Inverse of :meth:`Scheme.allocation_config` over the software
    design space: ``scheme_for_config(c).allocation_config() == c``.
    This is how the tuner feeds :class:`AllocationConfig` candidates
    through the scheme-keyed evaluation pipeline (and its record
    memo/disk cache) unchanged.
    """
    kind = (
        SchemeKind.SW_THREE_LEVEL
        if config.use_lrf
        else SchemeKind.SW_TWO_LEVEL
    )
    return Scheme(
        kind,
        entries_per_thread=config.orf_entries,
        split_lrf=config.split_lrf,
        lrf_banks=config.lrf_banks,
        enable_partial_ranges=config.enable_partial_ranges,
        enable_read_operands=config.enable_read_operands,
        allow_forward_branches=config.allow_forward_branches,
        assume_persistent_strands=config.assume_persistent_strands,
    )


#: The paper's most energy-efficient configuration (Section 6.4):
#: SW three-level, 3-entry ORF, split LRF, all optimisations.
BEST_SCHEME = Scheme(
    SchemeKind.SW_THREE_LEVEL, entries_per_thread=3, split_lrf=True
)

#: The paper's best hardware configurations.
BEST_HW_TWO_LEVEL = Scheme(SchemeKind.HW_TWO_LEVEL, entries_per_thread=3)
BEST_HW_THREE_LEVEL = Scheme(SchemeKind.HW_THREE_LEVEL, entries_per_thread=6)
BEST_SW_TWO_LEVEL = Scheme(SchemeKind.SW_TWO_LEVEL, entries_per_thread=3)

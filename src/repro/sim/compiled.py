"""Compiled columnar traces: one-pass aggregation for re-accounting.

The paper's methodology (Section 5.1) traces each workload once and
re-accounts the same dynamic stream under every register-file
organisation.  For the *stateless* drivers — the single-level baseline
and the compile-time managed hierarchy — the cost of one dynamic event
depends only on the event's static position and its guard outcome, so
per-scheme accounting does not need to walk the event stream at all.
This module lowers a :class:`~repro.sim.runner.TraceSet` into:

* one **columnar trace** per *unique* warp (parallel arrays of static
  position, guard outcome, branch outcome, and lane masks), with
  identical warp traces deduplicated by content and carried as a
  multiplicity — uniform warps are accounted once and scaled;
* a trace-set-wide **(position, guard, branch) execution histogram**:
  how many times each static instruction issued with each outcome,
  summed over all warps.

Stateless accounting then collapses from O(dynamic instructions) per
scheme to a single shared O(dynamic) aggregation pass plus O(static
instructions) per scheme (:func:`baseline_counters`,
:func:`software_counters`).  The stateful hardware models keep their
scalar walk but are fed a :class:`StaticOperandTable` so the per-event
operand queries become list indexing, and they too benefit from warp
deduplication (each unique trace is simulated once; the paper's cache
models are deterministic, so a duplicate warp contributes an identical
counter delta).

The scalar drivers in :mod:`repro.sim.accounting` remain the oracle:
``tests/sim/test_compiled.py`` proves the compiled path produces
identical :class:`AccessCounters` for every scheme kind over the full
workload suite, and ``REPRO_COMPILED=0`` disables the compiled path
entirely at run time.
"""

from __future__ import annotations

import hashlib
import os
from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..hierarchy.counters import AccessCounters, CounterKey
from ..ir.kernel import Kernel
from ..levels import Level
from .accounting import PointLiveness, shared_consumed_positions

#: Histogram key: (static position, guard_passed, branch_taken).
HistogramKey = Tuple[int, bool, bool]


def compiled_enabled() -> bool:
    """True unless ``REPRO_COMPILED`` disables the compiled path."""
    return os.environ.get("REPRO_COMPILED", "1").lower() not in (
        "0",
        "false",
        "off",
    )


@dataclass
class CompiledTrace:
    """One unique warp trace in columnar form.

    The arrays are parallel, one slot per dynamic event; typecodes are
    fixed (``q``/``b``) so ``tobytes()`` is a stable content image.
    ``multiplicity`` counts how many of the trace set's warps executed
    exactly this stream.
    """

    positions: array
    guards: array
    branches: array
    active_masks: array
    exec_masks: array
    multiplicity: int = 1
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.positions)

    def content_digest(self) -> str:
        """SHA-256 over the columnar bytes (multiplicity excluded)."""
        if self._digest is None:
            hasher = hashlib.sha256()
            for column in (
                self.positions,
                self.guards,
                self.branches,
                self.active_masks,
                self.exec_masks,
            ):
                hasher.update(column.tobytes())
            self._digest = hasher.hexdigest()
        return self._digest


@dataclass
class CompiledTraceSet:
    """The compiled form of one :class:`~repro.sim.runner.TraceSet`."""

    kernel: Kernel
    #: Unique warp traces in order of first appearance.
    unique: List[CompiledTrace]
    #: Original warp index -> index into ``unique``.
    warp_to_unique: List[int]
    #: Index of the first original warp carrying each unique trace.
    first_warp: List[int]
    #: (position, guard, branch) -> dynamic execution count over all
    #: warps (unique counts scaled by multiplicity).
    histogram: Dict[HistogramKey, int]
    dynamic_instructions: int

    @property
    def unique_trace_count(self) -> int:
        return len(self.unique)

    def sorted_histogram(self) -> List[Tuple[HistogramKey, int]]:
        """Histogram entries in deterministic (position-major) order."""
        return sorted(self.histogram.items())


def compile_traces(traces) -> CompiledTraceSet:
    """Lower a trace set to columnar form (cached on the instance).

    Safe to cache: traces are immutable once materialised (the same
    invariant the engine's fingerprint cache relies on).
    """
    cached = getattr(traces, "_compiled", None)
    if cached is not None:
        return cached

    unique: List[CompiledTrace] = []
    first_warp: List[int] = []
    warp_to_unique: List[int] = []
    index_of: Dict[Tuple, int] = {}
    total = 0
    for warp_index, trace in enumerate(traces.warp_traces):
        columns = tuple(event.columns() for event in trace)
        total += len(columns)
        index = index_of.get(columns)
        if index is None:
            index = len(unique)
            index_of[columns] = index
            unique.append(
                CompiledTrace(
                    positions=array("q", (c[0] for c in columns)),
                    guards=array("b", (c[1] for c in columns)),
                    branches=array("b", (c[2] for c in columns)),
                    active_masks=array("q", (c[3] for c in columns)),
                    exec_masks=array("q", (c[4] for c in columns)),
                )
            )
            first_warp.append(warp_index)
        else:
            unique[index].multiplicity += 1
        warp_to_unique.append(index)

    histogram: Dict[HistogramKey, int] = {}
    for compiled_trace in unique:
        weight = compiled_trace.multiplicity
        for position, guard, branch in zip(
            compiled_trace.positions,
            compiled_trace.guards,
            compiled_trace.branches,
        ):
            key = (position, bool(guard), bool(branch))
            histogram[key] = histogram.get(key, 0) + weight

    compiled = CompiledTraceSet(
        kernel=traces.kernel,
        unique=unique,
        warp_to_unique=warp_to_unique,
        first_warp=first_warp,
        histogram=histogram,
        dynamic_instructions=total,
    )
    traces._compiled = compiled
    return compiled


# -- static operand tables -------------------------------------------------


class StaticOperandTable:
    """Per-position operand facts, derived once from a kernel.

    Everything the accounting drivers ask an instruction per dynamic
    event — GPR reads, the written GPR, word widths, datapath class,
    latency class, and whether a taken branch is backward — indexed by
    the instruction's static position.
    """

    __slots__ = (
        "shared",
        "read_regs",
        "read_words_total",
        "write_reg",
        "write_words",
        "long_latency",
        "backward_branch",
    )

    def __init__(self, kernel: Kernel) -> None:
        self.shared: List[bool] = []
        self.read_regs: List[Tuple] = []
        self.read_words_total: List[int] = []
        self.write_reg: List = []
        self.write_words: List[int] = []
        self.long_latency: List[bool] = []
        self.backward_branch: List[bool] = []
        for ref, instruction in kernel.instructions():
            reads = tuple(reg for _, reg in instruction.gpr_reads())
            written = instruction.gpr_write()
            self.shared.append(instruction.unit.is_shared)
            self.read_regs.append(reads)
            self.read_words_total.append(
                sum(reg.num_words for reg in reads)
            )
            self.write_reg.append(written)
            self.write_words.append(
                written.num_words if written is not None else 0
            )
            self.long_latency.append(instruction.is_long_latency)
            backward = False
            if instruction.target is not None:
                backward = kernel.is_backward_edge(
                    ref.block_index, kernel.block_index(instruction.target)
                )
            self.backward_branch.append(backward)


def operand_table(kernel: Kernel) -> StaticOperandTable:
    """The kernel's operand table (cached on the kernel instance)."""
    cached = kernel.__dict__.get("_operand_table")
    if cached is None:
        cached = StaticOperandTable(kernel)
        kernel.__dict__["_operand_table"] = cached
    return cached


# -- shared analysis cache -------------------------------------------------

#: kernel content fingerprint -> (PointLiveness, shared positions).
#: Structurally identical kernels share one analysis (registers and
#: positions are value objects), so clones and cache-restored kernels
#: hit.  Bounded so fuzzed throwaway kernels cannot grow it forever.
_ANALYSIS_CACHE: Dict[str, Tuple[PointLiveness, FrozenSet[int]]] = {}
_ANALYSIS_CACHE_LIMIT = 256


def kernel_analyses(kernel: Kernel) -> Tuple[PointLiveness, FrozenSet[int]]:
    """Cached (liveness, shared-consumed positions) for a kernel."""
    fingerprint = kernel.content_fingerprint()
    hit = _ANALYSIS_CACHE.get(fingerprint)
    if hit is None:
        if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_LIMIT:
            _ANALYSIS_CACHE.clear()
        hit = (PointLiveness(kernel), shared_consumed_positions(kernel))
        _ANALYSIS_CACHE[fingerprint] = hit
    return hit


# -- vectorized stateless accounting ---------------------------------------


def baseline_counters(compiled: CompiledTraceSet) -> AccessCounters:
    """Single-level accounting by histogram walk (MRF-only costs)."""
    table = operand_table(compiled.kernel)
    counters = AccessCounters()
    counts = counters.counts
    for (position, guard, _branch), weight in compiled.sorted_histogram():
        shared = table.shared[position]
        read_words = table.read_words_total[position]
        if read_words:
            key = (Level.MRF, True, shared)
            counts[key] = counts.get(key, 0) + read_words * weight
        if guard:
            write_words = table.write_words[position]
            if write_words:
                key = (Level.MRF, False, shared)
                counts[key] = counts.get(key, 0) + write_words * weight
    return counters


#: Per-position counter deltas: applied on every issue (reads, plus
#: read-operand ORF fills) and only when the guard passed (writes).
_DeltaList = List[Tuple[CounterKey, int]]


def _annotation_deltas(
    annotated_kernel: Kernel,
) -> Tuple[List[_DeltaList], List[_DeltaList]]:
    """(read deltas, write deltas) per position of an allocated kernel.

    Cached on the kernel instance; valid because allocator output is
    never re-annotated (``evaluate_traces`` allocates fresh clones and
    the allocation memo reuses the finished result as-is).
    """
    cached = annotated_kernel.__dict__.get("_annotation_deltas")
    if cached is not None:
        return cached
    read_deltas: List[_DeltaList] = []
    write_deltas: List[_DeltaList] = []
    for _, instruction in annotated_kernel.instructions():
        shared = instruction.unit.is_shared
        src_anns = instruction.src_anns
        reads: _DeltaList = []
        for slot, reg in instruction.gpr_reads():
            words = reg.num_words
            annotation = src_anns[slot] if src_anns else None
            if annotation is None:
                reads.append(((Level.MRF, True, shared), words))
                continue
            reads.append(((annotation.level, True, shared), words))
            if annotation.orf_write_entry is not None:
                # Read operand allocation (Section 4.4): the MRF read
                # is also written into the ORF, guard or no guard.
                reads.append(((Level.ORF, False, shared), words))
        writes: _DeltaList = []
        written = instruction.gpr_write()
        if written is not None:
            words = written.num_words
            if instruction.dst_ann is None:
                writes.append(((Level.MRF, False, shared), words))
            else:
                for level in instruction.dst_ann.levels:
                    writes.append(((level, False, shared), words))
        read_deltas.append(reads)
        write_deltas.append(writes)
    result = (read_deltas, write_deltas)
    annotated_kernel.__dict__["_annotation_deltas"] = result
    return result


def software_counters(
    compiled: CompiledTraceSet, annotated_kernel: Kernel
) -> AccessCounters:
    """Software-scheme accounting by histogram walk.

    ``annotated_kernel`` is the allocator's output — structurally
    identical to the traced kernel, so positions align (the same
    position-based resolution the scalar driver uses).
    """
    read_deltas, write_deltas = _annotation_deltas(annotated_kernel)
    counters = AccessCounters()
    counts = counters.counts
    for (position, guard, _branch), weight in compiled.sorted_histogram():
        for key, words in read_deltas[position]:
            counts[key] = counts.get(key, 0) + words * weight
        if guard:
            for key, words in write_deltas[position]:
                counts[key] = counts.get(key, 0) + words * weight
    return counters


def merge_scaled(
    into: AccessCounters, delta: AccessCounters, multiplicity: int
) -> None:
    """``into += delta * multiplicity`` (integer counts stay integral)."""
    counts = into.counts
    for key, count in delta.counts.items():
        counts[key] = counts.get(key, 0) + count * multiplicity

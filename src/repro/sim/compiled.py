"""Compiled columnar traces: one-pass aggregation for re-accounting.

The paper's methodology (Section 5.1) traces each workload once and
re-accounts the same dynamic stream under every register-file
organisation.  For the *stateless* drivers — the single-level baseline
and the compile-time managed hierarchy — the cost of one dynamic event
depends only on the event's static position and its guard outcome, so
per-scheme accounting does not need to walk the event stream at all.
This module lowers a :class:`~repro.sim.runner.TraceSet` into:

* one **columnar trace** per *unique* warp (parallel arrays of static
  position, guard outcome, branch outcome, and lane masks), with
  identical warp traces deduplicated by content and carried as a
  multiplicity — uniform warps are accounted once and scaled;
* a trace-set-wide **(position, guard, branch) execution histogram**:
  how many times each static instruction issued with each outcome,
  summed over all warps.

Stateless accounting then collapses from O(dynamic instructions) per
scheme to a single shared O(dynamic) aggregation pass plus O(static
instructions) per scheme (:func:`baseline_counters`,
:func:`software_counters`).

The *stateful* hardware models (FIFO caches with liveness-gated
write-back) cannot be folded into the histogram, but their per-event
decode is scheme-independent: which registers are read and written,
whether the two-level scheduler deschedules the warp (a function of
the (position, guard) stream and the static dependence table alone),
and whether a taken branch is backward.  :func:`hardware_event_program`
lowers each unique trace once into a compact **event program** —
registers as small integer ids, liveness sets as bitmasks, deschedule
and flush points resolved — and :func:`hardware_counters` replays that
shared program through the columnar cache walks
(:func:`repro.hierarchy.rfc.columnar_rfc_walk`,
:func:`repro.hierarchy.hw_lrf.columnar_three_level_walk`) for every
requested hardware scheme in one pass per unique trace, scaling each
result by the trace's multiplicity.  Counters accumulate in dense slot
vectors (:data:`repro.hierarchy.counters.COUNTER_SLOTS`) and are
rehydrated at the end.

The scalar drivers in :mod:`repro.sim.accounting` remain the oracle:
``tests/sim/test_compiled.py`` proves the compiled path produces
identical :class:`AccessCounters` for every scheme kind over the full
workload suite, and ``REPRO_COMPILED=0`` disables the compiled path
entirely at run time.
"""

from __future__ import annotations

import hashlib
import os
from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..hierarchy.counters import (
    SLOT_INDEX,
    AccessCounters,
    CounterKey,
    counters_from_slots,
)
from ..hierarchy.hw_lrf import columnar_three_level_walk
from ..hierarchy.rfc import columnar_rfc_walk
from ..ir.kernel import Kernel
from ..levels import Level
from .accounting import PointLiveness, shared_consumed_positions
from .schemes import Scheme, SchemeKind

#: Histogram key: (static position, guard_passed, branch_taken).
HistogramKey = Tuple[int, bool, bool]


def compiled_enabled() -> bool:
    """True unless ``REPRO_COMPILED`` disables the compiled path."""
    return os.environ.get("REPRO_COMPILED", "1").lower() not in (
        "0",
        "false",
        "off",
    )


@dataclass
class CompiledTrace:
    """One unique warp trace in columnar form.

    The arrays are parallel, one slot per dynamic event; typecodes are
    fixed (``q``/``b``) so ``tobytes()`` is a stable content image.
    ``multiplicity`` counts how many of the trace set's warps executed
    exactly this stream.
    """

    positions: array
    guards: array
    branches: array
    active_masks: array
    exec_masks: array
    multiplicity: int = 1
    _digest: Optional[str] = field(default=None, repr=False, compare=False)
    #: Cached scheme-independent event program (hardware accounting).
    _hw_program: Optional[List] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.positions)

    def content_digest(self) -> str:
        """SHA-256 over the columnar bytes (multiplicity excluded)."""
        if self._digest is None:
            hasher = hashlib.sha256()
            for column in (
                self.positions,
                self.guards,
                self.branches,
                self.active_masks,
                self.exec_masks,
            ):
                hasher.update(column.tobytes())
            self._digest = hasher.hexdigest()
        return self._digest


@dataclass
class CompiledTraceSet:
    """The compiled form of one :class:`~repro.sim.runner.TraceSet`."""

    kernel: Kernel
    #: Unique warp traces in order of first appearance.
    unique: List[CompiledTrace]
    #: Original warp index -> index into ``unique``.
    warp_to_unique: List[int]
    #: Index of the first original warp carrying each unique trace.
    first_warp: List[int]
    #: (position, guard, branch) -> dynamic execution count over all
    #: warps (unique counts scaled by multiplicity).
    histogram: Dict[HistogramKey, int]
    dynamic_instructions: int

    @property
    def unique_trace_count(self) -> int:
        return len(self.unique)

    def sorted_histogram(self) -> List[Tuple[HistogramKey, int]]:
        """Histogram entries in deterministic (position-major) order."""
        return sorted(self.histogram.items())


def compile_traces(traces) -> CompiledTraceSet:
    """Lower a trace set to columnar form (cached on the instance).

    Safe to cache: traces are immutable once materialised (the same
    invariant the engine's fingerprint cache relies on).
    """
    cached = getattr(traces, "_compiled", None)
    if cached is not None:
        return cached

    unique: List[CompiledTrace] = []
    first_warp: List[int] = []
    warp_to_unique: List[int] = []
    index_of: Dict[Tuple, int] = {}
    total = 0
    for warp_index, trace in enumerate(traces.warp_traces):
        columns = tuple(event.columns() for event in trace)
        total += len(columns)
        index = index_of.get(columns)
        if index is None:
            index = len(unique)
            index_of[columns] = index
            unique.append(
                CompiledTrace(
                    positions=array("q", (c[0] for c in columns)),
                    guards=array("b", (c[1] for c in columns)),
                    branches=array("b", (c[2] for c in columns)),
                    active_masks=array("q", (c[3] for c in columns)),
                    exec_masks=array("q", (c[4] for c in columns)),
                )
            )
            first_warp.append(warp_index)
        else:
            unique[index].multiplicity += 1
        warp_to_unique.append(index)

    histogram: Dict[HistogramKey, int] = {}
    for compiled_trace in unique:
        weight = compiled_trace.multiplicity
        for position, guard, branch in zip(
            compiled_trace.positions,
            compiled_trace.guards,
            compiled_trace.branches,
        ):
            key = (position, bool(guard), bool(branch))
            histogram[key] = histogram.get(key, 0) + weight

    compiled = CompiledTraceSet(
        kernel=traces.kernel,
        unique=unique,
        warp_to_unique=warp_to_unique,
        first_warp=first_warp,
        histogram=histogram,
        dynamic_instructions=total,
    )
    traces._compiled = compiled
    return compiled


# -- static operand tables -------------------------------------------------


class StaticOperandTable:
    """Per-position operand facts, derived once from a kernel.

    Everything the accounting drivers ask an instruction per dynamic
    event — GPR reads, the written GPR, word widths, datapath class,
    latency class, and whether a taken branch is backward — indexed by
    the instruction's static position.
    """

    __slots__ = (
        "shared",
        "read_regs",
        "read_words_total",
        "write_reg",
        "write_words",
        "long_latency",
        "backward_branch",
    )

    def __init__(self, kernel: Kernel) -> None:
        self.shared: List[bool] = []
        self.read_regs: List[Tuple] = []
        self.read_words_total: List[int] = []
        self.write_reg: List = []
        self.write_words: List[int] = []
        self.long_latency: List[bool] = []
        self.backward_branch: List[bool] = []
        for ref, instruction in kernel.instructions():
            reads = tuple(reg for _, reg in instruction.gpr_reads())
            written = instruction.gpr_write()
            self.shared.append(instruction.unit.is_shared)
            self.read_regs.append(reads)
            self.read_words_total.append(
                sum(reg.num_words for reg in reads)
            )
            self.write_reg.append(written)
            self.write_words.append(
                written.num_words if written is not None else 0
            )
            self.long_latency.append(instruction.is_long_latency)
            backward = False
            if instruction.target is not None:
                backward = kernel.is_backward_edge(
                    ref.block_index, kernel.block_index(instruction.target)
                )
            self.backward_branch.append(backward)


def operand_table(kernel: Kernel) -> StaticOperandTable:
    """The kernel's operand table (cached on the kernel instance)."""
    cached = kernel.__dict__.get("_operand_table")
    if cached is None:
        cached = StaticOperandTable(kernel)
        kernel.__dict__["_operand_table"] = cached
    return cached


# -- shared analysis cache -------------------------------------------------

#: kernel content fingerprint -> (PointLiveness, shared positions).
#: Structurally identical kernels share one analysis (registers and
#: positions are value objects), so clones and cache-restored kernels
#: hit.  Bounded so fuzzed throwaway kernels cannot grow it forever.
_ANALYSIS_CACHE: Dict[str, Tuple[PointLiveness, FrozenSet[int]]] = {}
_ANALYSIS_CACHE_LIMIT = 256


def kernel_analyses(kernel: Kernel) -> Tuple[PointLiveness, FrozenSet[int]]:
    """Cached (liveness, shared-consumed positions) for a kernel."""
    fingerprint = kernel.content_fingerprint()
    hit = _ANALYSIS_CACHE.get(fingerprint)
    if hit is None:
        if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_LIMIT:
            _ANALYSIS_CACHE.clear()
        hit = (PointLiveness(kernel), shared_consumed_positions(kernel))
        _ANALYSIS_CACHE[fingerprint] = hit
    return hit


# -- vectorized stateless accounting ---------------------------------------


def baseline_counters(compiled: CompiledTraceSet) -> AccessCounters:
    """Single-level accounting by histogram walk (MRF-only costs)."""
    table = operand_table(compiled.kernel)
    counters = AccessCounters()
    counts = counters.counts
    for (position, guard, _branch), weight in compiled.sorted_histogram():
        shared = table.shared[position]
        read_words = table.read_words_total[position]
        if read_words:
            key = (Level.MRF, True, shared)
            counts[key] = counts.get(key, 0) + read_words * weight
        if guard:
            write_words = table.write_words[position]
            if write_words:
                key = (Level.MRF, False, shared)
                counts[key] = counts.get(key, 0) + write_words * weight
    return counters


#: Per-position counter deltas: applied on every issue (reads, plus
#: read-operand ORF fills) and only when the guard passed (writes).
_DeltaList = List[Tuple[CounterKey, int]]


def _annotation_deltas(
    annotated_kernel: Kernel,
) -> Tuple[List[_DeltaList], List[_DeltaList]]:
    """(read deltas, write deltas) per position of an allocated kernel.

    Cached on the kernel instance; valid because allocator output is
    never re-annotated (``evaluate_traces`` allocates fresh clones and
    the allocation memo reuses the finished result as-is).
    """
    cached = annotated_kernel.__dict__.get("_annotation_deltas")
    if cached is not None:
        return cached
    read_deltas: List[_DeltaList] = []
    write_deltas: List[_DeltaList] = []
    for _, instruction in annotated_kernel.instructions():
        shared = instruction.unit.is_shared
        src_anns = instruction.src_anns
        reads: _DeltaList = []
        for slot, reg in instruction.gpr_reads():
            words = reg.num_words
            annotation = src_anns[slot] if src_anns else None
            if annotation is None:
                reads.append(((Level.MRF, True, shared), words))
                continue
            reads.append(((annotation.level, True, shared), words))
            if annotation.orf_write_entry is not None:
                # Read operand allocation (Section 4.4): the MRF read
                # is also written into the ORF, guard or no guard.
                reads.append(((Level.ORF, False, shared), words))
        writes: _DeltaList = []
        written = instruction.gpr_write()
        if written is not None:
            words = written.num_words
            if instruction.dst_ann is None:
                writes.append(((Level.MRF, False, shared), words))
            else:
                for level in instruction.dst_ann.levels:
                    writes.append(((level, False, shared), words))
        read_deltas.append(reads)
        write_deltas.append(writes)
    result = (read_deltas, write_deltas)
    annotated_kernel.__dict__["_annotation_deltas"] = result
    return result


def software_counters(
    compiled: CompiledTraceSet, annotated_kernel: Kernel
) -> AccessCounters:
    """Software-scheme accounting by histogram walk.

    ``annotated_kernel`` is the allocator's output — structurally
    identical to the traced kernel, so positions align (the same
    position-based resolution the scalar driver uses).
    """
    read_deltas, write_deltas = _annotation_deltas(annotated_kernel)
    counters = AccessCounters()
    counts = counters.counts
    for (position, guard, _branch), weight in compiled.sorted_histogram():
        for key, words in read_deltas[position]:
            counts[key] = counts.get(key, 0) + words * weight
        if guard:
            for key, words in write_deltas[position]:
                counts[key] = counts.get(key, 0) + words * weight
    return counters


def merge_scaled(
    into: AccessCounters, delta: AccessCounters, multiplicity: int
) -> None:
    """``into += delta * multiplicity`` (integer counts stay integral)."""
    counts = into.counts
    for key, count in delta.counts.items():
        counts[key] = counts.get(key, 0) + count * multiplicity


# -- columnar hardware accounting ------------------------------------------


class HardwareStaticTable:
    """Int-lowered static facts for the columnar hardware walks.

    Registers are renamed to dense ids (``words[id]`` holds the word
    count); per position the table carries the read id/width pairs, the
    written id (-1 for none), datapath class, latency class, backward
    branch targets, the shared-consumed LRF bypass flag, and the
    live-before/live-after sets as bitmasks over register ids.  Only
    registers the kernel reads or writes get ids: liveness masks are
    consulted exclusively for cache-resident registers, and residency
    only ever holds written registers.
    """

    __slots__ = (
        "words",
        "read_items",
        "write_id",
        "write_words",
        "shared",
        "long_latency",
        "shared_consumed",
        "backward_branch",
        "live_before_masks",
        "live_after_masks",
    )

    def __init__(self, kernel: Kernel) -> None:
        liveness, shared_positions = kernel_analyses(kernel)
        table = operand_table(kernel)
        reg_ids: Dict = {}
        self.words: List[int] = []

        def rid(reg) -> int:
            index = reg_ids.get(reg)
            if index is None:
                index = len(reg_ids)
                reg_ids[reg] = index
                self.words.append(reg.num_words)
            return index

        num_positions = len(table.shared)
        self.read_items: List[Tuple[Tuple[int, int], ...]] = []
        self.write_id: List[int] = []
        for position in range(num_positions):
            self.read_items.append(
                tuple(
                    (rid(reg), reg.num_words)
                    for reg in table.read_regs[position]
                )
            )
            written = table.write_reg[position]
            self.write_id.append(-1 if written is None else rid(written))
        self.write_words = table.write_words
        self.shared = table.shared
        self.long_latency = table.long_latency
        self.backward_branch = table.backward_branch
        self.shared_consumed = [
            position in shared_positions
            for position in range(num_positions)
        ]

        def mask(regs) -> int:
            result = 0
            for reg in regs:
                index = reg_ids.get(reg)
                if index is not None:
                    result |= 1 << index
            return result

        self.live_before_masks = [
            mask(liveness.before_position(position))
            for position in range(num_positions)
        ]
        self.live_after_masks = [
            mask(liveness.after_position(position))
            for position in range(num_positions)
        ]


def hardware_static_table(kernel: Kernel) -> HardwareStaticTable:
    """The kernel's hardware walk table (cached on the instance)."""
    cached = kernel.__dict__.get("_hw_static_table")
    if cached is None:
        cached = HardwareStaticTable(kernel)
        kernel.__dict__["_hw_static_table"] = cached
    return cached


def hardware_event_program(
    compiled_trace: CompiledTrace, table: HardwareStaticTable
) -> List[Tuple]:
    """Lower one unique trace to its scheme-independent event program.

    Resolves everything the hardware walks share across schemes — per
    event: datapath class, read (id, words) pairs, the deschedule
    flush mask (None when the two-level scheduler keeps the warp
    scheduled), the backward-branch flush mask (None unless a backward
    branch was taken), the written id (-1 when nothing is written:
    no destination or guard squash), its width and latency class, and
    the live-after mask for eviction write-back decisions.

    Deschedule points replicate
    :class:`repro.sim.accounting.HardwareAccounting`: dependence is
    checked against the *static* written register even when the guard
    fails, while a result joins the pending set only when the guard
    passed and the operation is long-latency.  Cached per trace.
    """
    cached = compiled_trace._hw_program
    if cached is not None:
        return cached

    read_items = table.read_items
    write_ids = table.write_id
    program: List[Tuple] = []
    pending = 0
    for position, guard, branch in zip(
        compiled_trace.positions,
        compiled_trace.guards,
        compiled_trace.branches,
    ):
        reads = read_items[position]
        static_write = write_ids[position]
        desched = False
        if pending:
            if any(pending >> rid & 1 for rid, _ in reads) or (
                static_write >= 0 and pending >> static_write & 1
            ):
                desched = True
                pending = 0
        long_latency = table.long_latency[position]
        write_id = static_write if guard else -1
        if write_id >= 0 and long_latency:
            pending |= 1 << write_id
        backward = branch and table.backward_branch[position]
        live_after = table.live_after_masks[position]
        program.append(
            (
                int(table.shared[position]),
                reads,
                table.live_before_masks[position] if desched else None,
                live_after if backward else None,
                write_id,
                table.write_words[position],
                long_latency,
                live_after,
                table.shared_consumed[position],
            )
        )
    compiled_trace._hw_program = program
    return program


def hardware_counters(
    compiled: CompiledTraceSet, schemes: List[Scheme]
) -> Dict[Scheme, AccessCounters]:
    """Account every hardware scheme in one pass per unique trace.

    Each unique trace's event program is built (or fetched) once and
    replayed through the columnar cache walk of every requested scheme;
    per-trace slot vectors are scaled by multiplicity into per-scheme
    accumulators.  All schemes must be hardware kinds.
    """
    for scheme in schemes:
        if not scheme.kind.is_hardware:
            raise ValueError(f"{scheme.name} is not a hardware scheme")
    table = hardware_static_table(compiled.kernel)
    num_slots = len(SLOT_INDEX)
    totals: Dict[Scheme, List[int]] = {
        scheme: [0] * num_slots for scheme in schemes
    }
    for compiled_trace in compiled.unique:
        program = hardware_event_program(compiled_trace, table)
        multiplicity = compiled_trace.multiplicity
        for scheme in schemes:
            if scheme.kind is SchemeKind.HW_TWO_LEVEL:
                slots = columnar_rfc_walk(
                    program,
                    table.words,
                    scheme.entries_per_thread,
                    flush_on_backward_branch=(
                        scheme.flush_on_backward_branch
                    ),
                )
            else:
                slots = columnar_three_level_walk(
                    program,
                    table.words,
                    scheme.entries_per_thread,
                    flush_on_backward_branch=(
                        scheme.flush_on_backward_branch
                    ),
                )
            accumulator = totals[scheme]
            for index in range(num_slots):
                accumulator[index] += slots[index] * multiplicity
    return {
        scheme: counters_from_slots(slots)
        for scheme, slots in totals.items()
    }

"""Simulation parameters (Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import LatencyClass


@dataclass(frozen=True)
class SimParams:
    """Single-SM trace simulation parameters (Table 2)."""

    execution_width: int = 32          # SIMT lanes
    threads_per_warp: int = 32
    num_warps: int = 32                # machine-resident warps per SM
    register_file_kb: int = 128
    register_bank_kb: int = 4
    shared_memory_kb: int = 32
    shared_memory_bw_bytes: int = 32   # bytes/cycle
    dram_bw_bytes: int = 32            # bytes/cycle
    alu_latency: int = 8
    sfu_latency: int = 20
    shared_memory_latency: int = 20
    texture_latency: int = 400
    dram_latency: int = 400
    #: Active warps under the two-level scheduler (Section 6: 8 active
    #: warps suffice for full performance).
    active_warps: int = 8

    def latency_of(self, latency_class: LatencyClass) -> int:
        """Cycles until a result of the given class is ready."""
        return {
            LatencyClass.ALU: self.alu_latency,
            LatencyClass.SFU: self.sfu_latency,
            LatencyClass.SHARED_MEM: self.shared_memory_latency,
            LatencyClass.TEXTURE: self.texture_latency,
            LatencyClass.DRAM: self.dram_latency,
        }[latency_class]

    @property
    def shared_unit_issue_cycles(self) -> int:
        """Cycles a shared unit is occupied per warp instruction.

        The shared units (SFU/MEM/TEX) are one per 4-lane cluster
        (Figure 1c): a 32-thread warp instruction occupies them for
        32/8 = 4 cycles, which also matches 128 bytes moved at 32
        bytes/cycle for memory operations.
        """
        return self.threads_per_warp // 8


DEFAULT_PARAMS = SimParams()

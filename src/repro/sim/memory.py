"""Functional memory model for the kernel executor.

The executor needs concrete values so control flow resolves; the
*contents* are otherwise irrelevant to the register-file study.  Loads
from unwritten addresses return a deterministic pseudo-random value
derived from the address and a seed, so traces are reproducible without
materialising input arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

Number = Union[int, float]


def _mix(value: int) -> int:
    """A small deterministic 64-bit mixer (splitmix64 finaliser)."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & (
        0xFFFFFFFFFFFFFFFF
    )
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & (
        0xFFFFFFFFFFFFFFFF
    )
    return value ^ (value >> 31)


@dataclass
class Memory:
    """Sparse global + shared memory with deterministic default values."""

    seed: int = 0
    global_mem: Dict[int, Number] = field(default_factory=dict)
    shared_mem: Dict[int, Number] = field(default_factory=dict)

    def _default(self, address: int, space_salt: int) -> Number:
        mixed = _mix((int(address) << 2) ^ self.seed ^ space_salt)
        # Small positive ints keep arithmetic well behaved in kernels
        # that use loaded values as counters or offsets.
        return mixed % 251

    def load_global(self, address: int) -> Number:
        return self.global_mem.get(
            int(address), self._default(int(address), 0x0)
        )

    def store_global(self, address: int, value: Number) -> None:
        self.global_mem[int(address)] = value

    def load_shared(self, address: int) -> Number:
        return self.shared_mem.get(
            int(address), self._default(int(address), 0x5A5A)
        )

    def store_shared(self, address: int, value: Number) -> None:
        self.shared_mem[int(address)] = value

    def texture_fetch(self, coordinate: Number) -> Number:
        return _mix(int(coordinate) ^ self.seed ^ 0x7E57) % 1021

"""SIMT execution with divergence: per-thread state, active masks, and
an immediate-post-dominator reconvergence stack (Section 2).

The scalar executor (``repro.sim.executor``) runs a warp as one thread —
adequate for the paper's register-file accounting, whose costs are
warp-level.  This module implements the real SIMT model: each of the
warp's threads has its own register state; a branch whose outcome
differs across active lanes splits the warp, the taken side executes
first, and the sides reconverge at the branch block's immediate
post-dominator.  Same-target entries at the top of the reconvergence
stack are merged, so divergent loop exits accumulate into one pending
mask.

The emitted :class:`TraceEvent` stream carries per-instruction active
masks and feeds the same accounting drivers as uniform traces (register
file banks are accessed for the whole warp regardless of the mask, as
in the paper's energy model).

Functional contract (tested property): for kernels whose lanes do not
communicate, SIMT execution with reconvergence produces exactly the
per-thread results of running every lane alone through the scalar
executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..analysis.cfg import ControlFlowGraph
from ..analysis.postdom import PostDominatorTree
from ..ir.instructions import Immediate, Instruction, Opcode
from ..ir.kernel import InstructionRef, Kernel
from ..ir.registers import Register
from .executor import ExecutionError, TraceEvent, _BINARY_OPS, _UNARY_OPS
from .memory import Memory, Number


def full_mask(num_threads: int) -> int:
    return (1 << num_threads) - 1


@dataclass
class _StackEntry:
    """A pending execution path: run ``mask`` lanes from ``block`` and
    reconverge (pop) upon reaching ``reconverge_block``."""

    reconverge_block: Optional[int]
    mask: int
    block: int
    instr_index: int


@dataclass
class DivergentWarpInput:
    """Initial state for a divergent warp: per-thread live-in values."""

    thread_values: List[Dict[Register, Number]]
    memory: Optional[Memory] = None
    max_instructions: int = 200_000


class DivergentWarpExecutor:
    """Interprets one kernel for one warp with SIMT divergence."""

    def __init__(
        self, kernel: Kernel, warp_input: DivergentWarpInput
    ) -> None:
        kernel.validate()
        if not warp_input.thread_values:
            raise ValueError("need at least one thread")
        self.kernel = kernel
        self.num_threads = len(warp_input.thread_values)
        self.memory = warp_input.memory or Memory()
        self.max_instructions = warp_input.max_instructions
        cfg = ControlFlowGraph(kernel)
        self._postdom = PostDominatorTree(cfg)
        #: Per-thread architectural state.
        self.registers: List[Dict[Register, Number]] = []
        self.predicates: List[Dict[Register, bool]] = []
        for values in warp_input.thread_values:
            regs = dict(values)
            for reg in kernel.live_in:
                regs.setdefault(reg, 0)
            self.registers.append(regs)
            self.predicates.append({})
        self._refs: Dict[Tuple[int, int], InstructionRef] = {
            (ref.block_index, ref.instr_index): ref
            for ref, _ in kernel.instructions()
        }

    # -- per-lane access -------------------------------------------------------

    def _read(self, lane: int, operand) -> Number:
        if isinstance(operand, Immediate):
            return operand.value
        if operand.is_pred:
            return 1 if self.predicates[lane].get(operand, False) else 0
        try:
            return self.registers[lane][operand]
        except KeyError:
            raise ExecutionError(
                f"lane {lane}: read of uninitialised register {operand}"
            ) from None

    def _write(self, lane: int, reg: Register, value: Number) -> None:
        if reg.is_pred:
            self.predicates[lane][reg] = bool(value)
        else:
            self.registers[lane][reg] = value

    def _guard_mask(self, instruction: Instruction, mask: int) -> int:
        if instruction.guard is None:
            return mask
        result = 0
        for lane in self._lanes(mask):
            value = self.predicates[lane].get(instruction.guard, False)
            if value == instruction.guard_sense:
                result |= 1 << lane
        return result

    def _lanes(self, mask: int) -> Iterator[int]:
        lane = 0
        while mask:
            if mask & 1:
                yield lane
            mask >>= 1
            lane += 1

    # -- main loop --------------------------------------------------------------

    def run(self) -> Iterator[TraceEvent]:
        kernel = self.kernel
        stack: List[_StackEntry] = []
        block = 0
        instr_index = 0
        mask = full_mask(self.num_threads)
        executed = 0

        while True:
            if executed >= self.max_instructions:
                raise ExecutionError(
                    f"{kernel.name}: exceeded {self.max_instructions} "
                    "dynamic instructions"
                )
            # Reconvergence: the current point is the top entry's
            # reconvergence block entry.
            while (
                stack
                and instr_index == 0
                and stack[-1].reconverge_block == block
            ):
                entry = stack.pop()
                if entry.block == block and entry.instr_index == 0:
                    # The pending path starts exactly here: merge.
                    mask |= entry.mask
                else:
                    # Run the pending path first; re-pend the current.
                    stack.append(
                        _StackEntry(
                            entry.reconverge_block, mask, block, 0
                        )
                    )
                    mask = entry.mask
                    block = entry.block
                    instr_index = entry.instr_index
            instruction = kernel.blocks[block].instructions[instr_index]
            ref = self._refs[(block, instr_index)]
            executed += 1
            active = self._guard_mask(instruction, mask)
            opcode = instruction.opcode

            if opcode.is_exit:
                yield TraceEvent(
                    ref, instruction, active != 0, active_mask=mask,
                    exec_mask=active,
                )
                exited = active
                remaining = mask & ~exited
                if remaining:
                    block, instr_index = self._advance(block, instr_index)
                    mask = remaining
                    continue
                if stack:
                    entry = stack.pop()
                    mask = entry.mask
                    block = entry.block
                    instr_index = entry.instr_index
                    continue
                return

            if opcode is Opcode.BRA:
                taken = active
                fall = mask & ~active
                yield TraceEvent(
                    ref, instruction, active != 0,
                    branch_taken=taken != 0, active_mask=mask,
                    exec_mask=active,
                )
                target = kernel.block_index(instruction.target)
                if taken and fall:
                    reconverge = self._postdom.immediate_post_dominator(
                        block
                    )
                    next_block, next_index = self._advance_block(
                        block, instr_index
                    )
                    self._push_merged(
                        stack, reconverge, fall, next_block, next_index
                    )
                    block, instr_index, mask = target, 0, taken
                elif taken:
                    block, instr_index, mask = target, 0, taken
                else:
                    block, instr_index = self._advance(block, instr_index)
                continue

            if active:
                self._execute(instruction, active)
            yield TraceEvent(
                ref, instruction, active != 0, active_mask=mask,
                exec_mask=active,
            )
            block, instr_index = self._advance(block, instr_index)

    def _push_merged(
        self,
        stack: List[_StackEntry],
        reconverge: Optional[int],
        mask: int,
        block: int,
        instr_index: int,
    ) -> None:
        """Push a pending path, merging with an identical TOS entry
        (divergent loop exits accumulate into one mask)."""
        if (
            stack
            and stack[-1].reconverge_block == reconverge
            and stack[-1].block == block
            and stack[-1].instr_index == instr_index
        ):
            stack[-1].mask |= mask
            return
        stack.append(_StackEntry(reconverge, mask, block, instr_index))

    def _advance(self, block: int, instr_index: int) -> Tuple[int, int]:
        if instr_index + 1 < len(self.kernel.blocks[block].instructions):
            return block, instr_index + 1
        return self._advance_block(block, instr_index)

    def _advance_block(
        self, block: int, instr_index: int
    ) -> Tuple[int, int]:
        next_block = block + 1
        if next_block >= len(self.kernel.blocks):
            raise ExecutionError(
                f"{self.kernel.name}: fell off the end of the kernel"
            )
        return next_block, 0

    # -- instruction semantics ---------------------------------------------

    def _execute(self, instruction: Instruction, active: int) -> None:
        opcode = instruction.opcode
        for lane in self._lanes(active):
            srcs = [self._read(lane, s) for s in instruction.srcs]
            dst = instruction.dst
            if opcode in _BINARY_OPS:
                self._write(lane, dst, _BINARY_OPS[opcode](srcs[0], srcs[1]))
            elif opcode in (Opcode.IMAD, Opcode.FFMA):
                self._write(lane, dst, srcs[0] * srcs[1] + srcs[2])
            elif opcode in (Opcode.MOV, Opcode.CVT):
                self._write(lane, dst, srcs[0])
            elif opcode is Opcode.SELP:
                self._write(lane, dst, srcs[0] if srcs[2] else srcs[1])
            elif opcode is Opcode.SETP:
                self._write(lane, dst, 1 if srcs[0] < srcs[1] else 0)
            elif opcode in _UNARY_OPS:
                self._write(lane, dst, _UNARY_OPS[opcode](srcs[0]))
            elif opcode is Opcode.LDG:
                self._write(lane, dst, self.memory.load_global(srcs[0]))
            elif opcode is Opcode.LDS:
                self._write(lane, dst, self.memory.load_shared(srcs[0]))
            elif opcode is Opcode.STG:
                self.memory.store_global(srcs[0], srcs[1])
            elif opcode is Opcode.STS:
                self.memory.store_shared(srcs[0], srcs[1])
            elif opcode is Opcode.TEX:
                self._write(lane, dst, self.memory.texture_fetch(srcs[0]))
            else:  # pragma: no cover - exhaustive
                raise ExecutionError(f"no semantics for {opcode}")


def run_divergent_warp(
    kernel: Kernel, warp_input: DivergentWarpInput
) -> List[TraceEvent]:
    """Execute a divergent warp and materialise its trace."""
    return list(DivergentWarpExecutor(kernel, warp_input).run())

"""Per-lane dynamic verification of allocations under SIMT divergence.

The warp-level verifier (``repro.sim.verify``) shadow-executes uniform
traces.  Under divergence the same allocation must stay correct *per
lane*: a Figure 10(c) hammock instance writes its shared ORF entry from
whichever arm each lane takes, and the merge-point read must observe
each lane's own value.  This verifier tracks one shadow hierarchy per
lane and checks exactly that.

ORF/LRF invalidation points are derived from the event stream at warp
granularity (descheduling affects the whole warp): entry into a
different strand, or a taken backward branch re-entering the same
strand.  Within a strand, divergent arm-switching revisits lower layout
positions without crossing an invalidation point — which is precisely
why per-lane checking is needed: the warp-level verifier's
position-monotonicity heuristic would misfire there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..ir.kernel import Kernel
from ..ir.registers import Register
from ..levels import Level
from ..strands.model import StrandPartition
from .executor import TraceEvent
from .verify import AllocationVerificationError


@dataclass
class DivergentVerificationStats:
    instructions: int = 0
    lane_reads_checked: int = 0
    invalidations: int = 0
    max_divergence: int = 0  # max simultaneous path splits observed


class DivergentAllocationVerifier:
    """Shadow-executes one divergent warp trace, per lane."""

    def __init__(
        self,
        kernel: Kernel,
        partition: StrandPartition,
        num_lanes: int,
    ) -> None:
        self.kernel = kernel
        self.partition = partition
        self.num_lanes = num_lanes
        self._next_token = 1
        self._arch: List[Dict[Register, int]] = [
            {} for _ in range(num_lanes)
        ]
        self._mrf: List[Dict[Register, int]] = [
            {} for _ in range(num_lanes)
        ]
        self._orf: List[Dict[int, int]] = [{} for _ in range(num_lanes)]
        self._lrf: List[Dict[int, int]] = [{} for _ in range(num_lanes)]
        self._current_strand: Optional[int] = None
        self.stats = DivergentVerificationStats()
        for reg in kernel.live_in:
            if not reg.is_gpr:
                continue
            for lane in range(num_lanes):
                token = self._token()
                self._arch[lane][reg] = token
                self._mrf[lane][reg] = token

    def _token(self) -> int:
        token = self._next_token
        self._next_token += 1
        return token

    def _lanes(self, mask: int) -> Iterable[int]:
        for lane in range(self.num_lanes):
            if mask & (1 << lane):
                yield lane

    # -- hooks -----------------------------------------------------------

    def process(self, event: TraceEvent) -> None:
        self.stats.instructions += 1
        self._maybe_invalidate(event)
        instruction = event.instruction
        mask = (
            event.active_mask
            if event.active_mask != -1
            else (1 << self.num_lanes) - 1
        )
        exec_mask = (
            event.exec_mask if event.exec_mask != -1 else mask
        )
        src_anns = instruction.src_anns
        fills = []
        for slot, reg in instruction.gpr_reads():
            annotation = src_anns[slot] if src_anns else None
            for lane in self._lanes(mask):
                self._check_lane_read(event, lane, slot, reg, annotation)
            if annotation is not None and (
                annotation.orf_write_entry is not None
            ):
                fills.append((annotation.orf_write_entry, reg))
        for entry, reg in fills:
            for lane in self._lanes(mask):
                self._orf[lane][entry] = self._arch[lane][reg]
        written = instruction.gpr_write()
        if written is not None:
            for lane in self._lanes(exec_mask):
                self._apply_lane_write(event, lane, written)

    def finish(self) -> None:
        """Nothing outstanding at end of trace."""

    # -- internals ---------------------------------------------------------

    def _maybe_invalidate(self, event: TraceEvent) -> None:
        strand = self.partition.strand_of_position.get(
            event.ref.position
        )
        if strand != self._current_strand:
            self._clear_upper_levels()
            self._current_strand = strand

    def _note_backward_branch(self, event: TraceEvent) -> None:
        target = event.instruction.target
        if target is None or not event.branch_taken:
            return
        if self.kernel.is_backward_edge(
            event.ref.block_index, self.kernel.block_index(target)
        ):
            self._clear_upper_levels()
            self._current_strand = None

    def _clear_upper_levels(self) -> None:
        for lane in range(self.num_lanes):
            self._orf[lane].clear()
            self._lrf[lane].clear()
        self.stats.invalidations += 1

    def _check_lane_read(self, event, lane, slot, reg, annotation) -> None:
        expected = self._arch[lane].get(reg)
        if expected is None:
            raise AllocationVerificationError(
                f"{self.kernel.name} @{event.ref.position} lane {lane}: "
                f"read of never-written register {reg}"
            )
        self.stats.lane_reads_checked += 1
        if annotation is None or annotation.level is Level.MRF:
            actual = self._mrf[lane].get(reg)
            where = f"MRF[{reg}]"
        elif annotation.level is Level.ORF:
            actual = self._orf[lane].get(annotation.orf_entry)
            where = f"ORF[{annotation.orf_entry}]"
        else:
            bank = (
                annotation.lrf_bank
                if annotation.lrf_bank is not None
                else 0
            )
            actual = self._lrf[lane].get(bank)
            where = f"LRF[{bank}]"
        if actual != expected:
            raise AllocationVerificationError(
                f"{self.kernel.name} @{event.ref.position} "
                f"({event.instruction}) lane {lane}: operand {slot} "
                f"({reg}) reads {where} holding token {actual}, "
                f"expected {expected}"
            )

    def _apply_lane_write(self, event, lane, written) -> None:
        token = self._token()
        self._arch[lane][written] = token
        annotation = event.instruction.dst_ann
        if annotation is None:
            self._mrf[lane][written] = token
            return
        for level in annotation.levels:
            if level is Level.MRF:
                self._mrf[lane][written] = token
            elif level is Level.ORF:
                self._orf[lane][annotation.orf_entry] = token
            else:
                bank = (
                    annotation.lrf_bank
                    if annotation.lrf_bank is not None
                    else 0
                )
                self._lrf[lane][bank] = token


def verify_divergent_trace(
    kernel: Kernel,
    partition: StrandPartition,
    events: Iterable[TraceEvent],
    num_lanes: int,
) -> DivergentVerificationStats:
    """Verify one divergent warp trace per lane; raises on any
    inconsistent read."""
    verifier = DivergentAllocationVerifier(kernel, partition, num_lanes)
    for event in events:
        verifier.process(event)
        verifier._note_backward_branch(event)
    verifier.finish()
    return verifier.stats

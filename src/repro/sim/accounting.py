"""Trace-driven access accounting.

Three accounting drivers consume a warp's dynamic instruction stream:

* :class:`BaselineAccounting` — the single-level register file every
  figure normalises against: all operands read from and written to the
  MRF.
* :class:`SoftwareAccounting` — the compile-time managed hierarchy:
  operand levels come from the allocator's static annotations.  Strand
  boundaries cost nothing at run time (the compiler already wrote
  live-out values to the MRF when they were produced).
* :class:`HardwareAccounting` — drives a hardware cache model
  (:class:`RegisterFileCache` or :class:`HardwareThreeLevel`), including
  the dynamic two-level-scheduler behaviour: a read of (or write to) a
  register with an outstanding long-latency result deschedules the warp
  and flushes the cache.

Guard-squashed instructions read their operands but write nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Protocol, Set

from ..analysis.cfg import ControlFlowGraph
from ..analysis.liveness import LivenessAnalysis
from ..analysis.reaching import ReachingDefinitions
from ..hierarchy.counters import AccessCounters
from ..ir.kernel import InstructionRef, Kernel
from ..ir.registers import Register
from ..levels import Level
from .executor import TraceEvent


class PointLiveness:
    """Precomputed live-before/live-after sets per static instruction."""

    def __init__(self, kernel: Kernel) -> None:
        cfg = ControlFlowGraph(kernel)
        analysis = LivenessAnalysis(kernel, cfg)
        self._before: Dict[int, FrozenSet[Register]] = {}
        self._after: Dict[int, FrozenSet[Register]] = {}
        for ref, _ in kernel.instructions():
            self._before[ref.position] = analysis.live_before(ref)
            self._after[ref.position] = analysis.live_after(ref)

    def before(self, ref: InstructionRef) -> FrozenSet[Register]:
        return self._before[ref.position]

    def after(self, ref: InstructionRef) -> FrozenSet[Register]:
        return self._after[ref.position]

    def before_position(self, position: int) -> FrozenSet[Register]:
        return self._before[position]

    def after_position(self, position: int) -> FrozenSet[Register]:
        return self._after[position]


def shared_consumed_positions(kernel: Kernel) -> FrozenSet[int]:
    """Positions of instructions whose result may feed a shared unit.

    Used by the hardware three-level model: such results bypass the LRF
    because the shared datapath cannot read it (Section 6.2).
    """
    cfg = ControlFlowGraph(kernel)
    reaching = ReachingDefinitions(kernel, cfg)
    positions: Set[int] = set()
    for definition in reaching.definitions:
        if definition.ref is None:
            continue
        for use in reaching.uses_of(definition.def_id):
            instruction = kernel.instruction_at(use.ref)
            if instruction.unit.is_shared:
                positions.add(definition.ref.position)
                break
    return frozenset(positions)


class BaselineAccounting:
    """Single-level register file: every access hits the MRF."""

    def __init__(self, counters: AccessCounters) -> None:
        self.counters = counters

    def process(self, event: TraceEvent) -> None:
        instruction = event.instruction
        shared = instruction.unit.is_shared
        for _, reg in instruction.gpr_reads():
            self.counters.add_read(Level.MRF, shared, reg.num_words)
        written = instruction.gpr_write()
        if written is not None and event.guard_passed:
            self.counters.add_write(Level.MRF, shared, written.num_words)

    def finish(self) -> None:
        """Nothing to flush in a single-level register file."""


class SoftwareAccounting:
    """Compile-time managed hierarchy: levels from static annotations.

    ``annotation_kernel`` decouples the annotations from the traced
    kernel: when given, every event's annotations are resolved by
    :class:`InstructionRef` against that (structurally identical,
    allocated) kernel instead of the instruction object embedded in the
    trace.  This lets one ``TraceSet`` be accounted under any number of
    allocation configs without the allocator ever touching the shared
    kernel the traces were executed from.
    """

    def __init__(
        self,
        counters: AccessCounters,
        annotation_kernel: Optional[Kernel] = None,
    ) -> None:
        self.counters = counters
        #: position -> annotated instruction (layout order == position).
        self._annotated: Optional[List] = None
        if annotation_kernel is not None:
            self._annotated = [
                instruction
                for _, instruction in annotation_kernel.instructions()
            ]

    def process(self, event: TraceEvent) -> None:
        instruction = event.instruction
        if self._annotated is not None:
            instruction = self._annotated[event.ref.position]
        shared = instruction.unit.is_shared
        src_anns = instruction.src_anns
        for slot, reg in instruction.gpr_reads():
            words = reg.num_words
            annotation = src_anns[slot] if src_anns else None
            if annotation is None:
                self.counters.add_read(Level.MRF, shared, words)
                continue
            self.counters.add_read(annotation.level, shared, words)
            if annotation.orf_write_entry is not None:
                # Read operand allocation: the MRF read is also written
                # into the ORF for later reads (Section 4.4).
                self.counters.add_write(Level.ORF, shared, words)
        written = instruction.gpr_write()
        if written is not None and event.guard_passed:
            words = written.num_words
            if instruction.dst_ann is None:
                self.counters.add_write(Level.MRF, shared, words)
            else:
                for level in instruction.dst_ann.levels:
                    self.counters.add_write(level, shared, words)

    def finish(self) -> None:
        """Strand endpoints cost nothing under software control."""


class _HardwareModel(Protocol):
    def read(self, reg: Register, shared_unit: bool) -> Level: ...
    def write(self, *args, **kwargs) -> Level: ...
    def on_deschedule(self, live: FrozenSet[Register]) -> None: ...
    def on_backward_branch(self, live: FrozenSet[Register]) -> None: ...
    def finish(self) -> None: ...


class HardwareAccounting:
    """Drives a hardware cache model over a warp trace.

    Maintains the warp's outstanding long-latency results; the first
    dependence on one triggers a deschedule (flush) and waits for *all*
    outstanding events, matching the two-level scheduler (Section 2.2).
    """

    def __init__(
        self,
        model: _HardwareModel,
        liveness: PointLiveness,
        kernel: Kernel,
        three_level: bool = False,
        operands=None,
    ) -> None:
        self.model = model
        self.liveness = liveness
        self.kernel = kernel
        self.three_level = three_level
        #: Optional repro.sim.compiled.StaticOperandTable: per-position
        #: operand facts, so the hot loop indexes lists instead of
        #: querying the instruction object per dynamic event.
        self._operands = operands
        self._pending: Set[Register] = set()

    def process(self, event: TraceEvent) -> None:
        if self._operands is not None:
            self._process_with_table(event)
            return
        instruction = event.instruction
        ref = event.ref
        shared = instruction.unit.is_shared

        if self._depends_on_pending(event):
            self.model.on_deschedule(self.liveness.before(ref))
            self._pending.clear()

        for _, reg in instruction.gpr_reads():
            self.model.read(reg, shared)

        if event.branch_taken and self._is_backward(event):
            self.model.on_backward_branch(self.liveness.after(ref))

        written = instruction.gpr_write()
        if written is not None and event.guard_passed:
            live_after = self.liveness.after(ref)
            if self.three_level:
                self.model.write(
                    written,
                    shared,
                    instruction.is_long_latency,
                    live_after,
                    position=ref.position,
                )
            else:
                self.model.write(
                    written, shared, instruction.is_long_latency, live_after
                )
            if instruction.is_long_latency:
                self._pending.add(written)

    def _process_with_table(self, event: TraceEvent) -> None:
        """`process` with operand queries served by the static table.

        Behaviourally identical to the instruction-object path — the
        table holds the same registers and flags, precomputed once per
        kernel — but each per-event lookup is a list index.
        """
        table = self._operands
        ref = event.ref
        position = ref.position
        reads = table.read_regs[position]
        written = table.write_reg[position]
        shared = table.shared[position]

        pending = self._pending
        if pending and (
            any(reg in pending for reg in reads)
            or (written is not None and written in pending)
        ):
            self.model.on_deschedule(self.liveness.before(ref))
            pending.clear()

        for reg in reads:
            self.model.read(reg, shared)

        if event.branch_taken and table.backward_branch[position]:
            self.model.on_backward_branch(self.liveness.after(ref))

        if written is not None and event.guard_passed:
            live_after = self.liveness.after(ref)
            long_latency = table.long_latency[position]
            if self.three_level:
                self.model.write(
                    written,
                    shared,
                    long_latency,
                    live_after,
                    position=position,
                )
            else:
                self.model.write(written, shared, long_latency, live_after)
            if long_latency:
                pending.add(written)

    def _depends_on_pending(self, event: TraceEvent) -> bool:
        if not self._pending:
            return False
        instruction = event.instruction
        for _, reg in instruction.gpr_reads():
            if reg in self._pending:
                return True
        written = instruction.gpr_write()
        return written is not None and written in self._pending

    def _is_backward(self, event: TraceEvent) -> bool:
        target = event.instruction.target
        if target is None:
            return False
        return self.kernel.is_backward_edge(
            event.ref.block_index, self.kernel.block_index(target)
        )

    def finish(self) -> None:
        self.model.finish()


def account_trace(driver, events: Iterable[TraceEvent]) -> None:
    """Run one accounting driver over a full warp trace."""
    for event in events:
        driver.process(event)
    driver.finish()

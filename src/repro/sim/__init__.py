"""Execution substrate: functional executor, trace accounting, and the
two-level warp scheduler timing model."""

from .accounting import (
    BaselineAccounting,
    HardwareAccounting,
    PointLiveness,
    SoftwareAccounting,
    account_trace,
    shared_consumed_positions,
)
from .divergence import (
    DivergentWarpExecutor,
    DivergentWarpInput,
    full_mask,
    run_divergent_warp,
)
from .executor import (
    ExecutionError,
    TraceEvent,
    WarpExecutor,
    WarpInput,
    run_warp,
)
from .memory import Memory
from .params import DEFAULT_PARAMS, SimParams
from .runner import (
    KernelEvaluation,
    build_divergent_traces,
    TraceSet,
    build_traces,
    evaluate_kernel,
    evaluate_traces,
    usage_histogram,
)
from .scheduler import ScheduleResult, active_warp_sweep, simulate_schedule
from .schemes import (
    BEST_HW_THREE_LEVEL,
    BEST_HW_TWO_LEVEL,
    BEST_SCHEME,
    BEST_SW_TWO_LEVEL,
    Scheme,
    SchemeKind,
)

__all__ = [
    "BEST_HW_THREE_LEVEL",
    "BEST_HW_TWO_LEVEL",
    "BEST_SCHEME",
    "BEST_SW_TWO_LEVEL",
    "BaselineAccounting",
    "DEFAULT_PARAMS",
    "DivergentWarpExecutor",
    "DivergentWarpInput",
    "ExecutionError",
    "HardwareAccounting",
    "KernelEvaluation",
    "Memory",
    "PointLiveness",
    "ScheduleResult",
    "Scheme",
    "SchemeKind",
    "SimParams",
    "SoftwareAccounting",
    "TraceEvent",
    "TraceSet",
    "WarpExecutor",
    "WarpInput",
    "account_trace",
    "active_warp_sweep",
    "build_divergent_traces",
    "build_traces",
    "evaluate_kernel",
    "evaluate_traces",
    "full_mask",
    "run_divergent_warp",
    "run_warp",
    "shared_consumed_positions",
    "simulate_schedule",
    "usage_histogram",
]

"""Operand-delivery timing: banked MRF fetch vs single-cycle ORF/LRF.

Figure 1(c)'s operand buffering and distribution logic fetches MRF
operands *over several cycles*; the baseline pipeline is built to
tolerate that latency (Section 4: "accessing operands from different
levels of the register file hierarchy does not impact performance"),
while the ORF/LRF's three read ports deliver operands in a single cycle
(Section 3.2).

This module extends the warp scheduler with that operand path:

* each MRF-sourced operand reserves a slot on its register's bank group
  (one read per group per cycle); conflicting reads serialise, adding
  collector latency;
* ORF/LRF-sourced operands (per the static annotations) are free;
* the added latency delays the *result*, not the issue slot — the
  collector is pipelined, matching the paper's design.

The headline check: with the two-level scheduler's 8 active warps, the
software hierarchy matches (or slightly beats, by shedding bank
conflicts) the single-level baseline's IPC — energy is saved "without
harming system performance".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.instructions import FunctionalUnit, Instruction
from ..ir.kernel import Kernel
from ..ir.registers import Register
from ..levels import Level
from .executor import TraceEvent
from .params import DEFAULT_PARAMS, SimParams


@dataclass(frozen=True)
class OperandTimingParams:
    """Operand-collector model parameters.

    ``bank_groups`` — independent MRF bank groups a warp operand fetch
    occupies for one cycle (the 32 physical banks serve a warp operand
    as 8 parallel 128-bit reads; grouping by register index captures
    the conflict structure at warp granularity).
    ``base_fetch_cycles`` — pipelined MRF collector depth charged to
    every MRF operand even without conflicts.
    """

    bank_groups: int = 4
    base_fetch_cycles: int = 2

    def group_of(self, reg: Register) -> int:
        return reg.index % self.bank_groups


class OperandCollector:
    """Tracks per-cycle bank-group occupancy; one read/group/cycle."""

    def __init__(self, params: OperandTimingParams) -> None:
        self.params = params
        self._busy: Dict[Tuple[int, int], bool] = {}
        self.conflicts = 0
        self.mrf_fetches = 0

    def reserve(self, group: int, earliest_cycle: int) -> int:
        """Earliest cycle >= ``earliest_cycle`` with the group free;
        reserves it and returns the fetch-complete cycle."""
        cycle = earliest_cycle
        while self._busy.get((cycle, group), False):
            cycle += 1
            self.conflicts += 1
        self._busy[(cycle, group)] = True
        self.mrf_fetches += 1
        return cycle

    def drain_before(self, cycle: int) -> None:
        """Forget reservations older than ``cycle`` (bounded memory)."""
        stale = [key for key in self._busy if key[0] < cycle]
        for key in stale:
            del self._busy[key]


def operand_fetch_delay(
    event: TraceEvent,
    cycle: int,
    collector: OperandCollector,
    instruction: Optional[Instruction] = None,
) -> int:
    """Cycles of operand-collector latency for one issued instruction.

    Reads the instruction's static annotations: unannotated operands
    (and the baseline's) come from the MRF; ORF/LRF operands bypass the
    collector entirely.  ``instruction`` overrides the trace-embedded
    instruction when annotations live on a separate (structurally
    identical) kernel.
    """
    if instruction is None:
        instruction = event.instruction
    reads = instruction.gpr_reads()
    if not reads:
        return 0
    params = collector.params
    src_anns = instruction.src_anns
    done = cycle
    any_mrf = False
    for slot, reg in reads:
        annotation = src_anns[slot] if src_anns else None
        level = annotation.level if annotation is not None else Level.MRF
        if level is not Level.MRF:
            continue
        any_mrf = True
        group = params.group_of(reg)
        done = max(done, collector.reserve(group, cycle))
    if not any_mrf:
        return 0
    return (done - cycle) + params.base_fetch_cycles


@dataclass
class OperandTimingResult:
    cycles: int
    instructions: int
    mrf_fetches: int
    bank_conflicts: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate_with_operand_timing(
    warp_traces: Sequence[Sequence[TraceEvent]],
    active_warps: int,
    params: SimParams = DEFAULT_PARAMS,
    operand_params: OperandTimingParams = OperandTimingParams(),
    max_cycles: int = 50_000_000,
    annotation_kernel: Optional[Kernel] = None,
) -> OperandTimingResult:
    """The two-level scheduler timing model with the operand path.

    Identical to :func:`repro.sim.scheduler.simulate_schedule` except
    that each issued instruction's result latency grows by its operand
    fetch delay (MRF operands only, per the static annotations).
    ``annotation_kernel`` supplies the operand-level annotations when
    they live on a clone of the traced kernel rather than on the trace
    events' own instructions.
    """
    from .scheduler import _WarpState, _issue_status, _next_event_cycle

    if active_warps < 1:
        raise ValueError("need at least one active warp")
    annotated: Optional[List[Instruction]] = None
    if annotation_kernel is not None:
        annotated = [
            instruction
            for _, instruction in annotation_kernel.instructions()
        ]
    warps = [_WarpState(trace) for trace in warp_traces]
    pending: List[int] = list(range(len(warps)))
    active: List[int] = []
    unit_busy: Dict[FunctionalUnit, int] = {
        unit: 0 for unit in FunctionalUnit
    }
    collector = OperandCollector(operand_params)

    cycle = 0
    issued = 0
    rotate = 0
    next_drain = 0

    def refill_active() -> None:
        index = 0
        while len(active) < active_warps and index < len(pending):
            warp_id = pending[index]
            warp = warps[warp_id]
            if warp.wakeup <= cycle and not warp.finished:
                pending.pop(index)
                warp.active = True
                active.append(warp_id)
            else:
                index += 1

    refill_active()
    while any(not warp.finished for warp in warps):
        if cycle >= max_cycles:
            raise RuntimeError("timing simulation exceeded max_cycles")
        refill_active()
        if cycle >= next_drain:
            collector.drain_before(cycle)
            next_drain = cycle + 512
        acted = False
        for offset in range(len(active)):
            warp_id = (
                active[(rotate + offset) % len(active)] if active else None
            )
            if warp_id is None:
                break
            warp = warps[warp_id]
            if warp.finished:
                warp.active = False
                active.remove(warp_id)
                refill_active()
                acted = True
                break
            event = warp.next_event()
            status = _issue_status(warp, event, cycle, unit_busy, params)
            if status == "issue":
                fetch = operand_fetch_delay(
                    event,
                    cycle,
                    collector,
                    instruction=(
                        annotated[event.ref.position]
                        if annotated is not None
                        else None
                    ),
                )
                _issue_with_fetch(
                    warp, event, cycle, fetch, unit_busy, params
                )
                issued += 1
                acted = True
                rotate = (rotate + offset + 1) % max(1, len(active))
                break
            if status == "deschedule":
                warp.wakeup = max(
                    warp.long_pending.values(), default=cycle
                )
                warp.long_pending.clear()
                warp.active = False
                active.remove(warp_id)
                pending.append(warp_id)
                refill_active()
                acted = True
                break
        if acted:
            cycle += 1
        else:
            # All-stall sweep: jump to the next scoreboard / shared-
            # unit / wakeup event (see scheduler._next_event_cycle).
            cycle = _next_event_cycle(
                cycle,
                warps,
                active,
                pending,
                unit_busy,
                room_in_active=len(active) < active_warps,
            )
    return OperandTimingResult(
        cycles=max(1, cycle),
        instructions=issued,
        mrf_fetches=collector.mrf_fetches,
        bank_conflicts=collector.conflicts,
    )


def _issue_with_fetch(
    warp,
    event: TraceEvent,
    cycle: int,
    fetch_delay: int,
    unit_busy: Dict[FunctionalUnit, int],
    params: SimParams,
) -> None:
    instruction = event.instruction
    written = instruction.gpr_write()
    if written is not None and event.guard_passed:
        latency = params.latency_of(instruction.opcode.latency_class)
        ready = cycle + fetch_delay + latency
        warp.reg_ready[written] = ready
        if instruction.is_long_latency:
            warp.long_pending[written] = ready
    unit = instruction.unit
    if unit.is_shared:
        unit_busy[unit] = cycle + params.shared_unit_issue_cycles
    warp.pc += 1

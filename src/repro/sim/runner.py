"""High-level evaluation driver: kernel + warps + scheme -> counts.

Mirrors the paper's methodology (Section 5.1): execute the workload,
record the number of accesses to each level of the register file over
the whole execution, and separately record the single-level baseline's
access counts for normalisation.

Traces are materialised once per workload (:class:`TraceSet`) and
re-accounted under every scheme, exactly like the authors' custom
Ocelot trace-analysis tool.  Re-accounting normally runs on the
*compiled* trace form (:mod:`repro.sim.compiled`): stateless schemes
walk a per-trace-set execution histogram in O(static instructions),
hardware schemes simulate each unique warp trace once and scale by
multiplicity, and the baseline counters and liveness analyses are
cached per trace set / kernel.  ``REPRO_COMPILED=0`` (or
``use_compiled=False``) forces the original scalar event walk, which
is kept bit-for-bit as the differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, MutableMapping, Optional, Sequence, Tuple

from ..alloc.allocator import (
    AllocationConfig,
    AllocationResult,
    allocate_kernel,
    allocate_kernels_batch,
)
from ..energy.model import EnergyModel
from ..analysis.usage import UsageHistogram, ValueUsageTracker
from ..hierarchy.counters import AccessCounters
from ..hierarchy.hw_lrf import HardwareThreeLevel
from ..hierarchy.rfc import RegisterFileCache
from ..ir.kernel import Kernel
from ..obs.tracer import TRACER
from .accounting import (
    BaselineAccounting,
    HardwareAccounting,
    PointLiveness,
    SoftwareAccounting,
    account_trace,
    shared_consumed_positions,
)
from .compiled import (
    CompiledTraceSet,
    baseline_counters,
    compile_traces,
    compiled_enabled,
    hardware_counters,
    software_counters,
)
from .executor import TraceEvent, WarpExecutor, WarpInput
from .schemes import Scheme, SchemeKind


@dataclass
class TraceSet:
    """Materialised dynamic traces for one kernel's warps."""

    kernel: Kernel
    warp_traces: List[List[TraceEvent]]

    @property
    def dynamic_instructions(self) -> int:
        cached = self.__dict__.get("_dynamic_instructions")
        if cached is None:
            cached = sum(len(trace) for trace in self.warp_traces)
            self.__dict__["_dynamic_instructions"] = cached
        return cached

    @property
    def unique_trace_count(self) -> int:
        """Number of distinct warp traces after content deduplication."""
        return self.compiled().unique_trace_count

    def compiled(self) -> CompiledTraceSet:
        """The columnar compiled form (built once, cached)."""
        return compile_traces(self)


def build_traces(
    kernel: Kernel, warp_inputs: Sequence[WarpInput]
) -> TraceSet:
    """Execute every warp and materialise its instruction stream."""
    with TRACER.span(
        "sim.trace", kernel=kernel.name, warps=len(warp_inputs)
    ):
        traces = [
            list(WarpExecutor(kernel, warp_input).run())
            for warp_input in warp_inputs
        ]
        return TraceSet(kernel, traces)


def build_divergent_traces(kernel: Kernel, warp_inputs) -> TraceSet:
    """Execute SIMT-divergent warps (per-thread inputs) and materialise
    their traces; the result feeds the same accounting as uniform
    traces (register file access costs are warp-level regardless of the
    active mask, Section 5.2)."""
    from .divergence import DivergentWarpExecutor

    traces = [
        list(DivergentWarpExecutor(kernel, warp_input).run())
        for warp_input in warp_inputs
    ]
    return TraceSet(kernel, traces)


@dataclass
class KernelEvaluation:
    """Access counts for one kernel under one scheme."""

    kernel_name: str
    scheme: Scheme
    counters: AccessCounters
    baseline: AccessCounters
    dynamic_instructions: int
    allocation: Optional[AllocationResult] = None


#: Memo for clone-based allocations, shared across scheme evaluations.
#: Keyed on (kernel content fingerprint, allocation config, energy
#: model); both value types are frozen dataclasses, so plain dict
#: lookup gives exact-match semantics.  The model component is
#: *normalized*: ``None`` and an explicit model equal to
#: ``config.energy_model()`` map to the same key, since they produce
#: identical allocations.
AllocationMemo = MutableMapping[
    Tuple[str, AllocationConfig, Optional[EnergyModel]], AllocationResult
]


def _memo_model(
    config: AllocationConfig, model: Optional[EnergyModel]
) -> Optional[EnergyModel]:
    """The memo key's model component, with the default folded to None.

    ``allocate_kernel(model=None)`` uses ``config.energy_model()``, so
    passing that model explicitly cannot change the result; keying both
    spellings identically stops them from duplicating allocations.
    """
    if model is None or model == config.energy_model():
        return None
    return model


def allocation_memo_key(
    kernel: Kernel,
    config: AllocationConfig,
    model: Optional[EnergyModel] = None,
) -> Tuple[str, AllocationConfig, Optional[EnergyModel]]:
    """The normalized memo key for one (kernel, config, model) triple."""
    return (
        kernel.content_fingerprint(),
        config,
        _memo_model(config, model),
    )


def allocate_for_traces(
    kernel: Kernel,
    config: AllocationConfig,
    model: Optional[EnergyModel] = None,
    memo: Optional[AllocationMemo] = None,
) -> AllocationResult:
    """Allocate a pristine clone of ``kernel`` — never the original.

    The traced kernel keeps whatever annotations it had; accounting
    resolves the clone's annotations by instruction position.  With a
    ``memo``, repeated evaluations of one kernel under one config reuse
    the allocation instead of re-running the levels pass.  Even on a
    memo miss the scheme-independent analysis phase comes from the
    shared cache (:func:`repro.alloc.analysis.kernel_analysis`), so a
    multi-config sweep pays for it once per kernel.
    """
    if memo is None:
        return allocate_kernel(kernel.clone(), config, model=model)
    key = allocation_memo_key(kernel, config, model)
    allocation = memo.get(key)
    if allocation is None:
        allocation = allocate_kernel(kernel.clone(), config, model=model)
        memo[key] = allocation
    return allocation


def allocate_for_traces_batch(
    kernel: Kernel,
    configs: Sequence[AllocationConfig],
    model: Optional[EnergyModel] = None,
    memo: Optional[AllocationMemo] = None,
) -> List[AllocationResult]:
    """Allocate one kernel under many configs, sharing the analysis.

    Results match ``[allocate_for_traces(kernel, c, model, memo) for c
    in configs]`` exactly; memo misses are funneled through
    :func:`repro.alloc.allocator.allocate_kernels_batch` so the
    scheme-independent phase runs once per persistence flavour instead
    of once per config.
    """
    if memo is None:
        return allocate_kernels_batch(kernel, list(configs), model=model)
    results: List[Optional[AllocationResult]] = [None] * len(configs)
    missing: List[int] = []
    queued: set = set()
    for index, config in enumerate(configs):
        key = allocation_memo_key(kernel, config, model)
        hit = memo.get(key)
        if hit is not None:
            results[index] = hit
        elif key not in queued:
            # Duplicate keys within one batch allocate once.
            queued.add(key)
            missing.append(index)
    if missing:
        fresh = allocate_kernels_batch(
            kernel, [configs[i] for i in missing], model=model
        )
        for index, allocation in zip(missing, fresh):
            memo[
                allocation_memo_key(kernel, configs[index], model)
            ] = allocation
    for index, config in enumerate(configs):
        if results[index] is None:
            results[index] = memo[
                allocation_memo_key(kernel, config, model)
            ]
    return results  # type: ignore[return-value]


def _cached_baseline(traces: TraceSet) -> AccessCounters:
    """The trace set's single-level counters, computed once.

    Every scheme evaluation needs the same baseline for normalisation;
    the compiled path derives it from the histogram and caches it on
    the trace set.  Callers get an independent copy.
    """
    cached = getattr(traces, "_baseline_counters", None)
    if cached is None:
        cached = baseline_counters(compile_traces(traces))
        traces._baseline_counters = cached
    return cached.copy()


def evaluate_traces(
    traces: TraceSet,
    scheme: Scheme,
    *,
    energy_model: Optional[EnergyModel] = None,
    allocation_memo: Optional[AllocationMemo] = None,
    use_compiled: Optional[bool] = None,
) -> KernelEvaluation:
    """Account a workload's traces under one scheme.

    Pure with respect to ``traces``: software schemes run the allocator
    on a clone of the kernel, so evaluating the same ``TraceSet`` under
    any sequence of schemes never leaks annotations between runs.

    ``use_compiled`` selects the accounting path explicitly; ``None``
    defers to the ``REPRO_COMPILED`` environment toggle (default on).
    Both paths produce identical counters — the scalar path is the
    oracle the compiled path is differentially tested against.
    """
    if use_compiled is None:
        use_compiled = compiled_enabled()
    kernel = traces.kernel

    allocation: Optional[AllocationResult] = None
    if scheme.kind.is_software:
        allocation = allocate_for_traces(
            kernel,
            scheme.allocation_config(),
            model=energy_model,
            memo=allocation_memo,
        )

    with TRACER.span(
        "sim.account",
        kernel=kernel.name,
        scheme=scheme.name,
        compiled=use_compiled,
    ):
        if use_compiled:
            counters = _account_compiled(traces, scheme, allocation)
            baseline = _cached_baseline(traces)
        else:
            counters, baseline = _account_scalar(traces, scheme, allocation)

    return KernelEvaluation(
        kernel_name=kernel.name,
        scheme=scheme,
        counters=counters,
        baseline=baseline,
        dynamic_instructions=traces.dynamic_instructions,
        allocation=allocation,
    )


def evaluate_traces_batch(
    traces: TraceSet,
    schemes: Sequence[Scheme],
    *,
    energy_model: Optional[EnergyModel] = None,
    allocation_memo: Optional[AllocationMemo] = None,
    use_compiled: Optional[bool] = None,
) -> List[KernelEvaluation]:
    """Account one workload under many schemes, sharing work.

    Semantically ``[evaluate_traces(traces, s) for s in schemes]`` —
    but all software schemes allocate through
    :func:`allocate_for_traces_batch` (one scheme-independent kernel
    analysis, one levels pass per config), and on the compiled path all
    hardware schemes are evaluated in a single pass per unique trace
    (:func:`repro.sim.compiled.hardware_counters`), sharing the
    per-event decode and deschedule resolution instead of walking the
    trace once per scheme.
    """
    if use_compiled is None:
        use_compiled = compiled_enabled()

    # Batch software allocations up front: memo misses run the levels
    # pass only, against one shared analysis.  A local memo keeps the
    # batched allocations reachable for the per-scheme evaluations even
    # when the caller did not pass one.
    software = [s for s in schemes if s.kind.is_software]
    if software:
        if allocation_memo is None:
            allocation_memo = {}
        allocate_for_traces_batch(
            traces.kernel,
            [s.allocation_config() for s in software],
            model=energy_model,
            memo=allocation_memo,
        )

    if not use_compiled:
        return [
            evaluate_traces(
                traces,
                scheme,
                energy_model=energy_model,
                allocation_memo=allocation_memo,
                use_compiled=False,
            )
            for scheme in schemes
        ]

    hardware = [s for s in schemes if s.kind.is_hardware]
    batched: dict = {}
    if hardware:
        with TRACER.span(
            "sim.account_batch",
            kernel=traces.kernel.name,
            schemes=len(hardware),
        ):
            batched = hardware_counters(compile_traces(traces), hardware)

    evaluations: List[KernelEvaluation] = []
    for scheme in schemes:
        if scheme.kind.is_hardware:
            evaluations.append(
                KernelEvaluation(
                    kernel_name=traces.kernel.name,
                    scheme=scheme,
                    counters=batched[scheme].copy(),
                    baseline=_cached_baseline(traces),
                    dynamic_instructions=traces.dynamic_instructions,
                )
            )
        else:
            evaluations.append(
                evaluate_traces(
                    traces,
                    scheme,
                    energy_model=energy_model,
                    allocation_memo=allocation_memo,
                    use_compiled=True,
                )
            )
    return evaluations


def _account_scalar(
    traces: TraceSet,
    scheme: Scheme,
    allocation: Optional[AllocationResult],
) -> Tuple[AccessCounters, AccessCounters]:
    """The oracle: interpret every dynamic event of every warp."""
    kernel = traces.kernel
    counters = AccessCounters()
    baseline = AccessCounters()

    liveness: Optional[PointLiveness] = None
    shared_positions = frozenset()
    if scheme.kind.is_hardware:
        liveness = PointLiveness(kernel)
        if scheme.kind is SchemeKind.HW_THREE_LEVEL:
            shared_positions = shared_consumed_positions(kernel)

    annotated = allocation.kernel if allocation is not None else None
    for trace in traces.warp_traces:
        driver = _make_driver(
            scheme, kernel, counters, liveness, shared_positions, annotated
        )
        account_trace(driver, trace)
        baseline_driver = BaselineAccounting(baseline)
        account_trace(baseline_driver, trace)
    return counters, baseline


def _account_compiled(
    traces: TraceSet,
    scheme: Scheme,
    allocation: Optional[AllocationResult],
) -> AccessCounters:
    """Account via the compiled trace form (see module docstring)."""
    compiled = compile_traces(traces)

    if scheme.kind is SchemeKind.BASELINE:
        return _cached_baseline(traces)
    if scheme.kind.is_software:
        assert allocation is not None
        return software_counters(compiled, allocation.kernel)

    # Hardware schemes: replay each unique trace's precompiled event
    # program through the columnar cache walk (a batch of one; see
    # evaluate_traces_batch for the shared-decode multi-scheme form).
    return hardware_counters(compiled, [scheme])[scheme]


def _make_driver(
    scheme: Scheme,
    kernel: Kernel,
    counters: AccessCounters,
    liveness: Optional[PointLiveness],
    shared_positions,
    annotation_kernel: Optional[Kernel] = None,
    operands=None,
):
    if scheme.kind is SchemeKind.BASELINE:
        return BaselineAccounting(counters)
    if scheme.kind.is_software:
        return SoftwareAccounting(counters, annotation_kernel)
    if scheme.kind is SchemeKind.HW_TWO_LEVEL:
        model = RegisterFileCache(
            scheme.entries_per_thread,
            counters,
            flush_on_backward_branch=scheme.flush_on_backward_branch,
        )
        return HardwareAccounting(model, liveness, kernel, operands=operands)
    if scheme.kind is SchemeKind.HW_THREE_LEVEL:
        model = HardwareThreeLevel(
            scheme.entries_per_thread,
            counters,
            shared_positions,
            flush_on_backward_branch=scheme.flush_on_backward_branch,
        )
        return HardwareAccounting(
            model, liveness, kernel, three_level=True, operands=operands
        )
    raise ValueError(f"unknown scheme kind {scheme.kind}")


def evaluate_kernel(
    kernel: Kernel,
    warp_inputs: Sequence[WarpInput],
    scheme: Scheme,
) -> KernelEvaluation:
    """Convenience wrapper: trace then account under one scheme."""
    return evaluate_traces(build_traces(kernel, warp_inputs), scheme)


def usage_histogram(traces: TraceSet) -> UsageHistogram:
    """Figure 2 statistics for one workload's traces.

    Observes each *unique* warp trace once and adds its tracker with
    the trace's multiplicity — identical totals to walking every warp
    (histogram buckets are sums), at deduplicated cost.
    """
    histogram = UsageHistogram()
    compiled = compile_traces(traces)
    layout = [
        instruction for _, instruction in traces.kernel.instructions()
    ]
    for compiled_trace in compiled.unique:
        tracker = ValueUsageTracker()
        for position, guard in zip(
            compiled_trace.positions, compiled_trace.guards
        ):
            tracker.observe(layout[position], bool(guard))
        tracker.finish()
        histogram.add_tracker(
            tracker, multiplicity=compiled_trace.multiplicity
        )
    return histogram

"""High-level evaluation driver: kernel + warps + scheme -> counts.

Mirrors the paper's methodology (Section 5.1): execute the workload,
record the number of accesses to each level of the register file over
the whole execution, and separately record the single-level baseline's
access counts for normalisation.

Traces are materialised once per workload (:class:`TraceSet`) and
re-accounted under every scheme, exactly like the authors' custom
Ocelot trace-analysis tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..alloc.allocator import AllocationResult, allocate_kernel
from ..analysis.usage import UsageHistogram, ValueUsageTracker
from ..hierarchy.counters import AccessCounters
from ..hierarchy.hw_lrf import HardwareThreeLevel
from ..hierarchy.rfc import RegisterFileCache
from ..ir.kernel import Kernel
from .accounting import (
    BaselineAccounting,
    HardwareAccounting,
    PointLiveness,
    SoftwareAccounting,
    account_trace,
    shared_consumed_positions,
)
from .executor import TraceEvent, WarpExecutor, WarpInput
from .schemes import Scheme, SchemeKind


@dataclass
class TraceSet:
    """Materialised dynamic traces for one kernel's warps."""

    kernel: Kernel
    warp_traces: List[List[TraceEvent]]

    @property
    def dynamic_instructions(self) -> int:
        return sum(len(trace) for trace in self.warp_traces)


def build_traces(
    kernel: Kernel, warp_inputs: Sequence[WarpInput]
) -> TraceSet:
    """Execute every warp and materialise its instruction stream."""
    traces = [
        list(WarpExecutor(kernel, warp_input).run())
        for warp_input in warp_inputs
    ]
    return TraceSet(kernel, traces)


def build_divergent_traces(kernel: Kernel, warp_inputs) -> TraceSet:
    """Execute SIMT-divergent warps (per-thread inputs) and materialise
    their traces; the result feeds the same accounting as uniform
    traces (register file access costs are warp-level regardless of the
    active mask, Section 5.2)."""
    from .divergence import DivergentWarpExecutor

    traces = [
        list(DivergentWarpExecutor(kernel, warp_input).run())
        for warp_input in warp_inputs
    ]
    return TraceSet(kernel, traces)


@dataclass
class KernelEvaluation:
    """Access counts for one kernel under one scheme."""

    kernel_name: str
    scheme: Scheme
    counters: AccessCounters
    baseline: AccessCounters
    dynamic_instructions: int
    allocation: Optional[AllocationResult] = None


def evaluate_traces(
    traces: TraceSet,
    scheme: Scheme,
) -> KernelEvaluation:
    """Account a workload's traces under one scheme.

    For software schemes this (re)runs the allocator on the kernel,
    annotating its instructions in place, before accounting.
    """
    kernel = traces.kernel
    counters = AccessCounters()
    baseline = AccessCounters()
    allocation: Optional[AllocationResult] = None

    if scheme.kind.is_software:
        allocation = allocate_kernel(kernel, scheme.allocation_config())

    liveness: Optional[PointLiveness] = None
    shared_positions = frozenset()
    if scheme.kind.is_hardware:
        liveness = PointLiveness(kernel)
        if scheme.kind is SchemeKind.HW_THREE_LEVEL:
            shared_positions = shared_consumed_positions(kernel)

    for trace in traces.warp_traces:
        driver = _make_driver(
            scheme, kernel, counters, liveness, shared_positions
        )
        account_trace(driver, trace)
        baseline_driver = BaselineAccounting(baseline)
        account_trace(baseline_driver, trace)

    return KernelEvaluation(
        kernel_name=kernel.name,
        scheme=scheme,
        counters=counters,
        baseline=baseline,
        dynamic_instructions=traces.dynamic_instructions,
        allocation=allocation,
    )


def _make_driver(
    scheme: Scheme,
    kernel: Kernel,
    counters: AccessCounters,
    liveness: Optional[PointLiveness],
    shared_positions,
):
    if scheme.kind is SchemeKind.BASELINE:
        return BaselineAccounting(counters)
    if scheme.kind.is_software:
        return SoftwareAccounting(counters)
    if scheme.kind is SchemeKind.HW_TWO_LEVEL:
        model = RegisterFileCache(
            scheme.entries_per_thread,
            counters,
            flush_on_backward_branch=scheme.flush_on_backward_branch,
        )
        return HardwareAccounting(model, liveness, kernel)
    if scheme.kind is SchemeKind.HW_THREE_LEVEL:
        model = HardwareThreeLevel(
            scheme.entries_per_thread,
            counters,
            shared_positions,
            flush_on_backward_branch=scheme.flush_on_backward_branch,
        )
        return HardwareAccounting(model, liveness, kernel, three_level=True)
    raise ValueError(f"unknown scheme kind {scheme.kind}")


def evaluate_kernel(
    kernel: Kernel,
    warp_inputs: Sequence[WarpInput],
    scheme: Scheme,
) -> KernelEvaluation:
    """Convenience wrapper: trace then account under one scheme."""
    return evaluate_traces(build_traces(kernel, warp_inputs), scheme)


def usage_histogram(traces: TraceSet) -> UsageHistogram:
    """Figure 2 statistics for one workload's traces."""
    histogram = UsageHistogram()
    for trace in traces.warp_traces:
        tracker = ValueUsageTracker()
        for event in trace:
            tracker.observe(event.instruction, event.guard_passed)
        tracker.finish()
        histogram.add_tracker(tracker)
    return histogram

"""High-level evaluation driver: kernel + warps + scheme -> counts.

Mirrors the paper's methodology (Section 5.1): execute the workload,
record the number of accesses to each level of the register file over
the whole execution, and separately record the single-level baseline's
access counts for normalisation.

Traces are materialised once per workload (:class:`TraceSet`) and
re-accounted under every scheme, exactly like the authors' custom
Ocelot trace-analysis tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, MutableMapping, Optional, Sequence, Tuple

from ..alloc.allocator import (
    AllocationConfig,
    AllocationResult,
    allocate_kernel,
)
from ..energy.model import EnergyModel
from ..analysis.usage import UsageHistogram, ValueUsageTracker
from ..hierarchy.counters import AccessCounters
from ..hierarchy.hw_lrf import HardwareThreeLevel
from ..hierarchy.rfc import RegisterFileCache
from ..ir.kernel import Kernel
from .accounting import (
    BaselineAccounting,
    HardwareAccounting,
    PointLiveness,
    SoftwareAccounting,
    account_trace,
    shared_consumed_positions,
)
from .executor import TraceEvent, WarpExecutor, WarpInput
from .schemes import Scheme, SchemeKind


@dataclass
class TraceSet:
    """Materialised dynamic traces for one kernel's warps."""

    kernel: Kernel
    warp_traces: List[List[TraceEvent]]

    @property
    def dynamic_instructions(self) -> int:
        return sum(len(trace) for trace in self.warp_traces)


def build_traces(
    kernel: Kernel, warp_inputs: Sequence[WarpInput]
) -> TraceSet:
    """Execute every warp and materialise its instruction stream."""
    traces = [
        list(WarpExecutor(kernel, warp_input).run())
        for warp_input in warp_inputs
    ]
    return TraceSet(kernel, traces)


def build_divergent_traces(kernel: Kernel, warp_inputs) -> TraceSet:
    """Execute SIMT-divergent warps (per-thread inputs) and materialise
    their traces; the result feeds the same accounting as uniform
    traces (register file access costs are warp-level regardless of the
    active mask, Section 5.2)."""
    from .divergence import DivergentWarpExecutor

    traces = [
        list(DivergentWarpExecutor(kernel, warp_input).run())
        for warp_input in warp_inputs
    ]
    return TraceSet(kernel, traces)


@dataclass
class KernelEvaluation:
    """Access counts for one kernel under one scheme."""

    kernel_name: str
    scheme: Scheme
    counters: AccessCounters
    baseline: AccessCounters
    dynamic_instructions: int
    allocation: Optional[AllocationResult] = None


#: Memo for clone-based allocations, shared across scheme evaluations.
#: Keyed on (kernel content fingerprint, allocation config, energy
#: model); both value types are frozen dataclasses, so plain dict
#: lookup gives exact-match semantics.
AllocationMemo = MutableMapping[
    Tuple[str, AllocationConfig, Optional[EnergyModel]], AllocationResult
]


def allocate_for_traces(
    kernel: Kernel,
    config: AllocationConfig,
    model: Optional[EnergyModel] = None,
    memo: Optional[AllocationMemo] = None,
) -> AllocationResult:
    """Allocate a pristine clone of ``kernel`` — never the original.

    The traced kernel keeps whatever annotations it had; accounting
    resolves the clone's annotations by instruction position.  With a
    ``memo``, repeated evaluations of one kernel under one config reuse
    the allocation instead of re-running the full analysis pipeline.
    """
    if memo is None:
        return allocate_kernel(kernel.clone(), config, model=model)
    key = (kernel.content_fingerprint(), config, model)
    allocation = memo.get(key)
    if allocation is None:
        allocation = allocate_kernel(kernel.clone(), config, model=model)
        memo[key] = allocation
    return allocation


def evaluate_traces(
    traces: TraceSet,
    scheme: Scheme,
    *,
    energy_model: Optional[EnergyModel] = None,
    allocation_memo: Optional[AllocationMemo] = None,
) -> KernelEvaluation:
    """Account a workload's traces under one scheme.

    Pure with respect to ``traces``: software schemes run the allocator
    on a clone of the kernel, so evaluating the same ``TraceSet`` under
    any sequence of schemes never leaks annotations between runs.
    """
    kernel = traces.kernel
    counters = AccessCounters()
    baseline = AccessCounters()
    allocation: Optional[AllocationResult] = None

    if scheme.kind.is_software:
        allocation = allocate_for_traces(
            kernel,
            scheme.allocation_config(),
            model=energy_model,
            memo=allocation_memo,
        )

    liveness: Optional[PointLiveness] = None
    shared_positions = frozenset()
    if scheme.kind.is_hardware:
        liveness = PointLiveness(kernel)
        if scheme.kind is SchemeKind.HW_THREE_LEVEL:
            shared_positions = shared_consumed_positions(kernel)

    annotated = allocation.kernel if allocation is not None else None
    for trace in traces.warp_traces:
        driver = _make_driver(
            scheme, kernel, counters, liveness, shared_positions, annotated
        )
        account_trace(driver, trace)
        baseline_driver = BaselineAccounting(baseline)
        account_trace(baseline_driver, trace)

    return KernelEvaluation(
        kernel_name=kernel.name,
        scheme=scheme,
        counters=counters,
        baseline=baseline,
        dynamic_instructions=traces.dynamic_instructions,
        allocation=allocation,
    )


def _make_driver(
    scheme: Scheme,
    kernel: Kernel,
    counters: AccessCounters,
    liveness: Optional[PointLiveness],
    shared_positions,
    annotation_kernel: Optional[Kernel] = None,
):
    if scheme.kind is SchemeKind.BASELINE:
        return BaselineAccounting(counters)
    if scheme.kind.is_software:
        return SoftwareAccounting(counters, annotation_kernel)
    if scheme.kind is SchemeKind.HW_TWO_LEVEL:
        model = RegisterFileCache(
            scheme.entries_per_thread,
            counters,
            flush_on_backward_branch=scheme.flush_on_backward_branch,
        )
        return HardwareAccounting(model, liveness, kernel)
    if scheme.kind is SchemeKind.HW_THREE_LEVEL:
        model = HardwareThreeLevel(
            scheme.entries_per_thread,
            counters,
            shared_positions,
            flush_on_backward_branch=scheme.flush_on_backward_branch,
        )
        return HardwareAccounting(model, liveness, kernel, three_level=True)
    raise ValueError(f"unknown scheme kind {scheme.kind}")


def evaluate_kernel(
    kernel: Kernel,
    warp_inputs: Sequence[WarpInput],
    scheme: Scheme,
) -> KernelEvaluation:
    """Convenience wrapper: trace then account under one scheme."""
    return evaluate_traces(build_traces(kernel, warp_inputs), scheme)


def usage_histogram(traces: TraceSet) -> UsageHistogram:
    """Figure 2 statistics for one workload's traces."""
    histogram = UsageHistogram()
    for trace in traces.warp_traces:
        tracker = ValueUsageTracker()
        for event in trace:
            tracker.observe(event.instruction, event.guard_passed)
        tracker.finish()
        histogram.add_tracker(tracker)
    return histogram

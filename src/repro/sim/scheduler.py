"""Cycle-level two-level warp scheduler timing model (Sections 2.2, 5.1).

Verifies the paper's performance claim: with a two-level scheduler and
8 active warps (out of 32 machine-resident), the SM suffers no
performance penalty relative to scheduling all warps, because the
active set hides short (ALU/shared-memory) latencies while descheduling
hides long (DRAM/texture) latencies.

The model issues at most one warp instruction per cycle (Table 2:
32-wide SIMT, in-order).  Shared units (SFU/MEM/TEX) are occupied for
32/8 = 4 cycles per warp instruction (one unit per 4-lane cluster).
A warp whose next instruction depends on an outstanding long-latency
result is descheduled: it leaves the active set and becomes eligible
again once all its outstanding long-latency operations complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..ir.instructions import FunctionalUnit
from ..ir.registers import Register
from .executor import TraceEvent
from .params import DEFAULT_PARAMS, SimParams


@dataclass
class _WarpState:
    trace: Sequence[TraceEvent]
    pc: int = 0
    #: Cycle at which each written register becomes ready.
    reg_ready: Dict[Register, int] = field(default_factory=dict)
    #: Registers whose outstanding producer is long-latency.
    long_pending: Dict[Register, int] = field(default_factory=dict)
    #: When descheduled, cycle at which the warp may re-activate.
    wakeup: int = 0
    active: bool = False

    @property
    def finished(self) -> bool:
        return self.pc >= len(self.trace)

    def next_event(self) -> TraceEvent:
        return self.trace[self.pc]


@dataclass
class ScheduleResult:
    """Outcome of one timing simulation."""

    cycles: int
    instructions: int
    active_warps: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate_schedule(
    warp_traces: Sequence[Sequence[TraceEvent]],
    active_warps: int,
    params: SimParams = DEFAULT_PARAMS,
    max_cycles: int = 50_000_000,
) -> ScheduleResult:
    """Simulate issuing the given warp traces with a bounded active set.

    ``active_warps >= len(warp_traces)`` reduces to the single-level
    scheduler (no warp is ever excluded from issue).
    """
    if active_warps < 1:
        raise ValueError("need at least one active warp")
    warps = [_WarpState(trace) for trace in warp_traces]
    pending: List[int] = list(range(len(warps)))
    active: List[int] = []
    unit_busy: Dict[FunctionalUnit, int] = {
        unit: 0 for unit in FunctionalUnit
    }

    cycle = 0
    issued = 0
    rotate = 0

    def refill_active() -> None:
        index = 0
        while len(active) < active_warps and index < len(pending):
            warp_id = pending[index]
            warp = warps[warp_id]
            if warp.wakeup <= cycle and not warp.finished:
                pending.pop(index)
                warp.active = True
                active.append(warp_id)
            else:
                index += 1

    refill_active()
    while any(not warp.finished for warp in warps):
        if cycle >= max_cycles:
            raise RuntimeError("timing simulation exceeded max_cycles")
        refill_active()
        acted = False
        for offset in range(len(active)):
            warp_id = active[(rotate + offset) % len(active)] if active else None
            if warp_id is None:
                break
            warp = warps[warp_id]
            if warp.finished:
                warp.active = False
                active.remove(warp_id)
                refill_active()
                acted = True
                break
            event = warp.next_event()
            status = _issue_status(warp, event, cycle, unit_busy, params)
            if status == "issue":
                _do_issue(warp, event, cycle, unit_busy, params)
                issued += 1
                acted = True
                rotate = (rotate + offset + 1) % max(1, len(active))
                break
            if status == "deschedule":
                # Two-level scheduler: swap the warp out until all of
                # its outstanding long-latency operations complete.
                warp.wakeup = max(
                    warp.long_pending.values(), default=cycle
                )
                warp.long_pending.clear()
                warp.active = False
                active.remove(warp_id)
                pending.append(warp_id)
                refill_active()
                acted = True
                break
            # "stall": try the next active warp.
        if acted:
            cycle += 1
        else:
            # Every active warp stalled and (if there is room) no
            # pending warp can wake this cycle: nothing can change
            # until the next scoreboard / shared-unit / wakeup event,
            # so jump straight to it instead of spinning cycle by
            # cycle.  State is untouched in between, making the jump
            # exact — cycle counts match the cycle-by-cycle walk.
            cycle = _next_event_cycle(
                cycle,
                warps,
                active,
                pending,
                unit_busy,
                room_in_active=len(active) < active_warps,
            )
    return ScheduleResult(
        cycles=max(1, cycle), instructions=issued, active_warps=active_warps
    )


def _next_event_cycle(
    cycle: int,
    warps: Sequence[_WarpState],
    active: Sequence[int],
    pending: Sequence[int],
    unit_busy: Dict[FunctionalUnit, int],
    room_in_active: bool,
) -> int:
    """First cycle after ``cycle`` at which anything can happen.

    Only valid after a full sweep in which every active warp stalled:
    scheduler state is then frozen until the earliest of (a) an active
    warp's blocking registers all ready and its shared unit free, or
    (b) — only when the active set has room — a pending warp's wakeup.
    A stalled warp cannot turn into a deschedule in between: a blocking
    register's ``long_pending`` marker would already have expired by
    the cycle the register becomes ready.
    """
    targets: List[int] = []
    for warp_id in active:
        warp = warps[warp_id]
        instruction = warp.next_event().instruction
        target = cycle + 1
        deps = [reg for _, reg in instruction.gpr_reads()]
        written = instruction.gpr_write()
        if written is not None:
            deps.append(written)
        for reg in deps:
            ready = warp.reg_ready.get(reg, 0)
            if ready > cycle:
                target = max(target, ready)
        unit = instruction.unit
        if unit.is_shared and unit_busy[unit] > cycle:
            target = max(target, unit_busy[unit])
        targets.append(target)
    if room_in_active:
        for warp_id in pending:
            warp = warps[warp_id]
            if not warp.finished and warp.wakeup > cycle:
                targets.append(warp.wakeup)
    if not targets:
        return cycle + 1
    return max(cycle + 1, min(targets))


def _issue_status(
    warp: _WarpState,
    event: TraceEvent,
    cycle: int,
    unit_busy: Dict[FunctionalUnit, int],
    params: SimParams,
) -> str:
    """'issue', 'stall' (short dependence / busy unit), or 'deschedule'."""
    instruction = event.instruction
    # Expire completed long-latency markers.
    for reg in [r for r, c in warp.long_pending.items() if c <= cycle]:
        del warp.long_pending[reg]

    deps = [reg for _, reg in instruction.gpr_reads()]
    written = instruction.gpr_write()
    if written is not None:
        deps.append(written)
    for reg in deps:
        ready = warp.reg_ready.get(reg, 0)
        if ready > cycle:
            if reg in warp.long_pending:
                return "deschedule"
            return "stall"
    unit = instruction.unit
    if unit.is_shared and unit_busy[unit] > cycle:
        return "stall"
    return "issue"


def _do_issue(
    warp: _WarpState,
    event: TraceEvent,
    cycle: int,
    unit_busy: Dict[FunctionalUnit, int],
    params: SimParams,
) -> None:
    instruction = event.instruction
    written = instruction.gpr_write()
    if written is not None and event.guard_passed:
        latency = params.latency_of(instruction.opcode.latency_class)
        ready = cycle + latency
        warp.reg_ready[written] = ready
        if instruction.is_long_latency:
            warp.long_pending[written] = ready
    unit = instruction.unit
    if unit.is_shared:
        unit_busy[unit] = cycle + params.shared_unit_issue_cycles
    warp.pc += 1


def active_warp_sweep(
    warp_traces: Sequence[Sequence[TraceEvent]],
    active_counts: Sequence[int],
    params: SimParams = DEFAULT_PARAMS,
) -> Dict[int, ScheduleResult]:
    """IPC for several active-set sizes (the Section 6 scheduler study)."""
    return {
        count: simulate_schedule(warp_traces, count, params)
        for count in active_counts
    }

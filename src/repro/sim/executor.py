"""Functional warp-level executor.

Executes a kernel for one warp with concrete live-in values and a
functional memory, producing the warp's dynamic instruction stream
(:class:`TraceEvent` per executed instruction).  The stream drives
access accounting, the hardware cache models, usage statistics, and the
timing simulator.

Execution is warp-uniform: branches are taken by the whole warp (the
paper's register-file results do not depend on divergence, and its own
trace methodology reconstructs warp-level control-flow paths).
Predicated non-branch instructions whose guard fails still read their
operands (the operand fetch happens before the predicate squashes the
lanes) but do not write their result.

Semantics notes:

* ``SETP P, a, b`` sets ``P = (a < b)``; ``@P``/``@!P`` guards and
  ``SELP`` consume predicates.
* ``CVT`` is a value-preserving copy (width conversion).
* SFU operations use safe math (e.g. ``RCP 0`` yields a large finite
  number) so synthetic workloads never fault.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.instructions import Immediate, Instruction, Opcode
from ..ir.kernel import InstructionRef, Kernel
from ..ir.registers import Register
from .memory import Memory, Number


class ExecutionError(RuntimeError):
    """Raised on malformed execution (unset register, runaway loop)."""


@dataclass(frozen=True)
class TraceEvent:
    """One dynamically executed (issued) warp instruction."""

    ref: InstructionRef
    instruction: Instruction
    #: False when a guard squashed the instruction's write (for every
    #: lane, in divergent execution).
    guard_passed: bool
    #: True when a BRA was taken (by at least one lane).
    branch_taken: bool = False
    #: Bitmask of lanes executing the instruction; -1 means uniform
    #: execution (every lane active), the scalar executor's output.
    active_mask: int = -1
    #: Bitmask of lanes whose guard passed (the lanes that write /
    #: take the branch); -1 mirrors ``guard_passed`` for uniform
    #: execution.
    exec_mask: int = -1

    def columns(self) -> Tuple[int, bool, bool, int, int]:
        """The event's canonical columnar image.

        (static position, guard_passed, branch_taken, active_mask,
        exec_mask) — the only parts of an event that accounting,
        content hashing, and cache serialization depend on; the
        instruction itself is recoverable from the kernel by position.
        """
        return (
            self.ref.position,
            self.guard_passed,
            self.branch_taken,
            self.active_mask,
            self.exec_mask,
        )


@dataclass
class WarpInput:
    """Initial state for one warp's execution."""

    live_in_values: Dict[Register, Number]
    memory: Optional[Memory] = None
    #: Safety cap on dynamic instructions.
    max_instructions: int = 200_000


_BIG = 1.0e9


def _safe_div(x: Number) -> Number:
    return 1.0 / x if x else _BIG


class WarpExecutor:
    """Interprets one kernel for one warp."""

    def __init__(self, kernel: Kernel, warp_input: WarpInput) -> None:
        kernel.validate()
        self.kernel = kernel
        self.memory = warp_input.memory or Memory()
        self.max_instructions = warp_input.max_instructions
        self.registers: Dict[Register, Number] = dict(
            warp_input.live_in_values
        )
        for reg in kernel.live_in:
            self.registers.setdefault(reg, 0)
        self.predicates: Dict[Register, bool] = {}
        self._refs: Dict[Tuple[int, int], InstructionRef] = {
            (ref.block_index, ref.instr_index): ref
            for ref, _ in kernel.instructions()
        }

    # -- register access ------------------------------------------------------

    def _read(self, operand) -> Number:
        if isinstance(operand, Immediate):
            return operand.value
        if operand.is_pred:
            return 1 if self.predicates.get(operand, False) else 0
        try:
            return self.registers[operand]
        except KeyError:
            raise ExecutionError(
                f"read of uninitialised register {operand} in "
                f"{self.kernel.name}"
            ) from None

    def _write(self, reg: Register, value: Number) -> None:
        if reg.is_pred:
            self.predicates[reg] = bool(value)
        else:
            self.registers[reg] = value

    def _guard_passes(self, instruction: Instruction) -> bool:
        if instruction.guard is None:
            return True
        value = self.predicates.get(instruction.guard, False)
        return value == instruction.guard_sense

    # -- main loop -------------------------------------------------------------

    def run(self) -> Iterator[TraceEvent]:
        """Execute the kernel, yielding one event per issued instruction."""
        block_index = 0
        instr_index = 0
        executed = 0
        blocks = self.kernel.blocks

        while True:
            if executed >= self.max_instructions:
                raise ExecutionError(
                    f"{self.kernel.name}: exceeded "
                    f"{self.max_instructions} dynamic instructions"
                )
            block = blocks[block_index]
            instruction = block.instructions[instr_index]
            ref = self._refs[(block_index, instr_index)]
            executed += 1

            guard_passed = self._guard_passes(instruction)
            opcode = instruction.opcode

            if opcode.is_exit:
                yield TraceEvent(ref, instruction, guard_passed)
                if guard_passed:
                    return
                block_index, instr_index = self._advance(
                    block_index, instr_index
                )
                continue

            if opcode is Opcode.BRA:
                taken = guard_passed
                yield TraceEvent(
                    ref, instruction, guard_passed, branch_taken=taken
                )
                if taken:
                    block_index = self.kernel.block_index(
                        instruction.target
                    )
                    instr_index = 0
                else:
                    block_index, instr_index = self._advance(
                        block_index, instr_index
                    )
                continue

            if guard_passed:
                self._execute(instruction)
            yield TraceEvent(ref, instruction, guard_passed)
            block_index, instr_index = self._advance(block_index, instr_index)

    def _advance(
        self, block_index: int, instr_index: int
    ) -> Tuple[int, int]:
        block = self.kernel.blocks[block_index]
        if instr_index + 1 < len(block.instructions):
            return block_index, instr_index + 1
        if block_index + 1 >= len(self.kernel.blocks):
            raise ExecutionError(
                f"{self.kernel.name}: fell off the end of the kernel"
            )
        return block_index + 1, 0

    # -- instruction semantics ---------------------------------------------

    def _execute(self, instruction: Instruction) -> None:
        opcode = instruction.opcode
        srcs = [self._read(s) for s in instruction.srcs]
        dst = instruction.dst

        if opcode in _BINARY_OPS:
            self._write(dst, _BINARY_OPS[opcode](srcs[0], srcs[1]))
        elif opcode in (Opcode.IMAD, Opcode.FFMA):
            self._write(dst, srcs[0] * srcs[1] + srcs[2])
        elif opcode in (Opcode.MOV, Opcode.CVT):
            self._write(dst, srcs[0])
        elif opcode is Opcode.SELP:
            self._write(dst, srcs[0] if srcs[2] else srcs[1])
        elif opcode is Opcode.SETP:
            self._write(dst, 1 if srcs[0] < srcs[1] else 0)
        elif opcode in _UNARY_OPS:
            self._write(dst, _UNARY_OPS[opcode](srcs[0]))
        elif opcode is Opcode.LDG:
            self._write(dst, self.memory.load_global(srcs[0]))
        elif opcode is Opcode.LDS:
            self._write(dst, self.memory.load_shared(srcs[0]))
        elif opcode is Opcode.STG:
            self.memory.store_global(srcs[0], srcs[1])
        elif opcode is Opcode.STS:
            self.memory.store_shared(srcs[0], srcs[1])
        elif opcode is Opcode.TEX:
            self._write(dst, self.memory.texture_fetch(srcs[0]))
        else:  # pragma: no cover - exhaustive over the opcode set
            raise ExecutionError(f"no semantics for {opcode}")


def _shift_amount(value: Number) -> int:
    return max(0, min(63, int(value)))


_BINARY_OPS = {
    Opcode.IADD: lambda a, b: a + b,
    Opcode.ISUB: lambda a, b: a - b,
    Opcode.IMUL: lambda a, b: a * b,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.IMIN: min,
    Opcode.IMAX: max,
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.SHL: lambda a, b: int(a) << _shift_amount(b),
    Opcode.SHR: lambda a, b: int(a) >> _shift_amount(b),
}

_UNARY_OPS = {
    Opcode.RCP: _safe_div,
    Opcode.SQRT: lambda x: math.sqrt(abs(x)),
    Opcode.RSQRT: lambda x: _safe_div(math.sqrt(abs(x))),
    Opcode.SIN: lambda x: math.sin(float(x)),
    Opcode.COS: lambda x: math.cos(float(x)),
    Opcode.LG2: lambda x: math.log2(abs(x)) if x else 0.0,
    Opcode.EX2: lambda x: math.pow(2.0, min(64.0, float(x))),
}


def run_warp(kernel: Kernel, warp_input: WarpInput) -> List[TraceEvent]:
    """Convenience wrapper: execute and materialise the trace."""
    return list(WarpExecutor(kernel, warp_input).run())

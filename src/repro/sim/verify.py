"""Dynamic verification of allocation correctness.

The allocator promises that every annotated read observes the same
value a single-level register file would deliver.  This module checks
that promise by shadow-executing a warp trace:

* every dynamic definition gets a unique token;
* writes deposit the token into shadow copies of the MRF, the ORF
  entries, and the LRF banks named by the destination annotation;
* ORF/LRF shadows are invalidated at strand boundaries (the two-level
  scheduler may swap the warp out there, and entries are time-shared
  across warps);
* every read asserts that the shadow at its annotated location holds
  the token of the architecturally current value.

Any allocator bug that lets a stale or foreign value be read —
allocation across a strand boundary, entry-sharing collision, missing
MRF write for a live-out or mixed-read value — surfaces as an
:class:`AllocationVerificationError` naming the instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..ir.kernel import Kernel
from ..ir.registers import Register
from ..levels import Level
from ..strands.model import StrandPartition
from .executor import TraceEvent


class AllocationVerificationError(AssertionError):
    """A read would have observed a wrong value."""


@dataclass
class VerificationStats:
    """What the verifier observed (useful in tests)."""

    instructions: int = 0
    reads_checked: int = 0
    lrf_reads: int = 0
    orf_reads: int = 0
    mrf_reads: int = 0
    invalidations: int = 0


class AllocationVerifier:
    """Shadow-executes one warp trace against the static annotations."""

    def __init__(self, kernel: Kernel, partition: StrandPartition) -> None:
        self.kernel = kernel
        self.partition = partition
        self._next_token = 1
        #: Architecturally current token per register.
        self._arch: Dict[Register, int] = {}
        #: Shadow hierarchy contents (tokens).
        self._mrf: Dict[Register, int] = {}
        self._orf: Dict[int, int] = {}
        self._lrf: Dict[int, int] = {}
        self._current_strand: Optional[int] = None
        self._prev_position: Optional[int] = None
        self.stats = VerificationStats()
        # Live-in values exist in the MRF before the kernel starts.
        for reg in kernel.live_in:
            if reg.is_gpr:
                token = self._new_token()
                self._arch[reg] = token
                self._mrf[reg] = token

    def _new_token(self) -> int:
        token = self._next_token
        self._next_token += 1
        return token

    # -- main hooks -----------------------------------------------------------

    def process(self, event: TraceEvent) -> None:
        self.stats.instructions += 1
        self._check_strand_boundary(event)
        instruction = event.instruction
        src_anns = instruction.src_anns
        fills = []
        for slot, reg in instruction.gpr_reads():
            annotation = src_anns[slot] if src_anns else None
            self._check_read(event, slot, reg, annotation)
            if annotation is not None and (
                annotation.orf_write_entry is not None
            ):
                # Read operand allocation refills the ORF entry — in
                # the write phase, i.e. after all reads of this slot.
                fills.append((annotation.orf_write_entry, reg))
        for entry, reg in fills:
            self._orf[entry] = self._arch[reg]
        written = instruction.gpr_write()
        if written is not None and event.guard_passed:
            self._apply_write(event, written)

    def finish(self) -> None:
        """End of trace; nothing further to check."""

    # -- internals ---------------------------------------------------------

    def _check_strand_boundary(self, event: TraceEvent) -> None:
        position = event.ref.position
        strand = self.partition.strand_of_position.get(position)
        # A boundary is crossed when the static strand changes, and also
        # when the same strand re-enters dynamically (a taken backward
        # branch re-executes a loop-body strand: positions within one
        # strand execution strictly increase, so a non-increasing step
        # is a new execution).
        re_entered = (
            self._prev_position is not None
            and position <= self._prev_position
        )
        if strand != self._current_strand or re_entered:
            # Entering a new strand (execution): ORF and LRF contents
            # are dead (descheduling and time-sharing across warps).
            self._orf.clear()
            self._lrf.clear()
            self._current_strand = strand
            self.stats.invalidations += 1
        self._prev_position = position

    def _check_read(self, event, slot, reg, annotation) -> None:
        expected = self._arch.get(reg)
        if expected is None:
            raise AllocationVerificationError(
                f"{self.kernel.name} @{event.ref.position}: read of "
                f"never-written register {reg}"
            )
        self.stats.reads_checked += 1
        if annotation is None or annotation.level is Level.MRF:
            self.stats.mrf_reads += 1
            actual = self._mrf.get(reg)
            where = f"MRF[{reg}]"
        elif annotation.level is Level.ORF:
            self.stats.orf_reads += 1
            actual = self._orf.get(annotation.orf_entry)
            where = f"ORF[{annotation.orf_entry}]"
        else:
            self.stats.lrf_reads += 1
            bank = annotation.lrf_bank if annotation.lrf_bank is not None else 0
            actual = self._lrf.get(bank)
            where = f"LRF[{bank}]"
        if actual != expected:
            raise AllocationVerificationError(
                f"{self.kernel.name} @{event.ref.position} "
                f"({event.instruction}): operand {slot} ({reg}) reads "
                f"{where} which holds token {actual}, expected {expected}"
            )

    def _apply_write(self, event: TraceEvent, written: Register) -> None:
        token = self._new_token()
        self._arch[written] = token
        annotation = event.instruction.dst_ann
        if annotation is None:
            self._mrf[written] = token
            return
        for level in annotation.levels:
            if level is Level.MRF:
                self._mrf[written] = token
            elif level is Level.ORF:
                self._orf[annotation.orf_entry] = token
            else:
                bank = (
                    annotation.lrf_bank
                    if annotation.lrf_bank is not None
                    else 0
                )
                self._lrf[bank] = token


def verify_trace(
    kernel: Kernel,
    partition: StrandPartition,
    events: Iterable[TraceEvent],
) -> VerificationStats:
    """Verify one warp trace; raises on any inconsistent read."""
    verifier = AllocationVerifier(kernel, partition)
    for event in events:
        verifier.process(event)
    verifier.finish()
    return verifier.stats

"""repro — a reproduction of *A Compile-Time Managed Multi-Level
Register File Hierarchy* (Gebhart, Keckler, Dally; MICRO 2011).

The package implements the paper's full system stack in pure Python:

* :mod:`repro.ir` — a PTX-like IR (the allocator's input form);
* :mod:`repro.analysis` — CFG, dominance, liveness, reaching
  definitions, and value-usage statistics (Figure 2);
* :mod:`repro.strands` — strand partitioning (Section 4.1);
* :mod:`repro.alloc` — the energy-greedy LRF/ORF allocation algorithms
  (Sections 4.2-4.6), the paper's core contribution;
* :mod:`repro.hierarchy` — hardware baselines: the prior-work register
  file cache and the hardware three-level variant;
* :mod:`repro.energy` — the published energy model (Tables 3-4) and
  the encoding/chip-power scaling models (Sections 6.4-6.5);
* :mod:`repro.sim` — functional warp execution, trace accounting, the
  dynamic allocation verifier, and the two-level scheduler timing model;
* :mod:`repro.workloads` — synthetic stand-ins for the Table 1 suites;
* :mod:`repro.experiments` — drivers regenerating every figure.

Quick start::

    from repro.workloads import get_workload
    from repro.sim import BEST_SCHEME, build_traces, evaluate_traces
    from repro.energy import energy_savings

    spec = get_workload("matrixmul")
    traces = build_traces(spec.kernel, spec.warp_inputs)
    evaluation = evaluate_traces(traces, BEST_SCHEME)
    print(energy_savings(evaluation.counters, evaluation.baseline,
                         BEST_SCHEME.energy_model()))
"""

from .levels import ALL_LEVELS, Level

__version__ = "1.0.0"

__all__ = ["ALL_LEVELS", "Level", "__version__"]

"""The allocation service: endpoints, caching, executor, drain.

Endpoints::

    POST /v1/allocate   IR text/benchmark + software scheme -> annotations
    POST /v1/evaluate   IR text/benchmark + any scheme      -> engine record
    POST /v1/tune       IR text/benchmark + search params   -> tuner payload
    GET  /healthz       liveness + drain state + version/uptime/schema
    GET  /metrics       RunMetrics JSON (schema 3: stages/counters/
                        gauges/histograms); Prometheus text on
                        ``Accept: text/plain`` or ``?format=prometheus``

A request flows: normalise (400 on anything malformed, parse errors
included) → result memo (in-memory, then
:class:`~repro.engine.cache.DiskCache` kind ``"service"``) → the
:class:`~repro.service.batcher.JobBatcher` (in-flight dedup, bounded
admission → 429, micro-batch dispatch) → a bounded
``ProcessPoolExecutor`` running
:func:`~repro.service.pipeline.run_service_job` → memo + disk store.
Results are pure functions of the request fingerprint, so every cache
layer is transparent: a memo hit returns byte-identical payloads to a
cold compute.

The pool is vetted at startup with a probe job; where process pools
cannot start (restricted sandboxes) the service degrades to a thread
executor and says so in ``/healthz`` — same results, less parallelism.

SIGTERM/SIGINT trigger graceful drain: stop accepting, finish
in-flight work (bounded by ``drain_grace_s``), flush keep-alive
connections, shut the executor down.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .. import __version__
from ..engine.cache import DiskCache
from ..engine.metrics import SCHEMA_VERSION, RunMetrics
from ..obs.exporters import write_chrome_trace
from ..obs.registry import PROMETHEUS_CONTENT_TYPE
from ..obs.tracer import (
    TRACE_HEADER,
    TRACER,
    carrier_from_header,
    traced_call,
)
from .batcher import JobBatcher
from .httpd import AsyncHttpServer, HttpRequest, HttpResponse, json_response
from .pipeline import RESULT_SCHEMA, _probe, run_service_job
from .protocol import Draining, ServiceFault, ServiceJob, normalize_request


@dataclass
class ServiceConfig:
    """Everything `repro serve` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8077
    #: Executor workers (CPU-bound stage width).
    jobs: int = 2
    #: "process" (vetted, falls back to threads) or "thread".
    executor: str = "process"
    #: Admission bound: distinct jobs in flight before 429.
    max_pending: int = 64
    #: Per-request wall-clock budget before 504.
    request_timeout_s: float = 30.0
    #: Micro-batch coalescing window (0 = one loop iteration).
    linger_s: float = 0.0
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    max_body_bytes: int = 1 << 20
    drain_grace_s: float = 30.0
    #: Print the bound address on startup (the CLI sets this; tests
    #: read ``server.port`` instead).
    announce: bool = False
    #: Enable span tracing; write a Chrome trace-event JSON here on exit.
    trace_out: Optional[str] = None
    #: Stream spans to this JSONL file as they finish.
    trace_jsonl: Optional[str] = None
    #: Cluster identity (``"K/N"`` from ``--shard-of``); reported in
    #: ``/healthz`` and stamped on job responses so the coordinator and
    #: loadgen can attribute work per shard.  ``None`` = standalone.
    shard: Optional[str] = None


class ServiceServer:
    """One service instance; usable from a thread (tests) or the CLI."""

    def __init__(
        self, config: ServiceConfig, metrics: Optional[RunMetrics] = None
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.cache = (
            DiskCache(config.cache_dir, max_bytes=config.cache_max_bytes)
            if config.cache_dir
            else None
        )
        self._memo: Dict[str, Dict[str, Any]] = {}
        self._executor: Optional[Executor] = None
        self.executor_kind = "none"
        self._batcher: Optional[JobBatcher] = None
        self._http: Optional[AsyncHttpServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self.draining = False
        self.started = threading.Event()
        self.port: Optional[int] = None
        self._startup_error: Optional[BaseException] = None
        self._started_monotonic = time.monotonic()
        # Pre-register the request latency histogram so /metrics always
        # exposes it, even before the first request lands.
        self.metrics.histogram("http_request_seconds")
        if config.trace_out or config.trace_jsonl:
            TRACER.configure(
                enabled=True, jsonl_path=config.trace_jsonl
            )

    # -- lifecycle ---------------------------------------------------------

    def run_forever(self) -> None:
        """Blocking entry point; returns after graceful drain."""
        try:
            asyncio.run(self._main())
        except BaseException as error:
            self._startup_error = error
            self.started.set()
            raise

    def request_shutdown(self) -> None:
        """Thread-safe drain trigger (what SIGTERM calls)."""
        loop, event = self._loop, self._shutdown
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._executor, self.executor_kind = self._make_executor()
        self._batcher = JobBatcher(
            self._run_job,
            max_pending=self.config.max_pending,
            linger_s=self.config.linger_s,
            metrics=self.metrics,
        )
        self._batcher.start()
        self._http = AsyncHttpServer(
            self.handle,
            self.config.host,
            self.config.port,
            max_body_bytes=self.config.max_body_bytes,
        )
        await self._http.start()
        self.port = self._http.port
        self._install_signal_handlers()
        self.started.set()
        if self.config.announce:
            print(
                f"repro service listening on "
                f"http://{self.config.host}:{self.port} "
                f"(executor={self.executor_kind}, "
                f"jobs={self.config.jobs})",
                file=sys.stderr,
                flush=True,
            )
        await self._shutdown.wait()
        await self._drain()

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None and self._shutdown is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self._shutdown.set
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or unsupported platform: the owner
                # drives shutdown via request_shutdown() instead.
                return

    def _make_executor(self):
        if self.config.executor == "thread":
            return (
                ThreadPoolExecutor(max_workers=self.config.jobs),
                "thread",
            )
        try:
            pool = ProcessPoolExecutor(max_workers=self.config.jobs)
            pool.submit(_probe).result(timeout=60)
            return pool, "process"
        except Exception:
            return (
                ThreadPoolExecutor(max_workers=self.config.jobs),
                "thread",
            )

    async def _drain(self) -> None:
        with self.metrics.stage("drain"):
            self.draining = True
            assert self._http is not None and self._batcher is not None
            await self._http.stop_accepting()
            completed = await self._batcher.drain(
                self.config.drain_grace_s
            )
            if not completed:
                self.metrics.count("drain_abandoned_jobs")
            # In-flight HTTP exchanges finish writing their responses
            # before idle connections are torn down.
            deadline = (
                asyncio.get_running_loop().time()
                + self.config.drain_grace_s
            )
            while (
                self._http.active_requests
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.01)
            self._http.close_idle_connections()
            if self._executor is not None:
                self._executor.shutdown(wait=True)

    # -- request handling --------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        started = time.perf_counter()
        path = request.target.split("?", 1)[0]
        # A coordinator forward carries its span context in
        # X-Repro-Trace; attaching it parents this shard's request
        # span under the coordinator's forward span so the merged
        # cluster trace nests end to end.
        carrier = carrier_from_header(request.headers.get(TRACE_HEADER))
        with TRACER.attach(carrier):
            with TRACER.span(
                "service.request", method=request.method, path=path
            ) as span:
                response = await self._route(request, path)
                if span is not None:
                    span.attributes["status"] = response.status
        self.metrics.observe(
            "http_request_seconds", time.perf_counter() - started
        )
        return response

    async def _route(
        self, request: HttpRequest, path: str
    ) -> HttpResponse:
        self.metrics.count("http_requests")
        route = (request.method, path)
        try:
            if route == ("GET", "/healthz"):
                return json_response(200, self._health_payload())
            if route == ("GET", "/metrics"):
                if self._wants_prometheus(request):
                    return HttpResponse(
                        200,
                        self._prometheus_text().encode("utf-8"),
                        content_type=PROMETHEUS_CONTENT_TYPE,
                    )
                return json_response(200, self._metrics_payload())
            if route[1] in ("/v1/allocate", "/v1/evaluate", "/v1/tune"):
                if request.method != "POST":
                    return self._error_response(
                        405, "method_not_allowed",
                        f"{route[1]} requires POST",
                    )
                op = route[1].rsplit("/", 1)[1]
                return await self._handle_job(op, request)
            return self._error_response(
                404, "not_found", f"no route for {route[1]}"
            )
        except ServiceFault as fault:
            return self._fault_response(fault)

    async def _handle_job(
        self, op: str, request: HttpRequest
    ) -> HttpResponse:
        if self.draining:
            raise Draining("server is draining; no new work accepted")
        try:
            body = request.json()
        except ValueError as error:
            return self._error_response(
                400, "bad_request", f"invalid JSON body: {error}"
            )
        with self.metrics.stage("normalize"):
            job = normalize_request(op, body)

        result = self._lookup(job.fingerprint)
        if result is not None:
            served_from = "cache"
        else:
            result = await self._batcher.submit(
                job, self.config.request_timeout_s
            )
            served_from = "computed"
        self.metrics.count(f"{op}_responses")
        payload = dict(result)
        payload["fingerprint"] = job.fingerprint
        payload["served_from"] = served_from
        if self.config.shard is not None:
            payload["shard"] = self.config.shard
        return json_response(200, payload)

    def _lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        result = self._memo.get(fingerprint)
        if result is not None:
            self.metrics.count("service_memo_hits")
            return result
        if self.cache is not None:
            cached = self.cache.get_json("service", fingerprint)
            if (
                isinstance(cached, dict)
                and cached.get("schema") == RESULT_SCHEMA
            ):
                self.metrics.count("service_disk_hits")
                self._memo[fingerprint] = cached
                return cached
        return None

    async def _run_job(self, job: ServiceJob) -> Dict[str, Any]:
        """The batcher's execute callable: executor round-trip + store.

        With tracing on, the job crosses the pool via ``traced_call``:
        the worker records its own spans and returns them next to the
        result, which stays byte-identical to the untraced path.
        """
        assert self._loop is not None and self._executor is not None
        with self.metrics.stage("execute"):
            if TRACER.enabled:
                with TRACER.span(
                    "service.execute",
                    op=job.op,
                    fingerprint=job.fingerprint[:16],
                ):
                    wrapped = await self._loop.run_in_executor(
                        self._executor,
                        traced_call,
                        TRACER.current_carrier(),
                        run_service_job,
                        job.payload,
                    )
                TRACER.ingest(wrapped["spans"])
                result = wrapped["result"]
            else:
                result = await self._loop.run_in_executor(
                    self._executor, run_service_job, job.payload
                )
        self.metrics.count("jobs_executed")
        self._memo[job.fingerprint] = result
        if self.cache is not None:
            self.cache.put_json("service", job.fingerprint, result)
        return result

    # -- introspection -----------------------------------------------------

    def _wants_prometheus(self, request: HttpRequest) -> bool:
        """Content negotiation for /metrics: Prometheus text on an
        explicit ``Accept: text/plain`` or ``?format=prometheus``;
        JSON (the historical format) otherwise."""
        target = request.target
        if "?" in target:
            query = target.split("?", 1)[1]
            if "format=prometheus" in query.split("&"):
                return True
        accept = request.headers.get("accept", "")
        return "text/plain" in accept

    def _prometheus_text(self) -> str:
        # Refresh the gauges exactly like the JSON payload does.
        self._metrics_payload()
        return self.metrics.to_prometheus()

    def _health_payload(self) -> Dict[str, Any]:
        batcher = self._batcher
        return {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "shard": self.config.shard,
            "executor": self.executor_kind,
            "in_flight": batcher.pending if batcher else 0,
            "queue_depth": batcher.queue_depth if batcher else 0,
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "metrics_schema": SCHEMA_VERSION,
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        batcher = self._batcher
        if batcher is not None:
            self.metrics.gauge(
                "service_in_flight", float(batcher.pending)
            )
            self.metrics.gauge(
                "service_queue_depth", float(batcher.queue_depth)
            )
        self.metrics.gauge("service_draining", float(self.draining))
        self.metrics.gauge(
            "service_memo_entries", float(len(self._memo))
        )
        return self.metrics.to_dict()

    def _fault_response(self, fault: ServiceFault) -> HttpResponse:
        self.metrics.count(f"http_{fault.status}")
        headers = {}
        if fault.retry_after is not None:
            headers["Retry-After"] = f"{fault.retry_after:g}"
        return json_response(fault.status, fault.to_payload(), headers)

    def _error_response(
        self, status: int, error_type: str, message: str
    ) -> HttpResponse:
        self.metrics.count(f"http_{status}")
        return json_response(
            status, {"error": {"type": error_type, "message": message}}
        )


def serve_forever(
    config: ServiceConfig, metrics_out: Optional[str] = None
) -> int:
    """CLI entry: run until SIGTERM/SIGINT, then drain and report."""
    server = ServiceServer(config)
    try:
        server.run_forever()
    except KeyboardInterrupt:
        pass
    if metrics_out:
        server.metrics.write(metrics_out)
    if config.trace_out:
        write_chrome_trace(config.trace_out, TRACER.drain())
        print(f"wrote trace to {config.trace_out}", file=sys.stderr)
    print(server.metrics.summary(), file=sys.stderr)
    return 0

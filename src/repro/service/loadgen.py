"""Load generator and benchmark for the allocation service.

Builds a deterministic mixed plan — evaluate requests over registry
benchmarks × schemes (with deliberate repeats so dedup has something
to hit), IR-text allocate/evaluate requests, and a sprinkle of invalid
requests that must come back 400 — then fires it twice (cold, then
warm through the server's result memo) from ``concurrency`` persistent
async connections.  Connections are opened *before* the first phase
starts and reused across both phases, so connection-setup noise never
lands inside a measured percentile.

Measures per-request latency (p50/p95/p99), throughput, dedup hit rate
(in-flight + memo + disk, as a delta over ``/metrics``), and verifies
that every unique successful response is byte-identical to the direct
engine path (:func:`repro.service.pipeline.run_service_job` in this
process).  Writes the whole payload to ``BENCH_service.json``.

**Sharded mode** (``repro loadgen --shards N``) expects the target to
be a cluster coordinator (see :mod:`repro.service.cluster`).  The same
plan is first driven against a fresh single-server baseline spawned
for the occasion, then against the cluster, in one run — the payload
gains per-shard phase percentiles, per-shard dedup counters (from the
``/v1/cluster/healthz`` rollup), and a ``comparison`` section with the
warm-throughput ratio and the dedup-rate delta vs the baseline.

Schema history: schema 2 added ``p95_ms``; schema 3 adds the
optional ``cluster`` / ``baseline`` / ``comparison`` sections and the
``shards`` field; **schema 4** makes the warm phase adaptive — the
plan re-fires against the warm server until a statistical stopping
rule (:mod:`repro.bench`) says the throughput samples are stable — and
adds the shared ``"bench"`` section (per-metric samples, median, CI
bounds, repeats, stop reason, environment fingerprint) plus a
``phases.warm_runs`` list of per-run stats.  The legacy
``phases.warm`` entry is the merge over all warm runs.  All additions
are new keys — older consumers keep working unchanged.

Each request runs under **one** ``loadgen.request`` span carrying
``status`` and ``retries`` attributes: the client-side 429/503 retry
loop happens inside the span, so a retried request is one span with
``retries >= 1``, never two spans.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..bench import (
    StoppingRule,
    bench_section,
    make_rule,
    metric_from_samples,
    write_report,
)
from ..obs.exporters import write_chrome_trace
from ..obs.tracer import TRACER
from .client import AsyncServiceClient, ServiceClient, wait_until_healthy
from .pipeline import run_service_job
from .protocol import normalize_request

BENCH_SCHEMA = 4

DEFAULT_BENCHMARKS = ("vectoradd", "reduction", "matrixmul", "histogram")

_SCHEMES = (
    {"kind": "sw_lrf", "entries_per_thread": 3, "split_lrf": True},
    {"kind": "sw", "entries_per_thread": 3},
    {"kind": "hw", "entries_per_thread": 3},
    {"kind": "baseline"},
)

#: A small hand-written kernel exercising the IR-text path.
LOADGEN_KERNEL = """\
.kernel svc_saxpy
.livein R0 R1 R2
entry:
    mov R5, 0
loop:
    ldg R3, [R0]
    ffma R4, R3, R1, R2
    iadd R5, R5, R4
    stg [R0], R4
    iadd R0, R0, 4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    exit
"""

_INVALID_BODIES = (
    {"kernel": "this is not assembly\n"},
    {"benchmark": "no-such-benchmark"},
    {"benchmark": "vectoradd", "scheme": {"kind": "warp-drive"}},
)

#: Response fields added by the serving tier, not the computation.
_ENVELOPE_KEYS = ("fingerprint", "served_from", "shard")


def build_plan(
    total: int,
    concurrency: int,
    benchmarks=DEFAULT_BENCHMARKS,
) -> List[Dict[str, Any]]:
    """A deterministic mixed request plan of exactly ``total`` specs."""
    plan: List[Dict[str, Any]] = []

    def evaluate_spec(body: Dict[str, Any]) -> Dict[str, Any]:
        return {"op": "evaluate", "body": body, "expect": 200}

    # Seed the front of the plan with one identical request repeated
    # across the full concurrency width: on a cold server these race,
    # which is precisely what in-flight dedup exists for.
    seed_body = {
        "benchmark": benchmarks[0],
        "scale": 1.0,
        "scheme": _SCHEMES[0],
    }
    for _ in range(min(max(concurrency, 2), total)):
        plan.append(evaluate_spec(dict(seed_body)))

    index = 0
    while len(plan) < total:
        slot = len(plan)
        if slot % 16 == 7:
            body = dict(_INVALID_BODIES[index % len(_INVALID_BODIES)])
            plan.append({"op": "evaluate", "body": body, "expect": 400})
        elif slot % 8 == 3:
            plan.append(
                {
                    "op": "allocate",
                    "body": {
                        "kernel": LOADGEN_KERNEL,
                        "scheme": {
                            "kind": "sw_lrf",
                            "entries_per_thread": 1 + index % 4,
                            "split_lrf": True,
                        },
                    },
                    "expect": 200,
                }
            )
        elif slot % 8 == 5:
            plan.append(
                evaluate_spec(
                    {
                        "kernel": LOADGEN_KERNEL,
                        "warps": [
                            {"live_in": {"R1": 2, "R2": 4 + index % 3}}
                        ],
                        "scheme": _SCHEMES[index % 2],
                    }
                )
            )
        else:
            # Stride the scheme index so every benchmark meets every
            # scheme instead of locking to one (benchmark, scheme) pair
            # per residue class.
            body = {
                "benchmark": benchmarks[index % len(benchmarks)],
                "scale": 1.0,
                "scheme": _SCHEMES[
                    (index // len(benchmarks)) % len(_SCHEMES)
                ],
            }
            plan.append(evaluate_spec(body))
        index += 1
    return plan


async def _run_phase(
    clients: List[AsyncServiceClient],
    plan: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], float]:
    """Fire the plan over pre-connected clients; returns
    (per-request results, wall seconds)."""
    results: List[Optional[Dict[str, Any]]] = [None] * len(plan)
    queue: "asyncio.Queue[int]" = asyncio.Queue()
    for index in range(len(plan)):
        queue.put_nowait(index)

    async def worker(client: AsyncServiceClient) -> None:
        while True:
            try:
                index = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            spec = plan[index]
            started = time.perf_counter()
            # One span per logical request: the retry loop runs inside
            # it, so a retried request is a single span with its final
            # status and a ``retries`` count, never multiple spans.
            with TRACER.span(
                "loadgen.request", op=spec["op"], index=index
            ) as span:
                try:
                    status, payload, retries = (
                        await client.request_with_retries(
                            "POST", f"/v1/{spec['op']}", spec["body"]
                        )
                    )
                    results[index] = {
                        "status": status,
                        "latency_s": time.perf_counter() - started,
                        "payload": payload,
                        "retries": retries,
                    }
                    if span is not None:
                        span.attributes["status"] = status
                        span.attributes["retries"] = retries
                except Exception as error:  # noqa: BLE001 - recorded
                    results[index] = {
                        "status": None,
                        "latency_s": time.perf_counter() - started,
                        "error": f"{type(error).__name__}: {error}",
                    }
                    if span is not None:
                        span.attributes["status"] = None
                        span.attributes["error"] = type(error).__name__

    started = time.perf_counter()
    await asyncio.gather(
        *[worker(client) for client in clients], return_exceptions=True
    )
    wall = time.perf_counter() - started
    # Index-aligned with the plan; anything a crashed worker left
    # behind counts as dropped.
    filled = [
        result
        if result is not None
        else {"status": None, "latency_s": 0.0, "error": "not executed"}
        for result in results
    ]
    return filled, wall


async def _run_phases(
    host: str,
    port: int,
    plan: List[Dict[str, Any]],
    concurrency: int,
    timeout: float,
    rule: Optional[StoppingRule] = None,
    retries: int = 0,
) -> Tuple[
    Tuple[List[Dict[str, Any]], float],
    List[Tuple[List[Dict[str, Any]], float]],
    str,
]:
    """Run the plan cold once, then warm adaptively.

    All phases share one set of keep-alive connections, opened before
    the first phase's clock starts.  The warm phase re-fires the whole
    plan until ``rule`` declares the per-run throughput samples stable
    (exactly one warm run when ``rule`` is ``None``).  Returns
    ``(cold, warm_runs, warm_stop_reason)``.
    """
    clients = [
        AsyncServiceClient(
            host, port, timeout=timeout,
            retries=retries, backoff_seed=index,
        )
        for index in range(concurrency)
    ]
    try:
        for client in clients:
            try:
                await client.connect()
            except OSError:
                pass  # workers reconnect lazily; failures get recorded
        cold = await _run_phase(clients, plan)
        warm_runs = [await _run_phase(clients, plan)]
        stop_reason = "fixed_repeats"
        if rule is not None:
            samples = [
                len(plan) / max(wall, 1e-9) for _, wall in warm_runs
            ]
            reason = rule.check(samples)
            while reason is None:
                warm_runs.append(await _run_phase(clients, plan))
                samples.append(
                    len(plan) / max(warm_runs[-1][1], 1e-9)
                )
                reason = rule.check(samples)
            stop_reason = reason
        return cold, warm_runs, stop_reason
    finally:
        for client in clients:
            await client.close()


def _merge_warm(
    warm_runs: List[Tuple[List[Dict[str, Any]], float]]
) -> Tuple[List[Dict[str, Any]], float]:
    """All warm runs as one result list plus the summed wall time."""
    merged = [
        result for results, _ in warm_runs for result in results
    ]
    return merged, sum(wall for _, wall in warm_runs)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _latency_summary(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    return {
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
    }


def _phase_stats(
    results: List[Dict[str, Any]], wall: float
) -> Dict[str, Any]:
    latencies = [
        result["latency_s"]
        for result in results
        if result["status"] is not None
    ]
    return {
        "requests": len(results),
        "wall_s": round(wall, 6),
        "requests_per_s": round(len(results) / wall, 2) if wall else 0.0,
        **_latency_summary(latencies),
    }


def _per_shard_stats(
    phases: Dict[str, List[Dict[str, Any]]]
) -> Dict[str, Dict[str, Any]]:
    """Group request latencies by the responding shard's identity
    (the ``shard`` field shards stamp on job responses)."""
    shards: Dict[str, Dict[str, Any]] = {}
    for phase_name, results in phases.items():
        for result in results:
            payload = result.get("payload")
            if not isinstance(payload, dict):
                continue
            shard = payload.get("shard")
            if shard is None:
                continue
            entry = shards.setdefault(str(shard), {})
            entry.setdefault(phase_name, []).append(result["latency_s"])
    out: Dict[str, Dict[str, Any]] = {}
    for shard, per_phase in sorted(shards.items()):
        out[shard] = {
            phase_name: {
                "requests": len(latencies),
                **_latency_summary(latencies),
            }
            for phase_name, latencies in per_phase.items()
        }
    return out


_DEDUP_COUNTERS = (
    "inflight_dedup_hits",
    "service_memo_hits",
    "service_disk_hits",
)


def _dedup_delta(before: Dict, after: Dict) -> Dict[str, int]:
    def counters(snapshot: Dict) -> Dict[str, int]:
        return snapshot.get("counters", {})

    return {
        name: counters(after).get(name, 0) - counters(before).get(name, 0)
        for name in _DEDUP_COUNTERS
    }


def _dedup_payload(
    counters: Dict[str, int], ok_responses: int
) -> Dict[str, Any]:
    hits = sum(counters.values())
    return {
        **counters,
        "total_hits": hits,
        "rate": round(hits / ok_responses, 4) if ok_responses else 0.0,
    }


def _verify_results(
    plan: List[Dict[str, Any]],
    responses: Dict[int, Dict[str, Any]],
) -> Dict[str, int]:
    """Recompute each unique successful request through the direct
    engine path and demand byte-identical result payloads."""
    compared = 0
    mismatches = 0
    seen = set()
    for index, spec in enumerate(plan):
        response = responses.get(index)
        if response is None or spec["expect"] != 200:
            continue
        job = normalize_request(spec["op"], spec["body"])
        if job.fingerprint in seen:
            continue
        seen.add(job.fingerprint)
        local = run_service_job(job.payload)
        remote = {
            key: value
            for key, value in response.items()
            if key not in _ENVELOPE_KEYS
        }
        compared += 1
        if json.dumps(local, sort_keys=True) != json.dumps(
            remote, sort_keys=True
        ):
            mismatches += 1
    return {"compared": compared, "mismatches": mismatches}


def _tally(
    plan: List[Dict[str, Any]],
    phase_results: List[List[Dict[str, Any]]],
) -> Tuple[int, int, Dict[str, int], int]:
    """(dropped, unexpected, status_counts, ok_responses).

    ``phase_results`` is one plan-aligned result list per executed
    phase (cold plus every warm run).
    """
    all_results = [r for results in phase_results for r in results]
    dropped = sum(1 for r in all_results if r["status"] is None)
    unexpected = 0
    status_counts: Dict[str, int] = {}
    for results in phase_results:
        for index, result in enumerate(results):
            status = result["status"]
            status_counts[str(status)] = (
                status_counts.get(str(status), 0) + 1
            )
            if status is not None and status != plan[index]["expect"]:
                unexpected += 1
    ok_responses = sum(1 for r in all_results if r["status"] == 200)
    return dropped, unexpected, status_counts, ok_responses


# -- single-server baseline (sharded mode) ---------------------------------


class _BaselineServer:
    """A fresh single-process server for the in-run baseline.

    Preferred: a ``repro serve`` subprocess (own interpreter, fair
    comparison against out-of-process shards).  Fallback where
    subprocesses are unavailable: a thread-hosted
    :class:`~repro.service.server.ServiceServer` in this process.
    """

    def __init__(self, jobs: int, wait_secs: float = 60.0) -> None:
        from .cluster.launcher import free_port, repro_env

        self.port = free_port()
        self.kind = "subprocess"
        self._process: Optional[subprocess.Popen] = None
        self._thread = None
        self._server = None
        try:
            self._process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--port", str(self.port), "--jobs", str(jobs),
                ],
                env=repro_env(),
            )
        except OSError:
            self._process = None
        if self._process is not None and wait_until_healthy(
            "127.0.0.1", self.port, timeout=wait_secs
        ):
            return
        if self._process is not None:
            self._process.terminate()
            self._process = None
        self._start_thread_fallback(jobs, wait_secs)

    def _start_thread_fallback(self, jobs: int, wait_secs: float) -> None:
        import threading

        from .server import ServiceConfig, ServiceServer

        self.kind = "thread"
        self._server = ServiceServer(ServiceConfig(port=0, jobs=jobs))
        self._thread = threading.Thread(
            target=self._server.run_forever, daemon=True
        )
        self._thread.start()
        if not self._server.started.wait(wait_secs) or (
            self._server._startup_error is not None
        ):
            raise RuntimeError("baseline server failed to start")
        self.port = self._server.port

    def stop(self) -> None:
        if self._process is not None:
            self._process.terminate()
            try:
                self._process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=5)
        if self._server is not None:
            self._server.request_shutdown()
            self._thread.join(15)


def _run_baseline(
    plan: List[Dict[str, Any]],
    concurrency: int,
    timeout: float,
    jobs: int,
    rule: Optional[StoppingRule] = None,
) -> Dict[str, Any]:
    """Drive the plan (cold + adaptive warm) against a fresh single
    server — the same stopping rule as the cluster run, so the
    comparison stays apples-to-apples."""
    server = _BaselineServer(jobs)
    try:
        control = ServiceClient("127.0.0.1", server.port, timeout=timeout)
        before = control.metrics()
        (cold_results, cold_wall), warm_runs, _ = asyncio.run(
            _run_phases(
                "127.0.0.1", server.port, plan, concurrency, timeout,
                rule=rule,
            )
        )
        after = control.metrics()
    finally:
        server.stop()
    warm_results, warm_wall = _merge_warm(warm_runs)
    dropped, unexpected, status_counts, ok_responses = _tally(
        plan, [cold_results] + [results for results, _ in warm_runs]
    )
    return {
        "kind": server.kind,
        "jobs": jobs,
        "phases": {
            "cold": _phase_stats(cold_results, cold_wall),
            "warm": _phase_stats(warm_results, warm_wall),
            "warm_runs": [
                _phase_stats(results, wall)
                for results, wall in warm_runs
            ],
        },
        "status_counts": dict(sorted(status_counts.items())),
        "dropped": dropped,
        "unexpected_statuses": unexpected,
        "dedup": _dedup_payload(
            _dedup_delta(before, after), ok_responses
        ),
    }


# -- cluster rollup helpers ------------------------------------------------


def _rollup_dedup(rollup: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
    """Per-shard dedup counters from a ``/v1/cluster/healthz`` payload."""
    out: Dict[str, Dict[str, int]] = {}
    for label, entry in rollup.get("shards", {}).items():
        dedup = entry.get("dedup") or {}
        out[label] = {
            name: int(dedup.get(name, 0)) for name in _DEDUP_COUNTERS
        }
    return out


def _front_cache_hits(rollup: Dict[str, Any]) -> int:
    return int(
        rollup.get("coordinator", {})
        .get("counters", {})
        .get("cluster_front_cache_hits", 0)
    )


def _cluster_dedup(
    before: Dict[str, Any], after: Dict[str, Any], ok_responses: int
) -> Tuple[Dict[str, Any], Dict[str, Dict[str, int]]]:
    """(aggregate dedup payload, per-shard dedup deltas).

    Aggregate hits = shard-side in-flight/memo/disk hits plus the
    coordinator's front-cache hits (responses served from coordinator
    memory are dedup hits too — the bytes are exactly what the owning
    shard last returned for that fingerprint).
    """
    shards_before = _rollup_dedup(before)
    shards_after = _rollup_dedup(after)
    per_shard: Dict[str, Dict[str, int]] = {}
    totals = {name: 0 for name in _DEDUP_COUNTERS}
    for label, counters in shards_after.items():
        base = shards_before.get(
            label, {name: 0 for name in _DEDUP_COUNTERS}
        )
        delta = {
            name: counters[name] - base.get(name, 0)
            for name in _DEDUP_COUNTERS
        }
        per_shard[label] = delta
        for name in _DEDUP_COUNTERS:
            totals[name] += delta[name]
    front = _front_cache_hits(after) - _front_cache_hits(before)
    aggregate = dict(totals)
    aggregate["front_cache_hits"] = front
    hits = sum(totals.values()) + front
    aggregate["total_hits"] = hits
    aggregate["rate"] = (
        round(hits / ok_responses, 4) if ok_responses else 0.0
    )
    return aggregate, per_shard


# -- entry points ----------------------------------------------------------


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8077,
    *,
    requests: int = 300,
    concurrency: int = 8,
    timeout: float = 60.0,
    benchmarks=DEFAULT_BENCHMARKS,
    verify: bool = True,
    trace_out: Optional[str] = None,
    shards: Optional[int] = None,
    baseline_jobs: int = 2,
    rule: Optional[StoppingRule] = None,
    retries: int = 0,
) -> Dict[str, Any]:
    """Drive a running service and return the benchmark payload.

    With ``shards``, the target must be a cluster coordinator with
    that many shards; a single-server baseline runs first in the same
    invocation so the payload carries an apples-to-apples comparison.

    ``rule`` (default: a bootstrap-CI repeater, 2..6 runs, 5% target)
    governs how many times the warm phase re-fires the plan; pass an
    explicit rule to tighten or loosen the stability bar.
    """
    if rule is None:
        rule = make_rule(
            "ci", min_repeats=2, max_repeats=6, target=0.05, seed=0
        )
    if trace_out:
        TRACER.configure(enabled=True)
    plan = build_plan(requests, concurrency, benchmarks)
    control = ServiceClient(host, port, timeout=timeout)

    baseline: Optional[Dict[str, Any]] = None
    cluster_before: Optional[Dict[str, Any]] = None
    if shards:
        cluster_before = control.cluster_healthz()
        found = len(cluster_before.get("shards", {}))
        if found != shards:
            raise SystemExit(
                f"repro loadgen: error: coordinator at {host}:{port} "
                f"reports {found} shard(s), expected {shards}"
            )
        baseline = _run_baseline(
            plan, concurrency, timeout, baseline_jobs, rule=rule
        )
        metrics_before = None
    else:
        metrics_before = control.metrics()

    (cold_results, cold_wall), warm_runs, warm_stop = asyncio.run(
        _run_phases(
            host, port, plan, concurrency, timeout,
            rule=rule, retries=retries,
        )
    )
    warm_results, warm_wall = _merge_warm(warm_runs)

    dropped, unexpected, status_counts, ok_responses = _tally(
        plan, [cold_results] + [results for results, _ in warm_runs]
    )

    per_shard_dedup: Dict[str, Dict[str, int]] = {}
    if shards:
        cluster_after = control.cluster_healthz()
        dedup, per_shard_dedup = _cluster_dedup(
            cluster_before, cluster_after, ok_responses
        )
    else:
        metrics_after = control.metrics()
        dedup = _dedup_payload(
            _dedup_delta(metrics_before, metrics_after), ok_responses
        )

    verification = {"compared": 0, "mismatches": 0}
    if verify:
        first_ok: Dict[int, Dict[str, Any]] = {}
        for index, result in enumerate(cold_results):
            if result["status"] == 200:
                first_ok[index] = result["payload"]
        verification = _verify_results(plan, first_ok)

    warm_run_stats = [
        _phase_stats(results, wall) for results, wall in warm_runs
    ]
    payload = {
        "schema": BENCH_SCHEMA,
        "requests": requests,
        "concurrency": concurrency,
        "shards": shards,
        "phases": {
            "cold": _phase_stats(cold_results, cold_wall),
            "warm": _phase_stats(warm_results, warm_wall),
            "warm_runs": warm_run_stats,
        },
        "status_counts": dict(sorted(status_counts.items())),
        "dropped": dropped,
        "unexpected_statuses": unexpected,
        "dedup": dedup,
        "verify": verification,
    }
    metrics = {
        "cold_requests_per_s": metric_from_samples(
            "cold_requests_per_s",
            [payload["phases"]["cold"]["requests_per_s"]],
            unit="req/s",
            direction="higher",
            stop_reason="single_run",
        ),
        "warm_requests_per_s": metric_from_samples(
            "warm_requests_per_s",
            [stats["requests_per_s"] for stats in warm_run_stats],
            unit="req/s",
            direction="higher",
            rule=rule,
            stop_reason=warm_stop,
        ),
        "warm_p50_ms": metric_from_samples(
            "warm_p50_ms",
            [stats["p50_ms"] for stats in warm_run_stats],
            unit="ms",
            direction="lower",
            rule=rule,
            stop_reason=warm_stop,
        ),
        "warm_p99_ms": metric_from_samples(
            "warm_p99_ms",
            [stats["p99_ms"] for stats in warm_run_stats],
            unit="ms",
            direction="lower",
            rule=rule,
            stop_reason=warm_stop,
        ),
        "dedup_rate": metric_from_samples(
            "dedup_rate",
            [dedup["rate"]],
            unit="frac",
            direction="higher",
            comparable=True,
            stop_reason="derived",
        ),
    }
    ok = (
        dropped == 0
        and unexpected == 0
        and verification["mismatches"] == 0
        and dedup["total_hits"] > 0
    )
    if shards:
        shard_stats = _per_shard_stats(
            {"cold": cold_results, "warm": warm_results}
        )
        for label, counters in per_shard_dedup.items():
            shard_stats.setdefault(label, {})["dedup"] = counters
        payload["cluster"] = {
            "shards": shards,
            "per_shard": shard_stats,
        }
        payload["baseline"] = baseline
        baseline_warm = baseline["phases"]["warm"]["requests_per_s"]
        cluster_warm = payload["phases"]["warm"]["requests_per_s"]
        ratio = (
            round(cluster_warm / baseline_warm, 3) if baseline_warm else 0.0
        )
        rate_delta = round(
            dedup["rate"] - baseline["dedup"]["rate"], 4
        )
        payload["comparison"] = {
            "warm_throughput_ratio": ratio,
            "dedup_rate_delta": rate_delta,
        }
        # The ratio is machine-portable (both sides ran on this host
        # moments apart), so it is the one gated loadgen metric.
        baseline_samples = [
            stats["requests_per_s"]
            for stats in baseline["phases"]["warm_runs"]
        ]
        ratio_samples = [
            stats["requests_per_s"] / baseline_warm
            for stats in warm_run_stats
        ] if baseline_warm else [0.0]
        metrics["warm_throughput_ratio"] = metric_from_samples(
            "warm_throughput_ratio",
            ratio_samples,
            unit="x",
            direction="higher",
            comparable=True,
            rule=rule,
            stop_reason="derived",
        )
        metrics["baseline_warm_requests_per_s"] = metric_from_samples(
            "baseline_warm_requests_per_s",
            baseline_samples,
            unit="req/s",
            direction="higher",
            rule=rule,
            stop_reason="derived",
        )
        ok = (
            ok
            and baseline["dropped"] == 0
            and ratio >= 1.5
            and abs(rate_delta) <= 0.02
        )
    payload["bench"] = bench_section("loadgen", metrics, rule=rule)
    payload["ok"] = ok
    if trace_out:
        write_chrome_trace(trace_out, TRACER.drain())
    return payload


def write_loadgen(path: str, payload: Dict[str, Any]) -> str:
    return str(write_report(path, payload))


def _format_phase_rows(
    lines: List[str], phases: Dict[str, Any]
) -> None:
    for name in ("cold", "warm"):
        stats = phases[name]
        lines.append(
            f"{name:>6}{stats['requests']:>7}{stats['wall_s']:>9.2f}"
            f"{stats['requests_per_s']:>9.1f}{stats['p50_ms']:>9.2f}"
            f"{stats.get('p95_ms', 0.0):>9.2f}"
            f"{stats['p99_ms']:>9.2f}"
        )


def format_loadgen(payload: Dict[str, Any]) -> str:
    dedup = payload["dedup"]
    verify = payload["verify"]
    lines = [
        "service loadgen "
        f"({payload['requests']} requests x2 phases, "
        f"concurrency {payload['concurrency']}"
        + (
            f", {payload['shards']} shards)"
            if payload.get("shards")
            else ")"
        ),
        f"{'phase':>6}{'reqs':>7}{'wall s':>9}{'req/s':>9}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'p99 ms':>9}",
    ]
    _format_phase_rows(lines, payload["phases"])
    lines.append(
        f"dropped={payload['dropped']} "
        f"unexpected={payload['unexpected_statuses']} "
        f"statuses={payload['status_counts']}"
    )
    lines.append(
        "dedup: "
        + " ".join(f"{k}={dedup[k]}" for k in _DEDUP_COUNTERS)
        + (
            f" front_cache_hits={dedup['front_cache_hits']}"
            if "front_cache_hits" in dedup
            else ""
        )
        + f" rate={dedup['rate']:.2%}"
    )
    if payload.get("cluster"):
        for shard, stats in payload["cluster"]["per_shard"].items():
            parts = [f"shard {shard}:"]
            for phase in ("cold", "warm"):
                if phase in stats:
                    parts.append(
                        f"{phase} {stats[phase]['requests']} reqs "
                        f"p50 {stats[phase]['p50_ms']:.2f}ms "
                        f"p99 {stats[phase]['p99_ms']:.2f}ms"
                    )
            if "dedup" in stats:
                parts.append(
                    f"dedup {sum(stats['dedup'].values())} hits"
                )
            lines.append("  " + " | ".join(parts))
        baseline = payload["baseline"]
        lines.append(
            f"baseline ({baseline['kind']}, jobs={baseline['jobs']}): "
            f"warm {baseline['phases']['warm']['requests_per_s']:.1f} "
            f"req/s, dedup rate {baseline['dedup']['rate']:.2%}, "
            f"dropped={baseline['dropped']}"
        )
        comparison = payload["comparison"]
        lines.append(
            f"comparison: warm throughput "
            f"{comparison['warm_throughput_ratio']:.2f}x baseline "
            f"(floor 1.5x), dedup rate delta "
            f"{comparison['dedup_rate_delta']:+.2%} (budget ±2%)"
        )
    lines.append(
        f"verify: {verify['compared']} compared, "
        f"{verify['mismatches']} mismatches"
    )
    bench = payload.get("bench")
    if bench is not None:
        warm = bench["metrics"].get("warm_requests_per_s")
        if warm is not None:
            lines.append(
                f"warm throughput: median {warm['median']:.1f} req/s "
                f"over {warm['repeats']} run(s) "
                f"(ci [{warm['ci'][0]:.1f}, {warm['ci'][1]:.1f}], "
                f"stop: {warm['stop_reason']})"
            )
    lines.append("RESULT: " + ("ok" if payload["ok"] else "FAILED"))
    return "\n".join(lines)

"""Load generator and benchmark for the allocation service.

Builds a deterministic mixed plan — evaluate requests over registry
benchmarks × schemes (with deliberate repeats so dedup has something
to hit), IR-text allocate/evaluate requests, and a sprinkle of invalid
requests that must come back 400 — then fires it twice (cold, then
warm through the server's result memo) from ``concurrency`` persistent
async connections.

Measures per-request latency (p50/p95/p99), throughput, dedup hit rate
(in-flight + memo + disk, as a delta over ``/metrics``), and verifies
that every unique successful response is byte-identical to the direct
engine path (:func:`repro.service.pipeline.run_service_job` in this
process).  Writes the whole payload to ``BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from ..obs.exporters import write_chrome_trace
from ..obs.tracer import TRACER
from .client import AsyncServiceClient, ServiceClient
from .pipeline import run_service_job
from .protocol import normalize_request

#: Schema 2 added ``p95_ms`` to phase stats; unknown keys are ignored
#: by readers, so schema-1 consumers keep working.
BENCH_SCHEMA = 2

DEFAULT_BENCHMARKS = ("vectoradd", "reduction", "matrixmul", "histogram")

_SCHEMES = (
    {"kind": "sw_lrf", "entries_per_thread": 3, "split_lrf": True},
    {"kind": "sw", "entries_per_thread": 3},
    {"kind": "hw", "entries_per_thread": 3},
    {"kind": "baseline"},
)

#: A small hand-written kernel exercising the IR-text path.
LOADGEN_KERNEL = """\
.kernel svc_saxpy
.livein R0 R1 R2
entry:
    mov R5, 0
loop:
    ldg R3, [R0]
    ffma R4, R3, R1, R2
    iadd R5, R5, R4
    stg [R0], R4
    iadd R0, R0, 4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    exit
"""

_INVALID_BODIES = (
    {"kernel": "this is not assembly\n"},
    {"benchmark": "no-such-benchmark"},
    {"benchmark": "vectoradd", "scheme": {"kind": "warp-drive"}},
)


def build_plan(
    total: int,
    concurrency: int,
    benchmarks=DEFAULT_BENCHMARKS,
) -> List[Dict[str, Any]]:
    """A deterministic mixed request plan of exactly ``total`` specs."""
    plan: List[Dict[str, Any]] = []

    def evaluate_spec(body: Dict[str, Any]) -> Dict[str, Any]:
        return {"op": "evaluate", "body": body, "expect": 200}

    # Seed the front of the plan with one identical request repeated
    # across the full concurrency width: on a cold server these race,
    # which is precisely what in-flight dedup exists for.
    seed_body = {
        "benchmark": benchmarks[0],
        "scale": 1.0,
        "scheme": _SCHEMES[0],
    }
    for _ in range(min(max(concurrency, 2), total)):
        plan.append(evaluate_spec(dict(seed_body)))

    index = 0
    while len(plan) < total:
        slot = len(plan)
        if slot % 16 == 7:
            body = dict(_INVALID_BODIES[index % len(_INVALID_BODIES)])
            plan.append({"op": "evaluate", "body": body, "expect": 400})
        elif slot % 8 == 3:
            plan.append(
                {
                    "op": "allocate",
                    "body": {
                        "kernel": LOADGEN_KERNEL,
                        "scheme": {
                            "kind": "sw_lrf",
                            "entries_per_thread": 1 + index % 4,
                            "split_lrf": True,
                        },
                    },
                    "expect": 200,
                }
            )
        elif slot % 8 == 5:
            plan.append(
                evaluate_spec(
                    {
                        "kernel": LOADGEN_KERNEL,
                        "warps": [
                            {"live_in": {"R1": 2, "R2": 4 + index % 3}}
                        ],
                        "scheme": _SCHEMES[index % 2],
                    }
                )
            )
        else:
            # Stride the scheme index so every benchmark meets every
            # scheme instead of locking to one (benchmark, scheme) pair
            # per residue class.
            body = {
                "benchmark": benchmarks[index % len(benchmarks)],
                "scale": 1.0,
                "scheme": _SCHEMES[
                    (index // len(benchmarks)) % len(_SCHEMES)
                ],
            }
            plan.append(evaluate_spec(body))
        index += 1
    return plan


async def _run_phase(
    host: str,
    port: int,
    plan: List[Dict[str, Any]],
    concurrency: int,
    timeout: float,
) -> Tuple[List[Dict[str, Any]], float]:
    """Fire the plan; returns (per-request results, wall seconds)."""
    results: List[Optional[Dict[str, Any]]] = [None] * len(plan)
    queue: "asyncio.Queue[int]" = asyncio.Queue()
    for index in range(len(plan)):
        queue.put_nowait(index)

    async def worker() -> None:
        client = AsyncServiceClient(host, port, timeout=timeout)
        try:
            while True:
                try:
                    index = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                spec = plan[index]
                started = time.perf_counter()
                with TRACER.span(
                    "loadgen.request", op=spec["op"], index=index
                ) as span:
                    try:
                        status, payload = await client.request_raw(
                            "POST", f"/v1/{spec['op']}", spec["body"]
                        )
                        results[index] = {
                            "status": status,
                            "latency_s": time.perf_counter() - started,
                            "payload": payload,
                        }
                        if span is not None:
                            span.attributes["status"] = status
                    except Exception as error:  # noqa: BLE001 - recorded
                        results[index] = {
                            "status": None,
                            "latency_s": time.perf_counter() - started,
                            "error": f"{type(error).__name__}: {error}",
                        }
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(
        *[worker() for _ in range(concurrency)], return_exceptions=True
    )
    wall = time.perf_counter() - started
    # Index-aligned with the plan; anything a crashed worker left
    # behind counts as dropped.
    filled = [
        result
        if result is not None
        else {"status": None, "latency_s": 0.0, "error": "not executed"}
        for result in results
    ]
    return filled, wall


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _phase_stats(
    results: List[Dict[str, Any]], wall: float
) -> Dict[str, Any]:
    latencies = sorted(
        result["latency_s"]
        for result in results
        if result["status"] is not None
    )
    return {
        "requests": len(results),
        "wall_s": round(wall, 6),
        "requests_per_s": round(len(results) / wall, 2) if wall else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


_DEDUP_COUNTERS = (
    "inflight_dedup_hits",
    "service_memo_hits",
    "service_disk_hits",
)


def _dedup_delta(before: Dict, after: Dict) -> Dict[str, int]:
    def counters(snapshot: Dict) -> Dict[str, int]:
        return snapshot.get("counters", {})

    return {
        name: counters(after).get(name, 0) - counters(before).get(name, 0)
        for name in _DEDUP_COUNTERS
    }


def _verify_results(
    plan: List[Dict[str, Any]],
    responses: Dict[int, Dict[str, Any]],
) -> Dict[str, int]:
    """Recompute each unique successful request through the direct
    engine path and demand byte-identical result payloads."""
    compared = 0
    mismatches = 0
    seen = set()
    for index, spec in enumerate(plan):
        response = responses.get(index)
        if response is None or spec["expect"] != 200:
            continue
        job = normalize_request(spec["op"], spec["body"])
        if job.fingerprint in seen:
            continue
        seen.add(job.fingerprint)
        local = run_service_job(job.payload)
        remote = {
            key: value
            for key, value in response.items()
            if key not in ("fingerprint", "served_from")
        }
        compared += 1
        if json.dumps(local, sort_keys=True) != json.dumps(
            remote, sort_keys=True
        ):
            mismatches += 1
    return {"compared": compared, "mismatches": mismatches}


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8077,
    *,
    requests: int = 300,
    concurrency: int = 8,
    timeout: float = 60.0,
    benchmarks=DEFAULT_BENCHMARKS,
    verify: bool = True,
    trace_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Drive a running service and return the benchmark payload."""
    if trace_out:
        TRACER.configure(enabled=True)
    plan = build_plan(requests, concurrency, benchmarks)
    control = ServiceClient(host, port, timeout=timeout)
    metrics_before = control.metrics()

    async def both_phases():
        cold = await _run_phase(host, port, plan, concurrency, timeout)
        warm = await _run_phase(host, port, plan, concurrency, timeout)
        return cold, warm

    (cold_results, cold_wall), (warm_results, warm_wall) = asyncio.run(
        both_phases()
    )
    metrics_after = control.metrics()

    all_results = cold_results + warm_results
    dropped = sum(1 for r in all_results if r["status"] is None)
    unexpected = 0
    status_counts: Dict[str, int] = {}
    for results in (cold_results, warm_results):
        for index, result in enumerate(results):
            status = result["status"]
            status_counts[str(status)] = (
                status_counts.get(str(status), 0) + 1
            )
            if status is not None and status != plan[index]["expect"]:
                unexpected += 1

    dedup = _dedup_delta(metrics_before, metrics_after)
    dedup_hits = sum(dedup.values())
    ok_responses = sum(
        1 for r in all_results if r["status"] == 200
    )

    verification = {"compared": 0, "mismatches": 0}
    if verify:
        first_ok: Dict[int, Dict[str, Any]] = {}
        for index, result in enumerate(cold_results):
            if result["status"] == 200:
                first_ok[index] = result["payload"]
        verification = _verify_results(plan, first_ok)

    payload = {
        "schema": BENCH_SCHEMA,
        "requests": requests,
        "concurrency": concurrency,
        "phases": {
            "cold": _phase_stats(cold_results, cold_wall),
            "warm": _phase_stats(warm_results, warm_wall),
        },
        "status_counts": dict(sorted(status_counts.items())),
        "dropped": dropped,
        "unexpected_statuses": unexpected,
        "dedup": {
            **dedup,
            "total_hits": dedup_hits,
            "rate": round(dedup_hits / ok_responses, 4)
            if ok_responses
            else 0.0,
        },
        "verify": verification,
        "ok": (
            dropped == 0
            and unexpected == 0
            and verification["mismatches"] == 0
            and dedup_hits > 0
        ),
    }
    if trace_out:
        write_chrome_trace(trace_out, TRACER.drain())
    return payload


def write_loadgen(path: str, payload: Dict[str, Any]) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_loadgen(payload: Dict[str, Any]) -> str:
    cold = payload["phases"]["cold"]
    warm = payload["phases"]["warm"]
    dedup = payload["dedup"]
    verify = payload["verify"]
    lines = [
        "service loadgen "
        f"({payload['requests']} requests x2 phases, "
        f"concurrency {payload['concurrency']})",
        f"{'phase':>6}{'reqs':>7}{'wall s':>9}{'req/s':>9}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'p99 ms':>9}",
    ]
    for name, stats in (("cold", cold), ("warm", warm)):
        lines.append(
            f"{name:>6}{stats['requests']:>7}{stats['wall_s']:>9.2f}"
            f"{stats['requests_per_s']:>9.1f}{stats['p50_ms']:>9.2f}"
            f"{stats.get('p95_ms', 0.0):>9.2f}"
            f"{stats['p99_ms']:>9.2f}"
        )
    lines.append(
        f"dropped={payload['dropped']} "
        f"unexpected={payload['unexpected_statuses']} "
        f"statuses={payload['status_counts']}"
    )
    lines.append(
        "dedup: "
        + " ".join(f"{k}={dedup[k]}" for k in _DEDUP_COUNTERS)
        + f" rate={dedup['rate']:.2%}"
    )
    lines.append(
        f"verify: {verify['compared']} compared, "
        f"{verify['mismatches']} mismatches"
    )
    lines.append("RESULT: " + ("ok" if payload["ok"] else "FAILED"))
    return "\n".join(lines)

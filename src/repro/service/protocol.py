"""Wire protocol of the allocation service.

Three POST endpoints share one request shape::

    {
      "kernel": ".kernel saxpy\\n...",      # IR text, or
      "benchmark": "matrixmul",             # a registry benchmark name
      "scale": 1.0,                         # benchmark only
      "warps": [{"live_in": {"R0": 0}, "max_instructions": 200000}],
      "scheme": {"kind": "sw_lrf", "entries_per_thread": 3,
                 "split_lrf": true}
    }

``/v1/evaluate`` accepts any scheme and returns the engine's
evaluation record (see :mod:`repro.engine.records`) verbatim under
``"record"`` — byte-identical to what the direct engine path computes.
``/v1/allocate`` requires a software scheme and returns the allocation
summary, the per-strand report, and the annotation document of
:mod:`repro.alloc.serialize`.  ``/v1/tune`` replaces the fixed
``"scheme"`` with search parameters (``strategy``, ``budget``,
``seed``, ``objective``, and an optional ``space`` restriction) and
returns the tuner payload of :func:`repro.tuner.runner.run_tune` —
best config, explored frontier, and search trace.

Every request normalises to a :class:`ServiceJob`: a canonical,
picklable job payload plus a content fingerprint.  The fingerprint
hashes the *parsed* kernel's content (so two textual spellings of one
kernel deduplicate), the canonical warp JSON, and the scheme — it is
the key for in-flight dedup, the in-memory result memo, and the
on-disk cache.

Errors map to HTTP statuses through the exception hierarchy rooted at
:class:`ServiceFault`; handlers never leak tracebacks to clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..engine.hashing import dataclass_fingerprint, digest, json_fingerprint
from ..ir.parser import AsmSyntaxError, parse_kernels
from ..ir.registers import parse_register
from ..sim.executor import WarpInput
from ..sim.schemes import Scheme, SchemeKind
from ..workloads.suites import BENCHMARK_NAMES

#: Request-shape limits (pre-admission, so malformed or abusive
#: requests are rejected before any CPU-bound work is queued).
MAX_KERNEL_TEXT = 256 * 1024
MAX_WARPS = 64
MAX_WARP_INSTRUCTIONS = 1_000_000
MAX_SCALE = 64.0
#: Distinct-evaluation ceiling for one ``/v1/tune`` request: the
#: search is CPU-bound per candidate, so the cap bounds worst-case
#: worker occupancy the way MAX_WARP_INSTRUCTIONS bounds a trace walk.
MAX_TUNE_BUDGET = 256
MAX_TUNE_SEED = 2**32 - 1

_SCHEME_KINDS = {kind.value: kind for kind in SchemeKind}
_SCHEME_BOOL_FIELDS = (
    "split_lrf",
    "enable_partial_ranges",
    "enable_read_operands",
    "allow_forward_branches",
    "flush_on_backward_branch",
    "assume_persistent_strands",
)


class ServiceFault(Exception):
    """Base of every fault the service reports to a client."""

    status = 500
    error_type = "internal_error"

    def __init__(
        self, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "error": {"type": self.error_type, "message": str(self)}
        }
        if self.retry_after is not None:
            payload["error"]["retry_after"] = self.retry_after
        return payload


class BadRequest(ServiceFault):
    status = 400
    error_type = "bad_request"


class ParseError(BadRequest):
    """The kernel text did not parse; the message is the clean
    :class:`AsmSyntaxError` diagnostic, never a traceback."""

    error_type = "parse_error"


class Overloaded(ServiceFault):
    status = 429
    error_type = "overloaded"


class Draining(ServiceFault):
    status = 503
    error_type = "draining"


class RequestTimeout(ServiceFault):
    status = 504
    error_type = "timeout"


# -- scheme codec ----------------------------------------------------------


def scheme_to_json(scheme: Scheme) -> Dict[str, Any]:
    return {
        "kind": scheme.kind.value,
        "entries_per_thread": scheme.entries_per_thread,
        "split_lrf": scheme.split_lrf,
        "lrf_banks": scheme.lrf_banks,
        "enable_partial_ranges": scheme.enable_partial_ranges,
        "enable_read_operands": scheme.enable_read_operands,
        "allow_forward_branches": scheme.allow_forward_branches,
        "flush_on_backward_branch": scheme.flush_on_backward_branch,
        "assume_persistent_strands": scheme.assume_persistent_strands,
    }


def scheme_from_json(obj: Any) -> Scheme:
    if not isinstance(obj, dict):
        raise BadRequest("'scheme' must be an object")
    unknown = set(obj) - {
        "kind", "entries_per_thread", "lrf_banks", *_SCHEME_BOOL_FIELDS
    }
    if unknown:
        raise BadRequest(
            f"unknown scheme field(s): {', '.join(sorted(unknown))}"
        )
    kind_name = obj.get("kind")
    kind = _SCHEME_KINDS.get(kind_name)
    if kind is None:
        raise BadRequest(
            f"unknown scheme kind {kind_name!r}; "
            f"known: {', '.join(sorted(_SCHEME_KINDS))}"
        )
    entries = obj.get("entries_per_thread", 3)
    if not isinstance(entries, int) or isinstance(entries, bool):
        raise BadRequest("'entries_per_thread' must be an integer")
    kwargs: Dict[str, Any] = {}
    if "lrf_banks" in obj:
        banks = obj["lrf_banks"]
        if (
            not isinstance(banks, int)
            or isinstance(banks, bool)
            or not 1 <= banks <= 3
        ):
            raise BadRequest("'lrf_banks' must be an integer in 1..3")
        kwargs["lrf_banks"] = banks
    for name in _SCHEME_BOOL_FIELDS:
        if name in obj:
            if not isinstance(obj[name], bool):
                raise BadRequest(f"{name!r} must be a boolean")
            kwargs[name] = obj[name]
    try:
        return Scheme(kind, entries, **kwargs)
    except ValueError as error:
        raise BadRequest(str(error)) from None


# -- warp codec ------------------------------------------------------------


def warps_from_json(obj: Any) -> List[WarpInput]:
    """Build concrete :class:`WarpInput` objects from warp JSON."""
    canonical = canonical_warps(obj)
    inputs: List[WarpInput] = []
    for warp in canonical:
        live_in = {
            parse_register(name): value
            for name, value in warp["live_in"].items()
        }
        inputs.append(
            WarpInput(
                live_in_values=live_in,
                max_instructions=warp["max_instructions"],
            )
        )
    return inputs


def canonical_warps(obj: Any) -> List[Dict[str, Any]]:
    """Validate warp JSON and normalise it for fingerprinting."""
    if obj is None:
        obj = [{}]
    if not isinstance(obj, list) or not obj:
        raise BadRequest("'warps' must be a non-empty list")
    if len(obj) > MAX_WARPS:
        raise BadRequest(f"at most {MAX_WARPS} warps per request")
    canonical: List[Dict[str, Any]] = []
    for index, warp in enumerate(obj):
        if not isinstance(warp, dict):
            raise BadRequest(f"warps[{index}] must be an object")
        unknown = set(warp) - {"live_in", "max_instructions"}
        if unknown:
            raise BadRequest(
                f"warps[{index}]: unknown field(s): "
                f"{', '.join(sorted(unknown))}"
            )
        live_in = warp.get("live_in", {})
        if not isinstance(live_in, dict):
            raise BadRequest(f"warps[{index}].live_in must be an object")
        clean: Dict[str, Any] = {}
        for name, value in live_in.items():
            try:
                register = parse_register(str(name))
            except ValueError as error:
                raise BadRequest(
                    f"warps[{index}].live_in: {error}"
                ) from None
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                raise BadRequest(
                    f"warps[{index}].live_in[{name!r}] must be a number"
                )
            clean[str(register)] = value
        max_instructions = warp.get("max_instructions", 200_000)
        if (
            not isinstance(max_instructions, int)
            or isinstance(max_instructions, bool)
            or not 1 <= max_instructions <= MAX_WARP_INSTRUCTIONS
        ):
            raise BadRequest(
                f"warps[{index}].max_instructions must be an integer "
                f"in 1..{MAX_WARP_INSTRUCTIONS}"
            )
        canonical.append(
            {
                "live_in": dict(sorted(clean.items())),
                "max_instructions": max_instructions,
            }
        )
    return canonical


# -- tune codec ------------------------------------------------------------

_TUNE_FIELDS = ("strategy", "budget", "seed", "objective", "space")


def canonical_tune(body: Dict[str, Any]) -> Dict[str, Any]:
    """Validate the tune-specific request fields and canonicalise them.

    The returned block is what workers replay
    (:func:`repro.tuner.runner.run_tune` arguments) *and* what the
    fingerprint hashes; the search space is resolved to its explicit
    per-axis value lists, so two spellings of one subspace — or an
    omitted axis vs. its full default list — deduplicate.
    """
    from ..tuner.objective import OBJECTIVES
    from ..tuner.space import space_from_dict
    from ..tuner.strategies import STRATEGY_NAMES

    strategy = body.get("strategy", "evolutionary")
    if strategy not in STRATEGY_NAMES:
        raise BadRequest(
            f"unknown strategy {strategy!r}; "
            f"known: {', '.join(sorted(STRATEGY_NAMES))}"
        )
    objective = body.get("objective", "energy")
    if objective not in OBJECTIVES:
        raise BadRequest(
            f"unknown objective {objective!r}; "
            f"known: {', '.join(sorted(OBJECTIVES))}"
        )
    budget = body.get("budget", 64)
    if (
        not isinstance(budget, int)
        or isinstance(budget, bool)
        or not 1 <= budget <= MAX_TUNE_BUDGET
    ):
        raise BadRequest(
            f"'budget' must be an integer in 1..{MAX_TUNE_BUDGET}"
        )
    seed = body.get("seed", 0)
    if (
        not isinstance(seed, int)
        or isinstance(seed, bool)
        or not 0 <= seed <= MAX_TUNE_SEED
    ):
        raise BadRequest(f"'seed' must be an integer in 0..{MAX_TUNE_SEED}")
    space_json = body.get("space")
    try:
        space = space_from_dict(
            space_json if space_json is not None else {}
        )
    except ValueError as error:
        raise BadRequest(f"'space': {error}") from None
    return {
        "strategy": strategy,
        "budget": budget,
        "seed": seed,
        "objective": objective,
        "space": {"parameters": space.to_dict()["parameters"]},
    }


# -- request normalisation -------------------------------------------------


@dataclass(frozen=True)
class ServiceJob:
    """One normalised, deduplicatable unit of service work.

    ``payload`` is a plain JSON-able dict — the only thing shipped to
    pool workers (see :func:`repro.service.pipeline.run_service_job`);
    ``fingerprint`` keys dedup, memo, and disk cache.
    """

    op: str
    fingerprint: str
    payload: Dict[str, Any]


def normalize_request(op: str, body: Any) -> ServiceJob:
    """Validate a request body and reduce it to a :class:`ServiceJob`.

    Raises :class:`BadRequest` (or :class:`ParseError`) with a clean,
    client-facing message on any invalid input.
    """
    if op not in ("allocate", "evaluate", "tune"):
        raise BadRequest(f"unknown operation {op!r}")
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    allowed = {"kernel", "benchmark", "scale", "warps", "scheme"}
    if op == "tune":
        # The search replaces the fixed scheme: tune requests carry the
        # search parameters instead.
        if "scheme" in body:
            raise BadRequest(
                "'scheme' does not apply to tune; the search space "
                "replaces it"
            )
        allowed = {"kernel", "benchmark", "scale", "warps", *_TUNE_FIELDS}
    unknown = set(body) - allowed
    if unknown:
        raise BadRequest(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )

    tune_block: Optional[Dict[str, Any]] = None
    scheme_json: Optional[Dict[str, Any]] = None
    if op == "tune":
        tune_block = canonical_tune(body)
        work_fp = json_fingerprint(tune_block)
    else:
        scheme = scheme_from_json(body.get("scheme", {"kind": "sw_lrf"}))
        if op == "allocate" and not scheme.kind.is_software:
            raise BadRequest(
                "allocate requires a software scheme "
                "(kind 'sw' or 'sw_lrf')"
            )
        scheme_json = scheme_to_json(scheme)
        work_fp = dataclass_fingerprint(scheme)

    kernel_text = body.get("kernel")
    benchmark = body.get("benchmark")
    if (kernel_text is None) == (benchmark is None):
        raise BadRequest(
            "exactly one of 'kernel' (IR text) or 'benchmark' is required"
        )

    if benchmark is not None:
        if not isinstance(benchmark, str):
            raise BadRequest("'benchmark' must be a string")
        if benchmark.lower() not in BENCHMARK_NAMES:
            raise BadRequest(f"unknown benchmark {benchmark!r}")
        if "warps" in body:
            raise BadRequest(
                "'warps' applies only to IR-text kernels; benchmarks "
                "carry their own warp inputs"
            )
        scale = body.get("scale", 1.0)
        if (
            not isinstance(scale, (int, float))
            or isinstance(scale, bool)
            or not 0.0 < float(scale) <= MAX_SCALE
        ):
            raise BadRequest(f"'scale' must be a number in (0, {MAX_SCALE}]")
        payload = {
            "op": op,
            "benchmark": benchmark.lower(),
            "scale": float(scale),
        }
        if tune_block is not None:
            payload["tune"] = tune_block
        else:
            payload["scheme"] = scheme_json
        fingerprint = digest(
            "service", op, "benchmark", benchmark.lower(),
            repr(float(scale)), work_fp,
        )
        return ServiceJob(op, fingerprint, payload)

    if not isinstance(kernel_text, str):
        raise BadRequest("'kernel' must be a string of IR text")
    if len(kernel_text) > MAX_KERNEL_TEXT:
        raise BadRequest(
            f"kernel text exceeds {MAX_KERNEL_TEXT} characters"
        )
    if "scale" in body:
        raise BadRequest("'scale' applies only to benchmark requests")
    if op == "allocate" and "warps" in body:
        # Allocation is static: warps would fragment the dedup key
        # without changing the result.
        raise BadRequest("'warps' applies only to evaluate requests")
    kernel_fp, warps = _parse_kernel_request(kernel_text, body.get("warps"))
    payload = {
        "op": op,
        "kernel": kernel_text,
    }
    if tune_block is not None:
        payload["tune"] = tune_block
    else:
        payload["scheme"] = scheme_json
    parts = ["service", op, "kernel", kernel_fp, work_fp]
    if op in ("evaluate", "tune"):
        payload["warps"] = warps
        parts.append(json_fingerprint(warps))
    return ServiceJob(op, digest(*parts), payload)


def _parse_kernel_request(
    kernel_text: str, warps_json: Any
) -> Tuple[str, List[Dict[str, Any]]]:
    """Parse the kernel for validation + fingerprinting.

    The parsed kernel is discarded — workers re-parse from the text —
    but parsing here means malformed requests fail with 400 before
    anything is queued, and the fingerprint is the *content*
    fingerprint, so re-spellings of one kernel deduplicate.
    """
    try:
        kernels = parse_kernels(kernel_text)
    except AsmSyntaxError as error:
        raise ParseError(str(error)) from None
    if len(kernels) != 1:
        raise ParseError(
            f"expected exactly 1 kernel, found {len(kernels)}"
        )
    warps = canonical_warps(warps_json)
    return kernels[0].content_fingerprint(), warps

"""Client library for the allocation service.

Two clients share one request surface:

* :class:`ServiceClient` — synchronous, one ``http.client`` connection
  per call; the convenient choice for scripts and tests.
* :class:`AsyncServiceClient` — a persistent keep-alive connection on
  asyncio streams; what :mod:`repro.service.loadgen` drives hundreds
  of concurrent requests through.

Both return decoded JSON payloads.  Non-2xx responses raise
:class:`ServiceError` carrying the HTTP status, the server's error
type/message, and ``retry_after`` when the server asked to back off
(429).  The ``*_raw`` variants return ``(status, payload)`` without
raising — the load generator uses those to count expected failures.

With ``retries`` > 0, the high-level call surfaces retry shed load
(429) and drain/failover blips (503, connection errors) with capped
exponential backoff.  The server's ``Retry-After`` is honoured when
present; otherwise the delay is ``base * 2**attempt`` (capped) with
jitter drawn from a **seeded** ``random.Random`` — never the
module-level ``random`` state — so loadgen plans and test runs stay
reproducible end to end.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
from typing import Any, Dict, Optional, Tuple

from ..sim.schemes import Scheme
from .protocol import scheme_to_json

#: Statuses worth retrying: shed load and not-yet/no-longer-available.
RETRYABLE_STATUSES = (429, 503)


def backoff_delay(
    attempt: int,
    retry_after: Optional[float],
    *,
    base_s: float,
    cap_s: float,
    rng: random.Random,
) -> float:
    """Delay before retry ``attempt`` (0-based).

    An explicit server ``Retry-After`` wins (capped); otherwise capped
    exponential backoff with deterministic half-width jitter from the
    caller's seeded RNG.
    """
    if retry_after is not None:
        return max(0.0, min(float(retry_after), cap_s))
    window = min(cap_s, base_s * (2.0 ** attempt))
    return window * (0.5 + 0.5 * rng.random())


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"HTTP {status} [{error_type}]: {message}")
        self.status = status
        self.error_type = error_type
        self.message = message
        self.retry_after = retry_after


def _error_from_payload(status: int, payload: Any) -> ServiceError:
    error = payload.get("error", {}) if isinstance(payload, dict) else {}
    return ServiceError(
        status,
        error.get("type", "unknown"),
        error.get("message", "no message"),
        retry_after=error.get("retry_after"),
    )


def _request_body(
    *,
    kernel: Optional[str],
    benchmark: Optional[str],
    scale: Optional[float],
    warps: Optional[list],
    scheme: Any,
) -> Dict[str, Any]:
    body: Dict[str, Any] = {}
    if kernel is not None:
        body["kernel"] = kernel
    if benchmark is not None:
        body["benchmark"] = benchmark
    if scale is not None:
        body["scale"] = scale
    if warps is not None:
        body["warps"] = warps
    if scheme is not None:
        body["scheme"] = (
            scheme_to_json(scheme)
            if isinstance(scheme, Scheme)
            else scheme
        )
    return body


class ServiceClient:
    """Synchronous client: one connection per call, no dependencies."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8077,
        timeout: float = 60.0,
        *,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random(backoff_seed)

    def _delay(self, attempt: int, retry_after: Optional[float]) -> float:
        return backoff_delay(
            attempt,
            retry_after,
            base_s=self.backoff_base_s,
            cap_s=self.backoff_cap_s,
            rng=self._rng,
        )

    def request_raw(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Any]:
        """One HTTP exchange; returns (status, decoded payload)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8")
                if body is not None
                else None
            )
            headers = {"Content-Type": "application/json"}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data.decode("utf-8"))
            except ValueError:
                decoded = {"raw": data.decode("utf-8", "replace")}
            return response.status, decoded
        finally:
            connection.close()

    def _call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        attempt = 0
        while True:
            retry_after: Optional[float] = None
            try:
                status, payload = self.request_raw(method, path, body)
            except OSError:
                if attempt >= self.retries:
                    raise
            else:
                if status < 400:
                    return payload
                error = _error_from_payload(status, payload)
                if (
                    attempt >= self.retries
                    or status not in RETRYABLE_STATUSES
                ):
                    raise error
                retry_after = error.retry_after
            time.sleep(self._delay(attempt, retry_after))
            attempt += 1

    def healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/healthz")

    def cluster_healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/cluster/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._call("GET", "/metrics")

    def allocate(
        self,
        *,
        kernel: Optional[str] = None,
        benchmark: Optional[str] = None,
        scale: Optional[float] = None,
        scheme: Any = None,
    ) -> Dict[str, Any]:
        return self._call(
            "POST",
            "/v1/allocate",
            _request_body(
                kernel=kernel, benchmark=benchmark, scale=scale,
                warps=None, scheme=scheme,
            ),
        )

    def evaluate(
        self,
        *,
        kernel: Optional[str] = None,
        benchmark: Optional[str] = None,
        scale: Optional[float] = None,
        warps: Optional[list] = None,
        scheme: Any = None,
    ) -> Dict[str, Any]:
        return self._call(
            "POST",
            "/v1/evaluate",
            _request_body(
                kernel=kernel, benchmark=benchmark, scale=scale,
                warps=warps, scheme=scheme,
            ),
        )

    def tune(
        self,
        *,
        kernel: Optional[str] = None,
        benchmark: Optional[str] = None,
        scale: Optional[float] = None,
        warps: Optional[list] = None,
        strategy: Optional[str] = None,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        objective: Optional[str] = None,
        space: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body = _request_body(
            kernel=kernel, benchmark=benchmark, scale=scale,
            warps=warps, scheme=None,
        )
        for name, value in (
            ("strategy", strategy),
            ("budget", budget),
            ("seed", seed),
            ("objective", objective),
            ("space", space),
        ):
            if value is not None:
                body[name] = value
        return self._call("POST", "/v1/tune", body)


def wait_until_healthy(
    host: str, port: int, timeout: float = 15.0, interval: float = 0.1
) -> bool:
    """Poll ``/healthz`` until the service answers or time runs out."""
    client = ServiceClient(host, port, timeout=max(interval, 1.0))
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.healthz().get("status") in ("ok", "draining"):
                return True
        except (OSError, ServiceError, ValueError):
            pass
        time.sleep(interval)
    return False


class AsyncServiceClient:
    """Persistent keep-alive connection on raw asyncio streams."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8077,
        timeout: float = 60.0,
        *,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random(backoff_seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        """Open the keep-alive connection eagerly (loadgen pre-warms
        its connections so connect latency never lands inside a
        measured phase)."""
        await self._connect()

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request_raw(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Any]:
        """One exchange on the persistent connection (reconnects once
        if the server closed it between requests)."""
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        for attempt in (0, 1):
            await self._connect()
            try:
                return await asyncio.wait_for(
                    self._exchange(method, path, payload), self.timeout
                )
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                OSError,
            ):
                await self.close()
                if attempt:
                    raise
        raise RuntimeError("unreachable")

    async def _exchange(
        self, method: str, path: str, payload: bytes
    ) -> Tuple[int, Any]:
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            decoded = json.loads(body.decode("utf-8"))
        except ValueError:
            decoded = {"raw": body.decode("utf-8", "replace")}
        return status, decoded

    async def request_with_retries(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Any, int]:
        """Like :meth:`request_raw` with the retry loop applied.

        Returns ``(status, payload, retries)`` without raising on HTTP
        errors — the final status is returned even when it is a 4xx/5xx
        — so callers (the load generator) can record how many times the
        429/503 shed-load path was hit for one logical request.
        Connection errors still raise once retries are exhausted.
        """
        attempt = 0
        while True:
            retry_after: Optional[float] = None
            try:
                status, payload = await self.request_raw(
                    method, path, body
                )
            except OSError:
                if attempt >= self.retries:
                    raise
            else:
                if (
                    status not in RETRYABLE_STATUSES
                    or attempt >= self.retries
                ):
                    return status, payload, attempt
                retry_after = _error_from_payload(
                    status, payload
                ).retry_after
            await asyncio.sleep(
                backoff_delay(
                    attempt,
                    retry_after,
                    base_s=self.backoff_base_s,
                    cap_s=self.backoff_cap_s,
                    rng=self._rng,
                )
            )
            attempt += 1

    async def call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        attempt = 0
        while True:
            retry_after: Optional[float] = None
            try:
                status, payload = await self.request_raw(
                    method, path, body
                )
            except OSError:
                if attempt >= self.retries:
                    raise
            else:
                if status < 400:
                    return payload
                error = _error_from_payload(status, payload)
                if (
                    attempt >= self.retries
                    or status not in RETRYABLE_STATUSES
                ):
                    raise error
                retry_after = error.retry_after
            await asyncio.sleep(
                backoff_delay(
                    attempt,
                    retry_after,
                    base_s=self.backoff_base_s,
                    cap_s=self.backoff_cap_s,
                    rng=self._rng,
                )
            )
            attempt += 1

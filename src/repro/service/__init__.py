"""Allocation-as-a-service: the compile→allocate→evaluate pipeline
behind a JSON HTTP API.

The package layers, bottom up:

* :mod:`repro.service.protocol` — request/response schemas, the error
  taxonomy (HTTP status per error class), and content fingerprints for
  request deduplication;
* :mod:`repro.service.pipeline` — the worker-side compute: a picklable
  job dict in, a JSON result dict out, with per-process memos
  mirroring :mod:`repro.engine.jobs`;
* :mod:`repro.service.batcher` — micro-batching dispatcher with
  in-flight deduplication, bounded admission (backpressure), and
  per-request timeouts;
* :mod:`repro.service.httpd` — a hand-rolled HTTP/1.1 server on
  asyncio streams (stdlib only, no ``http.server``);
* :mod:`repro.service.server` — the service itself: routing, result
  memo + :class:`repro.engine.cache.DiskCache` reuse, metrics,
  graceful drain;
* :mod:`repro.service.client` — sync and async client libraries;
* :mod:`repro.service.loadgen` — the load-generator benchmark behind
  ``repro loadgen``;
* :mod:`repro.service.cluster` — the scale-out tier: a consistent-hash
  routing coordinator over N shard servers (``repro cluster``).
"""

from .client import AsyncServiceClient, ServiceClient, ServiceError
from .cluster import ClusterConfig, ClusterCoordinator, ConsistentHashRing
from .server import ServiceConfig, ServiceServer

__all__ = [
    "AsyncServiceClient",
    "ClusterConfig",
    "ClusterCoordinator",
    "ConsistentHashRing",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
]

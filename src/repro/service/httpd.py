"""Hand-rolled HTTP/1.1 on asyncio streams (stdlib only).

Implements exactly the subset the allocation service needs: GET and
POST, ``Content-Length`` bodies, persistent connections (HTTP/1.1
keep-alive semantics, honouring ``Connection: close``), and bounded
request sizes.  No ``http.server``, no chunked transfer, no TLS — the
service is an internal tier behind whatever terminates the edge.

The server is handler-agnostic: one async callable maps
:class:`HttpRequest` to :class:`HttpResponse`.  Handler exceptions
become opaque 500s (the traceback stays server-side); protocol
violations become 400/405/413/431 and close the connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Set

#: Streams read limit — also bounds the request line and each header.
_READ_LIMIT = 64 * 1024
_MAX_HEADERS = 100

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    method: str
    target: str
    headers: Dict[str, str]
    body: bytes

    def json(self):
        """Decoded JSON body; raises ``ValueError`` on malformed UTF-8
        or JSON (the handler maps it to 400)."""
        return json.loads(self.body.decode("utf-8"))


@dataclass
class HttpResponse:
    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    close: bool = False


def json_response(
    status: int, payload, headers: Optional[Dict[str, str]] = None
) -> HttpResponse:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return HttpResponse(status, body, headers=dict(headers or {}))


class _ProtocolError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class AsyncHttpServer:
    """One listening socket, one handler, tracked connections."""

    def __init__(
        self,
        handler: Callable[[HttpRequest], Awaitable[HttpResponse]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = 1 << 20,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.active_requests = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=_READ_LIMIT,
        )
        # Ephemeral port (port=0) resolves at bind time.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop_accepting(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close_idle_connections(self) -> None:
        """Tear down kept-alive connections (drain's last step)."""
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass

    # -- connection loop ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _ProtocolError as error:
                    await self._write_response(
                        writer,
                        json_response(
                            error.status,
                            {"error": {
                                "type": "protocol_error",
                                "message": str(error),
                            }},
                        ),
                        close=True,
                    )
                    return
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    return
                if request is None:
                    return
                self.active_requests += 1
                try:
                    try:
                        response = await self.handler(request)
                    except Exception:
                        response = json_response(
                            500,
                            {"error": {
                                "type": "internal_error",
                                "message": "internal server error",
                            }},
                        )
                finally:
                    self.active_requests -= 1
                wants_close = (
                    response.close
                    or request.headers.get("connection", "").lower()
                    == "close"
                )
                await self._write_response(
                    writer, response, close=wants_close
                )
                if wants_close:
                    return
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[HttpRequest]:
        line = await reader.readline()
        if not line:
            return None  # clean EOF between requests
        try:
            method, target, version = (
                line.decode("latin-1").rstrip("\r\n").split(" ")
            )
        except ValueError:
            raise _ProtocolError(400, "malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _ProtocolError(400, f"unsupported version {version!r}")

        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise _ProtocolError(431, "too many headers")
            try:
                name, value = line.decode("latin-1").split(":", 1)
            except ValueError:
                raise _ProtocolError(400, "malformed header") from None
            headers[name.strip().lower()] = value.strip()

        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise _ProtocolError(
                    400, "malformed Content-Length"
                ) from None
            if length < 0:
                raise _ProtocolError(400, "negative Content-Length")
            if length > self.max_body_bytes:
                raise _ProtocolError(
                    413,
                    f"body exceeds {self.max_body_bytes} bytes",
                )
            if length:
                body = await reader.readexactly(length)
        return HttpRequest(method.upper(), target, headers, body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: HttpResponse,
        *,
        close: bool,
    ) -> None:
        reason = REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + response.body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

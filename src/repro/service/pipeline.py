"""Worker-side compute for the allocation service.

:func:`run_service_job` is the only function crossing the process
boundary: a canonical job dict in (see
:func:`repro.service.protocol.normalize_request`), a JSON result dict
out.  Like :mod:`repro.engine.jobs`, nothing heavyweight is pickled —
workers rebuild benchmarks from the registry and re-parse IR text, and
keep per-process memos (parsed kernels, trace sets, allocations) so a
worker that sees several schemes for one kernel traces and allocates
it once.

Jobs are single-scheme, but the allocator's scheme-independent
analysis phase (:mod:`repro.alloc.analysis`) is cached per process by
kernel content fingerprint — so a worker handling N schemes of one
kernel analyses it once and runs only the per-config levels pass N
times, the same sharing the in-process engine gets from
``evaluate_traces_batch``.

Evaluation results embed the engine's record payload verbatim
(:func:`repro.engine.records.record_payload`), which is what makes a
service response byte-comparable to the direct engine path.

Tune jobs run the whole design-space search in the worker
(:func:`repro.tuner.runner.run_tune`) against a per-process
:class:`~repro.engine.ExperimentEngine`, whose record memo carries
candidate evaluations across tune requests landing on the same worker.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

from ..alloc.serialize import annotations_to_dict
from ..engine.hashing import json_fingerprint
from ..engine.records import record_payload
from ..ir.kernel import Kernel
from ..ir.parser import parse_kernels
from ..sim.runner import (
    AllocationMemo,
    TraceSet,
    allocate_for_traces,
    build_traces,
    evaluate_traces,
)
from ..workloads.suites import get_workload
from .protocol import scheme_from_json, warps_from_json

RESULT_SCHEMA = 1

#: Per-worker-process memos.  Keys are content-derived (text digest,
#: registry name + scale), so results never depend on which process
#: computed them.
_KERNELS: Dict[str, Kernel] = {}
_TRACES: Dict[Tuple[str, str], TraceSet] = {}
_BENCH_TRACES: Dict[Tuple[str, float], TraceSet] = {}
_ALLOCATIONS: AllocationMemo = {}

#: Per-process engine for tune jobs: the search evaluates dozens of
#: schemes per request, and the engine's record memo carries candidate
#: evaluations across tune requests hitting the same worker.
_TUNE_ENGINE = None


def _tune_engine():
    global _TUNE_ENGINE
    if _TUNE_ENGINE is None:
        from ..engine import ExperimentEngine

        _TUNE_ENGINE = ExperimentEngine()
    return _TUNE_ENGINE


def _probe() -> str:
    """Round-trip probe the server uses to vet the process pool."""
    return "ok"


def _text_kernel(text: str) -> Kernel:
    key = hashlib.sha256(text.encode("utf-8")).hexdigest()
    kernel = _KERNELS.get(key)
    if kernel is None:
        kernel = parse_kernels(text)[0]
        _KERNELS[key] = kernel
    return kernel


def _text_traces(text: str, warps_json: List[Dict[str, Any]]) -> TraceSet:
    kernel = _text_kernel(text)
    key = (kernel.content_fingerprint(), json_fingerprint(warps_json))
    traces = _TRACES.get(key)
    if traces is None:
        traces = build_traces(kernel, warps_from_json(warps_json))
        _TRACES[key] = traces
    return traces


def _benchmark_traces(name: str, scale: float) -> TraceSet:
    key = (name, scale)
    traces = _BENCH_TRACES.get(key)
    if traces is None:
        spec = get_workload(name, scale)
        traces = build_traces(spec.kernel, spec.warp_inputs)
        _BENCH_TRACES[key] = traces
    return traces


def _job_traces(payload: Dict[str, Any]) -> TraceSet:
    if payload.get("benchmark") is not None:
        return _benchmark_traces(payload["benchmark"], payload["scale"])
    return _text_traces(payload["kernel"], payload["warps"])


def run_service_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Compute one normalised service job.  Pure: the result depends
    only on the payload, never on worker state or call order."""
    op = payload["op"]
    if op == "tune":
        from ..tuner import run_tune
        from ..tuner.space import space_from_dict

        tune = payload["tune"]
        traces = _job_traces(payload)
        result = run_tune(
            traces,
            space=space_from_dict(tune["space"]),
            strategy=tune["strategy"],
            objective=tune["objective"],
            budget=tune["budget"],
            seed=tune["seed"],
            engine=_tune_engine(),
        )
        return {
            "schema": RESULT_SCHEMA,
            "op": op,
            "kernel": result["kernel"],
            "tuner": result,
        }
    scheme = scheme_from_json(payload["scheme"])
    if op == "evaluate":
        traces = _job_traces(payload)
        evaluation = evaluate_traces(
            traces, scheme, allocation_memo=_ALLOCATIONS
        )
        return {
            "schema": RESULT_SCHEMA,
            "op": op,
            "kernel": evaluation.kernel_name,
            "scheme": scheme.name,
            "record": record_payload(evaluation),
        }
    if op == "allocate":
        if payload.get("benchmark") is not None:
            kernel = get_workload(
                payload["benchmark"], payload["scale"]
            ).kernel
        else:
            kernel = _text_kernel(payload["kernel"])
        allocation = allocate_for_traces(
            kernel, scheme.allocation_config(), memo=_ALLOCATIONS
        )
        return {
            "schema": RESULT_SCHEMA,
            "op": op,
            "kernel": kernel.name,
            "scheme": scheme.name,
            "summary": allocation.summary(),
            "strands": allocation.strand_report(),
            "annotations": annotations_to_dict(allocation.kernel),
        }
    raise ValueError(f"unknown service op {op!r}")

"""Micro-batching job dispatcher with dedup, admission, and timeouts.

Requests normalise to :class:`~repro.service.protocol.ServiceJob`
before they reach the batcher, so deduplication is a dictionary lookup
on the job fingerprint: concurrent identical requests attach to the
*same* future and the computation runs once.

Dispatch is micro-batched: the dispatcher takes the first queued job,
optionally lingers (``linger_s``) so concurrent requests can coalesce,
then drains everything queued and launches the whole batch at once.
With ``linger_s = 0`` the batch window is a single event-loop
iteration — latency-neutral — while tests and bursty deployments can
widen it for deterministic coalescing.

Admission is bounded by ``max_pending`` *distinct* jobs (dedup'd
waiters are free).  Beyond the bound, :class:`Overloaded` maps to HTTP
429 with ``Retry-After`` — clients shed load instead of queueing
unboundedly.  Per-request timeouts wrap the shared future in
``asyncio.shield``: one slow client's deadline never cancels the
computation other waiters (or the result memo) still want.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from .protocol import Overloaded, RequestTimeout, ServiceJob


class JobBatcher:
    """Coalescing dispatcher over one async ``execute`` callable."""

    def __init__(
        self,
        execute: Callable[[ServiceJob], Awaitable[Dict[str, Any]]],
        *,
        max_pending: int = 64,
        linger_s: float = 0.0,
        metrics=None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._execute = execute
        self.max_pending = max_pending
        self.linger_s = linger_s
        self.metrics = metrics
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._queue: "asyncio.Queue[Optional[Tuple[ServiceJob, asyncio.Future]]]" = (
            asyncio.Queue()
        )
        self._running: set = set()
        self._dispatcher: Optional[asyncio.Task] = None
        self._draining = False
        self._drain_event = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def drain(self, grace_s: float = 30.0) -> bool:
        """Stop accepting, flush the queue, and wait for in-flight work.

        Returns True when everything completed within ``grace_s``;
        on False, unfinished futures are cancelled so waiters fail
        fast rather than hanging.
        """
        self._draining = True
        self._drain_event.set()  # cut any linger window short
        await self._queue.put(None)  # wake a dispatcher idle on the queue
        deadline = asyncio.get_running_loop().time() + grace_s
        while self._inflight or not self._queue.empty():
            if asyncio.get_running_loop().time() >= deadline:
                for future in list(self._inflight.values()):
                    future.cancel()
                self._inflight.clear()
                break
            await asyncio.sleep(0.01)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        return not self._inflight

    # -- submission --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Distinct jobs admitted but not yet completed."""
        return len(self._inflight)

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, amount)

    async def submit(
        self, job: ServiceJob, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Resolve one job, sharing computation with identical peers."""
        future = self._inflight.get(job.fingerprint)
        if future is not None:
            self._count("inflight_dedup_hits")
        else:
            if len(self._inflight) >= self.max_pending:
                self._count("rejected_overload")
                raise Overloaded(
                    f"{len(self._inflight)} jobs pending "
                    f"(limit {self.max_pending}); retry shortly",
                    retry_after=1.0,
                )
            future = asyncio.get_running_loop().create_future()
            self._inflight[job.fingerprint] = future
            self._count("jobs_admitted")
            await self._queue.put((job, future))
        try:
            if timeout is None:
                return await asyncio.shield(future)
            return await asyncio.wait_for(
                asyncio.shield(future), timeout
            )
        except asyncio.TimeoutError:
            self._count("request_timeouts")
            raise RequestTimeout(
                f"request exceeded {timeout:.3f}s; the computation "
                "continues and a retry may hit the result cache"
            ) from None
        except asyncio.CancelledError:
            if future.cancelled():
                # Drain gave up on the job; the *request* was not
                # cancelled, so report a timeout instead of vanishing.
                raise RequestTimeout(
                    "server shut down before completion"
                ) from None
            raise

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [] if first is None else [first]
            if self.linger_s > 0 and not self._draining:
                # Linger to coalesce, but let drain() cut it short so
                # shutdown never waits out the batch window.
                try:
                    await asyncio.wait_for(
                        self._drain_event.wait(), self.linger_s
                    )
                except asyncio.TimeoutError:
                    pass
            while True:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is not None:
                    batch.append(item)
            if not batch:
                continue
            self._count("batches_dispatched")
            self._count("batched_jobs", len(batch))
            if self.metrics is not None:
                self.metrics.gauge(
                    "last_batch_size", float(len(batch))
                )
            for job, future in batch:
                task = asyncio.get_running_loop().create_task(
                    self._run(job, future)
                )
                self._running.add(task)
                task.add_done_callback(self._running.discard)

    async def _run(
        self, job: ServiceJob, future: "asyncio.Future[Dict[str, Any]]"
    ) -> None:
        try:
            result = await self._execute(job)
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            if not future.done():
                future.set_exception(error)
        else:
            if not future.done():
                future.set_result(result)
        finally:
            if self._inflight.get(job.fingerprint) is future:
                del self._inflight[job.fingerprint]

"""The cluster coordinator: a routing front tier over N shards.

Requests flow::

    normalise/route-cache → admission → (front cache) → shard forward

* **Routing** — the request body is hashed once (SHA-256 of the raw
  bytes); a bounded route cache maps ``(op, body-hash)`` to the
  :class:`~repro.service.protocol.ServiceJob` content fingerprint (or
  to the 4xx fault normalisation produced), so the expensive
  normalise/parse work runs once per distinct body.  The fingerprint
  then picks a shard on the consistent hash ring — each kernel's
  memo/disk-cache entry lives on exactly one shard, so dedup hit
  rates survive scale-out.
* **Admission** — global backpressure (``max_pending`` forwards in
  flight → 429 + ``Retry-After``) with per-shard queue-depth
  awareness: a shard already carrying ``per_shard_pending`` forwards
  sheds rather than queues.
* **Failover** — forwards ride persistent keep-alive pools with a
  per-request timeout; on transport failure or a shard-side 5xx the
  (idempotent) job is retried once on the next shard in ring order,
  and the failing shard is marked unhealthy until a background probe
  sees it answer ``/healthz`` again.
* **Hot keys** — fingerprints whose request rate crosses
  ``hot_threshold`` per ``hot_window_s`` are replicated across
  ``replication`` shards (round-robin among ring successors), and
  their 200 responses enter a bounded LRU front cache served straight
  from coordinator memory — hot-key skew stops funnelling through one
  shard, and repeat traffic skips the forward hop entirely.  Front
  cache hits are dedup hits: the response bytes are exactly what the
  owning shard last returned.

``GET /v1/cluster/healthz`` rolls up per-shard health, uptime, and
dedup counters; ``GET /metrics`` serves coordinator metrics as JSON or
Prometheus text (counters carry a ``shard`` label where meaningful).
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ... import __version__
from ...engine.metrics import SCHEMA_VERSION, RunMetrics
from ...obs.registry import (
    PROMETHEUS_CONTENT_TYPE,
    Histogram,
    labeled_name,
    merge_labels,
    render_prometheus,
)
from ...obs.tracer import (
    TRACE_HEADER,
    TRACER,
    carrier_from_header,
    carrier_to_header,
)
from ..httpd import AsyncHttpServer, HttpRequest, HttpResponse, json_response
from ..protocol import (
    Draining,
    Overloaded,
    RequestTimeout,
    ServiceFault,
    normalize_request,
)
from .ring import ConsistentHashRing
from .transport import ShardPool, _RETRYABLE

import hashlib

#: Counters a shard exposes that the cluster rollup aggregates.
SHARD_DEDUP_COUNTERS = (
    "inflight_dedup_hits",
    "service_memo_hits",
    "service_disk_hits",
)


class NoShardAvailable(ServiceFault):
    status = 503
    error_type = "no_shard_available"


@dataclass
class ClusterConfig:
    """Everything ``repro cluster`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8078
    #: Shard addresses, ``host:port`` each, in stable index order.
    shards: Tuple[str, ...] = ()
    #: Shards a *hot* fingerprint is spread across.
    replication: int = 2
    #: Requests per window that make a fingerprint hot.
    hot_threshold: int = 8
    hot_window_s: float = 1.0
    #: How long a fingerprint stays hot after last crossing the rate.
    hot_ttl_s: float = 30.0
    #: Bounded LRU of hot 200-response bytes (0 disables).
    front_cache_entries: int = 4096
    #: Body sightings before a response is front-cache eligible.
    front_cache_threshold: int = 2
    #: Global forwards in flight before 429.
    max_pending: int = 256
    #: Forwards in flight on one shard before shedding.
    per_shard_pending: int = 64
    request_timeout_s: float = 30.0
    connect_timeout_s: float = 5.0
    probe_interval_s: float = 1.0
    pool_connections: int = 32
    max_body_bytes: int = 1 << 20
    drain_grace_s: float = 30.0
    #: Bounded LRU of (op, body-hash) → fingerprint/fault.
    route_cache_entries: int = 8192
    announce: bool = False


@dataclass
class ShardState:
    """Coordinator-side view of one shard."""

    index: int
    address: str
    pool: ShardPool
    healthy: bool = True
    consecutive_failures: int = 0
    last_error: Optional[str] = None
    #: The shard's self-reported identity (``--shard-of K/N``), learnt
    #: from its healthz; falls back to the address.
    label: Optional[str] = None
    inflight: int = 0
    requests: int = 0
    retries: int = 0
    errors: int = 0
    last_healthz: Optional[Dict[str, Any]] = None

    @property
    def display(self) -> str:
        return self.label or self.address


@dataclass
class _Route:
    """Cached normalisation of one distinct request body."""

    fingerprint: Optional[str] = None
    fault: Optional[Tuple[int, str, str, Optional[float]]] = None
    #: Total sightings of this body (front-cache eligibility).
    seen: int = 0
    #: Sliding-window hot tracking: [window_start, window_count].
    window: List[float] = field(default_factory=lambda: [0.0, 0])


class ClusterCoordinator:
    """One coordinator instance; usable from a thread (tests) or CLI."""

    def __init__(
        self, config: ClusterConfig, metrics: Optional[RunMetrics] = None
    ) -> None:
        if not config.shards:
            raise ValueError("cluster needs at least one shard address")
        self.config = config
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.ring = ConsistentHashRing(config.shards)
        self.shards: Dict[str, ShardState] = {}
        for index, address in enumerate(config.shards):
            host, _, port_text = address.rpartition(":")
            self.shards[address] = ShardState(
                index=index,
                address=address,
                pool=ShardPool(
                    host or "127.0.0.1",
                    int(port_text),
                    max_connections=config.pool_connections,
                    connect_timeout_s=config.connect_timeout_s,
                ),
            )
        self._routes: "OrderedDict[Tuple[str, bytes], _Route]" = (
            OrderedDict()
        )
        self._front: "OrderedDict[str, Tuple[int, str, bytes]]" = (
            OrderedDict()
        )
        self._hot_until: Dict[str, float] = {}
        self._hot_rr: Dict[str, int] = {}
        self._pending = 0
        self.draining = False
        self._http: Optional[AsyncHttpServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._probe_task: Optional[asyncio.Task] = None
        self.started = threading.Event()
        self.port: Optional[int] = None
        self._startup_error: Optional[BaseException] = None
        self._started_monotonic = time.monotonic()
        self.metrics.histogram("cluster_request_seconds")

    # -- lifecycle ---------------------------------------------------------

    def run_forever(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:
            self._startup_error = error
            self.started.set()
            raise

    def request_shutdown(self) -> None:
        loop, event = self._loop, self._shutdown
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._http = AsyncHttpServer(
            self.handle,
            self.config.host,
            self.config.port,
            max_body_bytes=self.config.max_body_bytes,
        )
        await self._http.start()
        self.port = self._http.port
        self._install_signal_handlers()
        self._probe_task = self._loop.create_task(self._probe_loop())
        self.started.set()
        if self.config.announce:
            print(
                f"repro cluster coordinator on "
                f"http://{self.config.host}:{self.port} "
                f"({len(self.shards)} shards, "
                f"replication={self.config.replication})",
                file=sys.stderr,
                flush=True,
            )
        await self._shutdown.wait()
        await self._drain()

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None and self._shutdown is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                return

    async def _drain(self) -> None:
        self.draining = True
        assert self._http is not None
        await self._http.stop_accepting()
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_grace_s
        )
        while (
            self._pending or self._http.active_requests
        ) and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        self._http.close_idle_connections()
        for shard in self.shards.values():
            shard.pool.close()

    # -- health probing ----------------------------------------------------

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe(shard) for shard in self.shards.values()),
                return_exceptions=True,
            )
            await asyncio.sleep(self.config.probe_interval_s)

    async def _probe(self, shard: ShardState) -> None:
        try:
            status, _, body = await shard.pool.request(
                "GET", "/healthz", timeout=2.0
            )
            if status != 200:
                raise ConnectionError(f"healthz HTTP {status}")
            payload = json.loads(body.decode("utf-8"))
        except (asyncio.TimeoutError, ValueError, *_RETRYABLE) as error:
            self._mark_failure(shard, f"{type(error).__name__}: {error}")
            return
        shard.last_healthz = payload
        if shard.label is None and payload.get("shard"):
            shard.label = str(payload["shard"])
        if payload.get("status") == "ok":
            self._mark_success(shard)
        else:
            # A draining shard answers healthz but rejects jobs.
            self._mark_failure(
                shard, f"shard status {payload.get('status')!r}"
            )

    def _mark_failure(self, shard: ShardState, message: str) -> None:
        shard.consecutive_failures += 1
        shard.last_error = message
        if shard.healthy:
            shard.healthy = False
            self.metrics.count("cluster_shards_marked_unhealthy")

    def _mark_success(self, shard: ShardState) -> None:
        if not shard.healthy:
            self.metrics.count("cluster_shards_recovered")
        shard.healthy = True
        shard.consecutive_failures = 0
        shard.last_error = None

    # -- request handling --------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        started = time.perf_counter()
        path = request.target.split("?", 1)[0]
        carrier = carrier_from_header(request.headers.get(TRACE_HEADER))
        with TRACER.attach(carrier):
            with TRACER.span(
                "cluster.request", method=request.method, path=path
            ) as span:
                response = await self._route_request(request, path)
                if span is not None:
                    span.attributes["status"] = response.status
        self.metrics.observe(
            "cluster_request_seconds", time.perf_counter() - started
        )
        return response

    async def _route_request(
        self, request: HttpRequest, path: str
    ) -> HttpResponse:
        self.metrics.count("cluster_requests")
        try:
            if (request.method, path) == ("GET", "/healthz"):
                return json_response(200, self._health_payload())
            if (request.method, path) == ("GET", "/v1/cluster/healthz"):
                return json_response(200, await self._cluster_health())
            if (request.method, path) == ("GET", "/v1/cluster/metrics"):
                if self._wants_prometheus(request):
                    text = await self._cluster_metrics_prometheus()
                    return HttpResponse(
                        200,
                        text.encode("utf-8"),
                        content_type=PROMETHEUS_CONTENT_TYPE,
                    )
                return json_response(200, await self._cluster_metrics())
            if (request.method, path) == ("GET", "/metrics"):
                if self._wants_prometheus(request):
                    return HttpResponse(
                        200,
                        self.metrics.to_prometheus().encode("utf-8"),
                        content_type=PROMETHEUS_CONTENT_TYPE,
                    )
                return json_response(200, self.metrics.to_dict())
            if path in ("/v1/allocate", "/v1/evaluate", "/v1/tune"):
                if request.method != "POST":
                    return self._error_response(
                        405, "method_not_allowed", f"{path} requires POST"
                    )
                return await self._forward(
                    path.rsplit("/", 1)[1], path, request
                )
            return self._error_response(
                404, "not_found", f"no route for {path}"
            )
        except ServiceFault as fault:
            return self._fault_response(fault)

    async def _forward(
        self, op: str, path: str, request: HttpRequest
    ) -> HttpResponse:
        if self.draining:
            raise Draining("coordinator is draining; no new work accepted")
        route = self._resolve_route(op, request.body)
        if route.fault is not None:
            status, error_type, message, retry_after = route.fault
            self.metrics.count(f"http_{status}")
            payload: Dict[str, Any] = {
                "error": {"type": error_type, "message": message}
            }
            headers: Dict[str, str] = {}
            if retry_after is not None:
                payload["error"]["retry_after"] = retry_after
                headers["Retry-After"] = f"{retry_after:g}"
            return json_response(status, payload, headers)
        fingerprint = route.fingerprint
        assert fingerprint is not None
        hot = self._note_request(route, fingerprint)

        cached = self._front.get(fingerprint)
        if cached is not None:
            self._front.move_to_end(fingerprint)
            self.metrics.count("cluster_front_cache_hits")
            status, content_type, body = cached
            self.metrics.count(f"http_{status}")
            return HttpResponse(status, body, content_type=content_type)

        if self._pending >= self.config.max_pending:
            self.metrics.count("cluster_rejected_overload")
            raise Overloaded(
                f"{self._pending} forwards pending "
                f"(limit {self.config.max_pending}); retry shortly",
                retry_after=1.0,
            )
        return await self._forward_to_shards(
            op, path, request.body, route, fingerprint, hot
        )

    async def _forward_to_shards(
        self,
        op: str,
        path: str,
        body: bytes,
        route: _Route,
        fingerprint: str,
        hot: bool,
    ) -> HttpResponse:
        assert self._loop is not None
        deadline = self._loop.time() + self.config.request_timeout_s
        targets = self._targets(fingerprint, hot)
        shed: Optional[Overloaded] = None
        attempts = 0
        for shard in targets:
            if attempts >= 2:
                break
            if shard.inflight >= self.config.per_shard_pending:
                # Queue-depth awareness: a saturated shard sheds; a
                # replicated key may still land on a quieter replica.
                shed = Overloaded(
                    f"shard {shard.display} at per-shard pending limit "
                    f"({self.config.per_shard_pending}); retry shortly",
                    retry_after=1.0,
                )
                continue
            attempts += 1
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                break
            self._pending += 1
            shard.inflight += 1
            try:
                with TRACER.span(
                    "cluster.forward", shard=shard.index, path=path
                ) as forward_span:
                    trace_headers: Optional[Dict[str, str]] = None
                    if TRACER.enabled:
                        carrier = TRACER.current_carrier()
                        if carrier is not None:
                            trace_headers = {
                                "X-Repro-Trace": carrier_to_header(carrier)
                            }
                    status, headers, payload = await shard.pool.request(
                        "POST",
                        path,
                        body,
                        timeout=remaining,
                        headers=trace_headers,
                    )
                    if forward_span is not None:
                        forward_span.attributes["status"] = status
            except asyncio.TimeoutError:
                self.metrics.count("cluster_request_timeouts")
                raise RequestTimeout(
                    f"no shard response within "
                    f"{self.config.request_timeout_s:.3f}s; the "
                    "computation continues and a retry may hit the "
                    "owning shard's cache"
                ) from None
            except _RETRYABLE as error:
                shard.errors += 1
                self.metrics.count("cluster_shard_errors")
                self._mark_failure(
                    shard, f"{type(error).__name__}: {error}"
                )
                if attempts < 2:
                    shard.retries += 1
                    self.metrics.count("cluster_retries")
                continue
            finally:
                self._pending -= 1
                shard.inflight -= 1
            if status in (500, 502, 503):
                # A draining or crashed-but-listening shard: idempotent
                # job, retry once on the next ring successor.
                shard.errors += 1
                self.metrics.count("cluster_shard_errors")
                self._mark_failure(shard, f"forward HTTP {status}")
                if attempts < 2:
                    shard.retries += 1
                    self.metrics.count("cluster_retries")
                continue
            return self._shard_response(
                shard, route, fingerprint, status, headers, payload
            )
        if shed is not None and attempts == 0:
            raise shed
        self.metrics.count("cluster_no_shard_available")
        raise NoShardAvailable(
            f"no shard could serve {op} after {attempts} attempt(s)",
            retry_after=1.0,
        )

    def _shard_response(
        self,
        shard: ShardState,
        route: _Route,
        fingerprint: str,
        status: int,
        headers: Dict[str, str],
        payload: bytes,
    ) -> HttpResponse:
        self._mark_success(shard)
        shard.requests += 1
        self.metrics.count(
            labeled_name("cluster_shard_requests", shard=str(shard.index))
        )
        self.metrics.count(f"http_{status}")
        if (
            status == 200
            and self.config.front_cache_entries > 0
            and route.seen >= self.config.front_cache_threshold
        ):
            self._front[fingerprint] = (
                status,
                headers.get("content-type", "application/json"),
                payload,
            )
            self._front.move_to_end(fingerprint)
            while len(self._front) > self.config.front_cache_entries:
                self._front.popitem(last=False)
        out_headers: Dict[str, str] = {}
        if "retry-after" in headers:
            out_headers["Retry-After"] = headers["retry-after"]
        return HttpResponse(
            status,
            payload,
            content_type=headers.get("content-type", "application/json"),
            headers=out_headers,
        )

    # -- routing state -----------------------------------------------------

    def _resolve_route(self, op: str, body: bytes) -> _Route:
        key = (op, hashlib.sha256(body).digest())
        route = self._routes.get(key)
        if route is not None:
            self._routes.move_to_end(key)
            self.metrics.count("cluster_route_cache_hits")
            return route
        route = _Route()
        try:
            decoded = json.loads(body.decode("utf-8"))
        except ValueError as error:
            route.fault = (
                400, "bad_request", f"invalid JSON body: {error}", None
            )
        else:
            try:
                route.fingerprint = normalize_request(op, decoded).fingerprint
            except ServiceFault as fault:
                route.fault = (
                    fault.status,
                    fault.error_type,
                    str(fault),
                    fault.retry_after,
                )
        self._routes[key] = route
        while len(self._routes) > self.config.route_cache_entries:
            self._routes.popitem(last=False)
        return route

    def _note_request(self, route: _Route, fingerprint: str) -> bool:
        """Update sighting/hot-rate state; True when the key is hot."""
        now = time.monotonic()
        route.seen += 1
        window = route.window
        if now - window[0] > self.config.hot_window_s:
            window[0] = now
            window[1] = 0
        window[1] += 1
        if window[1] >= self.config.hot_threshold:
            if fingerprint not in self._hot_until:
                self.metrics.count("cluster_hot_keys_promoted")
            self._hot_until[fingerprint] = now + self.config.hot_ttl_s
        expiry = self._hot_until.get(fingerprint)
        if expiry is None:
            return False
        if expiry <= now:
            del self._hot_until[fingerprint]
            self._hot_rr.pop(fingerprint, None)
            return False
        return True

    def _targets(self, fingerprint: str, hot: bool) -> List[ShardState]:
        """Preference-ordered shards for a fingerprint: ring order,
        healthy first; hot keys rotate through their replica set."""
        order = [
            self.shards[address]
            for address in self.ring.lookup_n(
                fingerprint, len(self.shards)
            )
        ]
        healthy = [shard for shard in order if shard.healthy]
        pool = healthy if healthy else order
        if hot and self.config.replication > 1 and len(pool) > 1:
            width = min(self.config.replication, len(pool))
            turn = self._hot_rr.get(fingerprint, 0)
            self._hot_rr[fingerprint] = turn + 1
            start = turn % width
            return pool[start:width] + pool[:start] + pool[width:]
        return pool

    # -- introspection -----------------------------------------------------

    def _wants_prometheus(self, request: HttpRequest) -> bool:
        target = request.target
        if "?" in target:
            if "format=prometheus" in target.split("?", 1)[1].split("&"):
                return True
        return "text/plain" in request.headers.get("accept", "")

    def _health_payload(self) -> Dict[str, Any]:
        healthy = sum(1 for s in self.shards.values() if s.healthy)
        return {
            "status": "draining" if self.draining else "ok",
            "role": "coordinator",
            "version": __version__,
            "shards": len(self.shards),
            "healthy_shards": healthy,
            "in_flight": self._pending,
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "metrics_schema": SCHEMA_VERSION,
        }

    async def _cluster_health(self) -> Dict[str, Any]:
        """The rollup: live per-shard healthz + dedup counters."""

        async def one(shard: ShardState) -> Tuple[str, Dict[str, Any]]:
            entry: Dict[str, Any] = {
                "index": shard.index,
                "address": shard.address,
                "healthy": shard.healthy,
                "consecutive_failures": shard.consecutive_failures,
                "last_error": shard.last_error,
                "requests": shard.requests,
                "retries": shard.retries,
                "errors": shard.errors,
                "in_flight": shard.inflight,
                "healthz": None,
                "dedup": None,
            }
            try:
                status, _, body = await shard.pool.request(
                    "GET", "/healthz", timeout=2.0
                )
                if status == 200:
                    payload = json.loads(body.decode("utf-8"))
                    entry["healthz"] = payload
                    if shard.label is None and payload.get("shard"):
                        shard.label = str(payload["shard"])
                    if payload.get("status") == "ok":
                        self._mark_success(shard)
                    else:
                        self._mark_failure(
                            shard,
                            f"shard status {payload.get('status')!r}",
                        )
                status, _, body = await shard.pool.request(
                    "GET", "/metrics", timeout=2.0
                )
                if status == 200:
                    counters = json.loads(body.decode("utf-8")).get(
                        "counters", {}
                    )
                    entry["dedup"] = {
                        name: counters.get(name, 0)
                        for name in SHARD_DEDUP_COUNTERS
                    }
            except (asyncio.TimeoutError, ValueError, *_RETRYABLE) as error:
                self._mark_failure(
                    shard, f"{type(error).__name__}: {error}"
                )
            entry["healthy"] = shard.healthy
            entry["label"] = shard.display
            return shard.display, entry

        gathered = await asyncio.gather(
            *(one(shard) for shard in self.shards.values())
        )
        shards: Dict[str, Any] = {}
        for label, entry in gathered:
            while label in shards:  # label collision safety net
                label = f"{label}@{entry['address']}"
            shards[label] = entry
        now = time.monotonic()
        counters = self.metrics.to_dict().get("counters", {})
        healthy = sum(1 for s in self.shards.values() if s.healthy)
        return {
            "status": "ok" if healthy == len(self.shards) else "degraded",
            "role": "coordinator",
            "version": __version__,
            "uptime_seconds": round(now - self._started_monotonic, 3),
            "replication": self.config.replication,
            "hot_keys": sum(
                1 for expiry in self._hot_until.values() if expiry > now
            ),
            "front_cache_entries": len(self._front),
            "shards": shards,
            "coordinator": {
                "counters": {
                    name: value
                    for name, value in sorted(counters.items())
                    if name.startswith("cluster_")
                },
            },
        }

    async def _shard_metric_snapshots(
        self,
    ) -> List[Tuple[ShardState, Optional[Dict[str, Any]]]]:
        """Fetch each shard's ``/metrics`` JSON snapshot concurrently;
        an unreachable shard yields ``None`` (and is marked failing)."""

        async def one(
            shard: ShardState,
        ) -> Tuple[ShardState, Optional[Dict[str, Any]]]:
            try:
                status, _, body = await shard.pool.request(
                    "GET", "/metrics", timeout=2.0
                )
                if status == 200:
                    return shard, json.loads(body.decode("utf-8"))
                self._mark_failure(shard, f"metrics HTTP {status}")
            except (asyncio.TimeoutError, ValueError, *_RETRYABLE) as error:
                self._mark_failure(
                    shard, f"{type(error).__name__}: {error}"
                )
            return shard, None

        return list(
            await asyncio.gather(
                *(one(shard) for shard in self.shards.values())
            )
        )

    @staticmethod
    def _aggregate_metrics(
        snapshots: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Sum counters/stages and exact-merge histograms across shard
        snapshots.  Histograms merge bucket-by-bucket (identical bounds
        guaranteed by the shared registry defaults); a shard reporting
        different bounds is skipped and listed, never interpolated."""
        counters: Dict[str, int] = {}
        stages: Dict[str, float] = {}
        histograms: Dict[str, Histogram] = {}
        skipped: List[str] = []
        for snapshot in snapshots:
            for name, value in snapshot.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(value)
            for name, value in snapshot.get("stages", {}).items():
                stages[name] = round(
                    stages.get(name, 0.0) + float(value), 9
                )
            for name, data in snapshot.get("histograms", {}).items():
                try:
                    incoming = Histogram.from_dict(data)
                except (KeyError, ValueError, TypeError):
                    skipped.append(name)
                    continue
                existing = histograms.get(name)
                if existing is None:
                    histograms[name] = incoming
                    continue
                try:
                    existing.merge(incoming)
                except ValueError:
                    skipped.append(name)
        out: Dict[str, Any] = {
            "counters": dict(sorted(counters.items())),
            "stages": dict(sorted(stages.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(histograms.items())
            },
        }
        if skipped:
            out["skipped_histograms"] = sorted(set(skipped))
        return out

    async def _cluster_metrics(self) -> Dict[str, Any]:
        """``GET /v1/cluster/metrics`` (JSON): coordinator snapshot,
        live per-shard snapshots, and the exact aggregate."""
        gathered = await self._shard_metric_snapshots()
        shards: Dict[str, Any] = {}
        shard_snapshots: List[Dict[str, Any]] = []
        for shard, snapshot in gathered:
            shards[str(shard.index)] = {
                "label": shard.display,
                "address": shard.address,
                "healthy": shard.healthy,
                "metrics": snapshot,
            }
            if snapshot is not None:
                shard_snapshots.append(snapshot)
        return {
            "schema": SCHEMA_VERSION,
            "role": "coordinator",
            "shards": shards,
            "coordinator": self.metrics.to_dict(),
            "aggregate": self._aggregate_metrics(shard_snapshots),
        }

    async def _cluster_metrics_prometheus(self) -> str:
        """``GET /v1/cluster/metrics`` (Prometheus): one exposition
        with every series labelled by origin — ``shard="K"`` for shard
        K, ``shard="coordinator"`` for the front tier, and the exact
        cross-shard histogram merge as ``shard="cluster"``.  Stage
        timings sum unlabelled (they already carry a ``stage`` label)."""
        gathered = await self._shard_metric_snapshots()
        combined: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "stages": {},
            "histograms": {},
        }

        def fold(snapshot: Dict[str, Any], shard_label: str) -> None:
            for kind in ("counters", "gauges", "histograms"):
                for name, value in snapshot.get(kind, {}).items():
                    combined[kind][
                        merge_labels(name, shard=shard_label)
                    ] = value
            for name, value in snapshot.get("stages", {}).items():
                combined["stages"][name] = round(
                    combined["stages"].get(name, 0.0) + float(value), 9
                )

        fold(self.metrics.to_dict(), "coordinator")
        shard_snapshots = []
        for shard, snapshot in gathered:
            if snapshot is None:
                continue
            fold(snapshot, str(shard.index))
            shard_snapshots.append(snapshot)
        merged = self._aggregate_metrics(shard_snapshots)
        for name, data in merged["histograms"].items():
            combined["histograms"][
                merge_labels(name, shard="cluster")
            ] = data
        return render_prometheus(combined)

    def _fault_response(self, fault: ServiceFault) -> HttpResponse:
        self.metrics.count(f"http_{fault.status}")
        headers = {}
        if fault.retry_after is not None:
            headers["Retry-After"] = f"{fault.retry_after:g}"
        return json_response(fault.status, fault.to_payload(), headers)

    def _error_response(
        self, status: int, error_type: str, message: str
    ) -> HttpResponse:
        self.metrics.count(f"http_{status}")
        return json_response(
            status, {"error": {"type": error_type, "message": message}}
        )


def coordinate_forever(
    config: ClusterConfig, metrics_out: Optional[str] = None
) -> int:
    """CLI entry: run until SIGTERM/SIGINT, then drain and report."""
    coordinator = ClusterCoordinator(config)
    try:
        coordinator.run_forever()
    except KeyboardInterrupt:
        pass
    if metrics_out:
        coordinator.metrics.write(metrics_out)
    print(coordinator.metrics.summary(), file=sys.stderr)
    return 0

"""Consistent hash ring over shard members (stdlib only).

Each member is projected onto the ring at ``vnodes`` pseudo-random
points (SHA-256 of ``"{member}#{i}"``), and a key routes to the first
member point at or after the key's own hash, wrapping around.  The
construction gives the three properties the cluster leans on:

* **determinism** — placement is a pure function of the member set,
  so every coordinator (and every rebuild of the same coordinator)
  routes a fingerprint identically;
* **uniformity** — with enough virtual nodes, keys spread close to
  evenly across members;
* **bounded movement** — adding or removing one member only moves the
  keys that land on that member; everything else stays put, which is
  what keeps shard-local memo/disk caches warm across topology
  changes.

``lookup_n`` walks the ring collecting *distinct* members, yielding
the preference order used for hot-key replication and for failing
over to the next healthy shard.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, List, Sequence, Tuple

DEFAULT_VNODES = 128


def _point(key: str) -> int:
    """64-bit ring position from a SHA-256 prefix."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Immutable ring over a set of member names."""

    __slots__ = ("vnodes", "_members", "_points", "_hashes")

    def __init__(
        self, members: Iterable[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        unique = sorted(set(members))
        if not unique:
            raise ValueError("ring needs at least one member")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._members: Tuple[str, ...] = tuple(unique)
        points: List[Tuple[int, str]] = []
        for member in unique:
            for index in range(vnodes):
                points.append((_point(f"{member}#{index}"), member))
        # Sorting by (hash, member) makes collisions deterministic.
        points.sort()
        self._points = points
        self._hashes = [position for position, _ in points]

    @property
    def members(self) -> Tuple[str, ...]:
        return self._members

    def lookup(self, key: str) -> str:
        """The member owning ``key``."""
        index = bisect_right(self._hashes, _point(key)) % len(self._points)
        return self._points[index][1]

    def lookup_n(self, key: str, n: int) -> List[str]:
        """The first ``n`` *distinct* members in ring order from
        ``key`` — the key's placement preference list."""
        want = min(max(n, 0), len(self._members))
        found: List[str] = []
        if not want:
            return found
        start = bisect_right(self._hashes, _point(key))
        total = len(self._points)
        for step in range(total):
            member = self._points[(start + step) % total][1]
            if member not in found:
                found.append(member)
                if len(found) == want:
                    break
        return found

    def distribution(self, keys: Sequence[str]) -> dict:
        """Member → key count over ``keys`` (test/inspection helper)."""
        counts = {member: 0 for member in self._members}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

"""Horizontally sharded allocation cluster.

A coordinator front tier consistent-hash-routes requests on the
existing :class:`~repro.service.protocol.ServiceJob` content
fingerprint to N worker shards, where each shard is today's
:class:`~repro.service.server.ServiceServer`.  The pipeline core stays
transport-agnostic: a single-process server and a sharded cluster are
just deployments.

The package layers, bottom up:

* :mod:`repro.service.cluster.ring` — the consistent hash ring
  (virtual nodes, stable placement, bounded movement on join/leave);
* :mod:`repro.service.cluster.transport` — persistent keep-alive
  connection pools to shards, with stale-connection retry;
* :mod:`repro.service.cluster.coordinator` — the coordinator itself:
  admission, fingerprint routing, retry-once failover, hot-key
  replication, a bounded hot-response front cache, health probing,
  ``GET /v1/cluster/healthz`` rollup, Prometheus metrics with a
  ``shard`` label;
* :mod:`repro.service.cluster.launcher` — the ``repro cluster`` entry
  point: spawn N shard subprocesses, run the coordinator, tear down.
"""

from .coordinator import ClusterConfig, ClusterCoordinator
from .ring import ConsistentHashRing

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ConsistentHashRing",
]

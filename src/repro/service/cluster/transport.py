"""Persistent keep-alive HTTP transport from coordinator to shards.

The coordinator forwards request bodies *verbatim* and returns shard
response bodies *verbatim* — no JSON decode/encode on the hot path —
so the transport works in raw bytes: :class:`ShardConnection` is a
minimal HTTP/1.1 client on asyncio streams (``Content-Length`` framing
only, mirroring :mod:`repro.service.httpd`), and :class:`ShardPool`
keeps a bounded set of those connections per shard, reusing them
across requests.

A keep-alive connection can go stale between requests (the shard
restarted or closed it idle).  The pool distinguishes a *reused*
connection failing on first use from a *fresh* connection failing:
the former is silently retried once on a brand-new connection; only
the latter propagates, so callers never see phantom errors from
ordinary connection churn.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Matches the server's stream read limit.
_READ_LIMIT = 64 * 1024

ShardResponse = Tuple[int, Dict[str, str], bytes]

_RETRYABLE = (
    ConnectionError,
    asyncio.IncompleteReadError,
    BrokenPipeError,
    OSError,
)


class ShardConnection:
    """One keep-alive HTTP/1.1 connection to a shard."""

    __slots__ = ("host", "port", "_reader", "_writer")

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def open(self, timeout: float) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.host, self.port, limit=_READ_LIMIT
            ),
            timeout,
        )

    @property
    def closed(self) -> bool:
        return self._writer is None or self._writer.is_closing()

    def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> ShardResponse:
        """One exchange; raises ``ConnectionError``/``OSError`` family
        on transport failure (the pool maps those to retries).

        ``headers`` adds extra request headers (e.g. the trace-context
        carrier); names/values must be latin-1-encodable.
        """
        assert self._reader is not None and self._writer is not None
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("shard closed connection")
        try:
            status = int(status_line.decode("latin-1").split(" ", 2)[1])
        except (IndexError, ValueError):
            raise ConnectionError(
                f"malformed status line {status_line!r}"
            ) from None
        response_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("shard closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            self.close()
        return status, response_headers, payload


class ShardPool:
    """Bounded pool of persistent connections to one shard."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_connections: int = 32,
        connect_timeout_s: float = 5.0,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self._capacity = asyncio.Semaphore(max_connections)
        self._idle: Deque[ShardConnection] = deque()
        self.connections_opened = 0

    @property
    def idle_connections(self) -> int:
        return len(self._idle)

    async def _fresh(self) -> ShardConnection:
        connection = ShardConnection(self.host, self.port)
        await connection.open(self.connect_timeout_s)
        self.connections_opened += 1
        return connection

    def _checkout_idle(self) -> Optional[ShardConnection]:
        while self._idle:
            connection = self._idle.popleft()
            if not connection.closed:
                return connection
        return None

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ShardResponse:
        """One exchange on a pooled connection.

        ``timeout`` bounds the whole exchange (the connection is torn
        down on expiry so a half-read response never poisons the
        pool).  Transport errors on a reused connection retry once on
        a fresh one; fresh-connection errors propagate.  ``headers``
        pass through to :meth:`ShardConnection.request`.
        """
        async with self._capacity:
            connection = self._checkout_idle()
            reused = connection is not None
            if connection is None:
                connection = await self._fresh()
            try:
                response = await asyncio.wait_for(
                    connection.request(method, path, body, headers),
                    timeout,
                )
            except asyncio.TimeoutError:
                connection.close()
                raise
            except _RETRYABLE:
                connection.close()
                if not reused:
                    raise
                # Stale keep-alive: one silent retry on a fresh socket.
                connection = await self._fresh()
                try:
                    response = await asyncio.wait_for(
                        connection.request(method, path, body, headers),
                        timeout,
                    )
                except BaseException:
                    connection.close()
                    raise
            if not connection.closed:
                self._idle.append(connection)
            return response

    def close(self) -> None:
        while self._idle:
            self._idle.popleft().close()

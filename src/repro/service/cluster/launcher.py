"""``repro cluster``: launch N shard subprocesses + the coordinator.

Each shard is a full ``repro serve`` process (its own event loop,
executor pool, result memo, and optional disk-cache directory), tagged
with its ring identity via ``--shard-of K/N``.  The coordinator runs
in this process and blocks until SIGTERM/SIGINT; shards are then
terminated and reaped.

Alternatively, ``--shard-addr host:port`` (repeatable) attaches the
coordinator to shards launched elsewhere (other machines, a process
supervisor) — in that topology this process spawns nothing and tears
down nothing.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ...obs.exporters import read_jsonl, write_chrome_trace
from ...obs.tracer import TRACER
from ..client import wait_until_healthy
from .coordinator import ClusterConfig, coordinate_forever


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (racy by nature, fine for tests
    and local clusters)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def repro_env() -> dict:
    """Environment for child processes with ``repro`` importable."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
    return env


def shard_command(
    index: int,
    count: int,
    host: str,
    port: int,
    *,
    jobs: int,
    executor: str,
    cache_dir: Optional[str],
    trace_jsonl: Optional[str] = None,
) -> List[str]:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--host", host,
        "--port", str(port),
        "--jobs", str(jobs),
        "--executor", executor,
        "--shard-of", f"{index}/{count}",
    ]
    if cache_dir:
        command += ["--cache-dir", str(Path(cache_dir) / f"shard-{index}")]
    if trace_jsonl:
        command += ["--trace-jsonl", trace_jsonl]
    return command


def shard_trace_paths(trace_out: str, count: int) -> List[str]:
    """Per-shard JSONL sink paths derived from the merged trace path
    (``trace.json`` → ``trace.json.shard-K.jsonl``)."""
    return [f"{trace_out}.shard-{index}.jsonl" for index in range(count)]


def write_merged_trace(
    trace_out: str, shard_traces: Sequence[str]
) -> int:
    """Drain the coordinator's spans, fold in each shard's streamed
    JSONL sink, and write one Chrome trace — shard ``service.request``
    spans nest under the coordinator's ``cluster.forward`` spans via
    the propagated ``X-Repro-Trace`` carrier.  Returns the span count."""
    spans = TRACER.drain()
    for path in shard_traces:
        spans.extend(read_jsonl(path))
    write_chrome_trace(trace_out, spans)
    return len(spans)


def spawn_shards(
    count: int,
    host: str,
    *,
    jobs: int,
    executor: str,
    cache_dir: Optional[str],
    port_base: int = 0,
    wait_secs: float = 60.0,
    trace_jsonl_paths: Optional[Sequence[str]] = None,
) -> Tuple[List[subprocess.Popen], List[str]]:
    """Start ``count`` shard processes and wait until all are healthy.

    On any startup failure every spawned process is terminated before
    the error propagates.
    """
    ports = [
        port_base + index if port_base else free_port(host)
        for index in range(count)
    ]
    processes: List[subprocess.Popen] = []
    env = repro_env()
    try:
        for index, port in enumerate(ports):
            processes.append(
                subprocess.Popen(
                    shard_command(
                        index, count, host, port,
                        jobs=jobs, executor=executor, cache_dir=cache_dir,
                        trace_jsonl=(
                            trace_jsonl_paths[index]
                            if trace_jsonl_paths
                            else None
                        ),
                    ),
                    env=env,
                )
            )
        for index, port in enumerate(ports):
            if not wait_until_healthy(host, port, timeout=wait_secs):
                raise RuntimeError(
                    f"shard {index}/{count} on {host}:{port} did not "
                    f"become healthy within {wait_secs}s"
                )
    except BaseException:
        terminate_shards(processes)
        raise
    return processes, [f"{host}:{port}" for port in ports]


def terminate_shards(
    processes: Sequence[subprocess.Popen], grace_s: float = 15.0
) -> None:
    """SIGTERM (graceful drain), then SIGKILL stragglers."""
    for process in processes:
        if process.poll() is None:
            try:
                process.send_signal(signal.SIGTERM)
            except OSError:
                pass
    deadline = time.monotonic() + grace_s
    for process in processes:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=5.0)


def launch_cluster(
    config: ClusterConfig,
    *,
    spawn: int = 0,
    shard_jobs: int = 2,
    shard_executor: str = "process",
    cache_dir: Optional[str] = None,
    shard_port_base: int = 0,
    wait_secs: float = 60.0,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    trace_jsonl: Optional[str] = None,
) -> int:
    """Blocking CLI entry behind ``repro cluster``.

    With ``spawn`` > 0, shard subprocesses are started first and the
    config's shard list is replaced with their addresses; with
    pre-set ``config.shards`` the coordinator simply attaches.

    With ``trace_out``, the coordinator traces its own spans, every
    spawned shard streams spans to a per-shard JSONL sink, and on
    shutdown everything merges into one Chrome trace at ``trace_out``
    (shards launched elsewhere still nest via the propagated header if
    they were started with ``--trace-jsonl`` — merge those manually).
    """
    shard_traces: List[str] = []
    if trace_out or trace_jsonl:
        TRACER.configure(enabled=True, jsonl_path=trace_jsonl)
    processes: List[subprocess.Popen] = []
    if spawn > 0:
        if trace_out:
            shard_traces = shard_trace_paths(trace_out, spawn)
        processes, addresses = spawn_shards(
            spawn,
            config.host,
            jobs=shard_jobs,
            executor=shard_executor,
            cache_dir=cache_dir,
            port_base=shard_port_base,
            wait_secs=wait_secs,
            trace_jsonl_paths=shard_traces or None,
        )
        config.shards = tuple(addresses)
    if not config.shards:
        raise SystemExit(
            "repro cluster: error: need --shards N (spawn) or at least "
            "one --shard-addr"
        )
    try:
        return coordinate_forever(config, metrics_out=metrics_out)
    finally:
        terminate_shards(processes)
        if trace_out:
            count = write_merged_trace(trace_out, shard_traces)
            TRACER.enabled = False
            print(
                f"wrote {count} spans to {trace_out}",
                file=sys.stderr,
            )

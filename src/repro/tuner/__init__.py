"""Design-space search over :class:`AllocationConfig` (the auto-tuner).

Public surface::

    from repro.tuner import run_tune, default_space, make_strategy

    payload = run_tune(traces, strategy="evolutionary", budget=64, seed=0)

See :mod:`repro.tuner.runner` for the payload schema and
:mod:`repro.tuner.space` for declaring restricted search spaces.
"""

from .objective import OBJECTIVES, candidate_metrics, dominates, objective_value
from .runner import (
    Outcome,
    SearchOracle,
    TUNER_SCHEMA,
    format_tune,
    run_tune,
    write_tune,
)
from .space import (
    Constraint,
    DEFAULT_CONSTRAINTS,
    Parameter,
    ParameterSpace,
    default_space,
    space_from_dict,
)
from .strategies import (
    STRATEGY_NAMES,
    EvolutionaryStrategy,
    ExhaustiveStrategy,
    HillClimbStrategy,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "OBJECTIVES",
    "candidate_metrics",
    "dominates",
    "objective_value",
    "Outcome",
    "SearchOracle",
    "TUNER_SCHEMA",
    "format_tune",
    "run_tune",
    "write_tune",
    "Constraint",
    "DEFAULT_CONSTRAINTS",
    "Parameter",
    "ParameterSpace",
    "default_space",
    "space_from_dict",
    "STRATEGY_NAMES",
    "EvolutionaryStrategy",
    "ExhaustiveStrategy",
    "HillClimbStrategy",
    "SearchStrategy",
    "make_strategy",
]

"""Search strategies over a :class:`~repro.tuner.space.ParameterSpace`.

Three strategies behind one interface::

    strategy.search(space, oracle, rng)

* ``exhaustive`` — deterministic grid enumeration, batched;
* ``hillclimb`` — greedy best-neighbor descent with random restarts;
* ``evolutionary`` — seeded (mu + lambda) search with tournament
  selection, uniform crossover, and per-child mutation.

Strategies draw every assignment through the space's own sampling
helpers (so they cannot leave the declared space), ask the *oracle*
for objective values, and stop when the oracle's budget is exhausted.
All randomness flows through the ``random.Random`` instance the runner
seeds — never the module-level ``random`` — so a (strategy, seed,
space, kernel) tuple replays to the byte.

The oracle contract (see :class:`repro.tuner.runner.SearchOracle`):
``evaluate(assignments)`` returns one outcome per *evaluated*
assignment — repeats are served from the search memo for free, and the
list is truncated when the remaining budget cannot cover every fresh
assignment; ``remaining`` is the distinct-evaluation budget left;
``exhausted`` flips once the budget (or the runner's time budget) is
spent; ``note(event, **detail)`` appends a search-trace event.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .space import Assignment, ParameterSpace

#: Default micro-batch: one oracle call per this many candidates, so a
#: whole generation shares one batched engine evaluation.
DEFAULT_BATCH = 16

#: Consecutive restart cycles / generations allowed to evaluate
#: nothing fresh before a sampling strategy concludes the reachable
#: space is exhausted and stops — without this, a budget larger than
#: the space would spin forever on memo hits.
MAX_STALLS = 3


class SearchStrategy:
    """Interface: mutate oracle state until the budget runs out."""

    name = "abstract"

    def search(self, space: ParameterSpace, oracle, rng) -> None:
        raise NotImplementedError


class ExhaustiveStrategy(SearchStrategy):
    """Grid search in deterministic space order, batched."""

    name = "exhaustive"

    def __init__(self, batch: int = DEFAULT_BATCH) -> None:
        self.batch = max(1, batch)

    def search(self, space: ParameterSpace, oracle, rng) -> None:
        pending: List[Assignment] = []
        for assignment in space.assignments():
            if oracle.exhausted:
                break
            pending.append(assignment)
            if len(pending) >= self.batch:
                oracle.evaluate(pending)
                pending = []
        if pending and not oracle.exhausted:
            oracle.evaluate(pending)


class HillClimbStrategy(SearchStrategy):
    """Greedy best-neighbor descent with random restarts.

    Each step evaluates the *whole* neighborhood as one batch (one
    engine analysis phase serves it), moves to the best strictly
    improving neighbor, and restarts from a fresh random point at
    local optima until the budget is exhausted.
    """

    name = "hillclimb"

    def search(self, space: ParameterSpace, oracle, rng) -> None:
        stalls = 0
        while not oracle.exhausted and stalls < MAX_STALLS:
            before = oracle.remaining
            outcomes = oracle.evaluate([space.random_assignment(rng)])
            if not outcomes:
                return
            current = outcomes[0]
            oracle.note(
                "restart", key=space.key(current.assignment),
                objective=current.objective,
            )
            while not oracle.exhausted:
                neighbors = space.neighbors(current.assignment)
                evaluated = oracle.evaluate(neighbors)
                improving = [
                    o for o in evaluated if o.objective < current.objective
                ]
                if not improving:
                    oracle.note(
                        "local_optimum", key=space.key(current.assignment),
                        objective=current.objective,
                    )
                    break
                best = min(
                    improving,
                    key=lambda o: (
                        o.objective, space.key(o.assignment)
                    ),
                )
                oracle.note(
                    "move", key=space.key(best.assignment),
                    objective=best.objective,
                )
                current = best
            stalls = stalls + 1 if oracle.remaining == before else 0


class EvolutionaryStrategy(SearchStrategy):
    """Seeded (mu + lambda) evolutionary search.

    A generation is one oracle batch: tournament-selected parents
    produce ``population`` children by uniform crossover plus
    mutation, evaluated together; survivors are the best
    ``population`` of (parents + children), ties broken by the
    assignment key so selection is order-independent.
    """

    name = "evolutionary"

    def __init__(
        self,
        population: int = DEFAULT_BATCH,
        tournament: int = 3,
        mutation_rate: float = 0.35,
    ) -> None:
        self.population = max(2, population)
        self.tournament = max(1, tournament)
        self.mutation_rate = mutation_rate

    def _pick(self, pool: Sequence, rng):
        contenders = [
            pool[rng.randrange(len(pool))] for _ in range(self.tournament)
        ]
        return min(
            contenders, key=lambda o: (o.objective, o.key)
        )

    def search(self, space: ParameterSpace, oracle, rng) -> None:
        seeds: List[Assignment] = []
        seen: Dict[str, bool] = {}
        while len(seeds) < self.population:
            assignment = space.random_assignment(rng)
            key = space.key(assignment)
            if key in seen:
                # Tiny spaces cannot fill a distinct population.
                if len(seen) >= space.size:
                    break
                continue
            seen[key] = True
            seeds.append(assignment)
        pool = list(oracle.evaluate(seeds))
        generation = 0
        stalls = 0
        while pool and not oracle.exhausted and stalls < MAX_STALLS:
            generation += 1
            before = oracle.remaining
            children = []
            for _ in range(self.population):
                first = self._pick(pool, rng)
                second = self._pick(pool, rng)
                child = space.crossover(
                    first.assignment, second.assignment, rng
                )
                if rng.random() < self.mutation_rate:
                    child = space.mutate(child, rng)
                children.append(child)
            evaluated = oracle.evaluate(children)
            pool = sorted(
                pool + list(evaluated),
                key=lambda o: (o.objective, o.key),
            )[: self.population]
            oracle.note(
                "generation", index=generation,
                best_objective=pool[0].objective, best_key=pool[0].key,
            )
            stalls = stalls + 1 if oracle.remaining == before else 0


def make_strategy(name: str, **options) -> SearchStrategy:
    """Strategy factory for the CLI/service (`--strategy NAME`)."""
    factories = {
        ExhaustiveStrategy.name: ExhaustiveStrategy,
        HillClimbStrategy.name: HillClimbStrategy,
        EvolutionaryStrategy.name: EvolutionaryStrategy,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; "
            f"known: {', '.join(sorted(factories))}"
        ) from None
    return factory(**options)


STRATEGY_NAMES = (
    ExhaustiveStrategy.name,
    HillClimbStrategy.name,
    EvolutionaryStrategy.name,
)

"""Declarative design space over :class:`AllocationConfig`.

A :class:`ParameterSpace` is an ordered list of named parameters (each
with a finite value list) plus constraint predicates that prune
invalid combinations — the shape of kernel_tuner's ``tune_params``
dict, specialised to the allocator's configuration fields.  Every
search strategy draws assignments exclusively through the space
(:meth:`random_assignment`, :meth:`mutate`, :meth:`crossover`,
:meth:`neighbors`, :meth:`assignments`), so a strategy *cannot* emit a
config outside the declared space or violating a constraint — the
property the tuner tests pin with hypothesis.

Assignments are plain ``{field: value}`` dicts;
:meth:`ParameterSpace.config` materialises them through
``AllocationConfig.from_dict``, which re-validates at the type level.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..alloc.allocator import AllocationConfig

Assignment = Dict[str, Any]

#: Bounded retries for rejection sampling; the default space is ~59%
#: valid, so 64 tries failing means the space itself is degenerate.
_MAX_SAMPLE_TRIES = 64


@dataclass(frozen=True)
class Parameter:
    """One tunable axis: a config field and its candidate values."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError(
                f"parameter {self.name!r} has duplicate values"
            )


@dataclass(frozen=True)
class Constraint:
    """A named predicate over assignments; False prunes the combo."""

    name: str
    predicate: Callable[[Assignment], bool]


class ParameterSpace:
    """An ordered, constrained, finite design space."""

    def __init__(
        self,
        parameters: Tuple[Parameter, ...],
        constraints: Tuple[Constraint, ...] = (),
    ) -> None:
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        config_fields = set(AllocationConfig().to_dict())
        unknown = set(names) - config_fields
        if unknown:
            raise ValueError(
                "parameters are not AllocationConfig fields: "
                + ", ".join(sorted(unknown))
            )
        self.parameters = tuple(parameters)
        self.constraints = tuple(constraints)
        self._by_name = {p.name: p for p in self.parameters}

    # -- membership --------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    @property
    def size(self) -> int:
        """Cartesian size, before constraint pruning."""
        total = 1
        for parameter in self.parameters:
            total *= len(parameter.values)
        return total

    def valid_size(self) -> int:
        """Number of assignments surviving the constraints."""
        return sum(1 for _ in self.assignments())

    def violated_constraint(
        self, assignment: Assignment
    ) -> Optional[str]:
        """Name of the first failing check, or None when valid."""
        if set(assignment) != set(self.names):
            missing = set(self.names) - set(assignment)
            extra = set(assignment) - set(self.names)
            parts = []
            if missing:
                parts.append(f"missing {', '.join(sorted(missing))}")
            if extra:
                parts.append(f"unknown {', '.join(sorted(extra))}")
            return "; ".join(parts)
        for parameter in self.parameters:
            if assignment[parameter.name] not in parameter.values:
                return (
                    f"{parameter.name}={assignment[parameter.name]!r} "
                    "not in declared values"
                )
        for constraint in self.constraints:
            if not constraint.predicate(assignment):
                return constraint.name
        return None

    def is_valid(self, assignment: Assignment) -> bool:
        return self.violated_constraint(assignment) is None

    def validate(self, assignment: Assignment) -> None:
        violated = self.violated_constraint(assignment)
        if violated is not None:
            raise ValueError(f"invalid assignment: {violated}")

    def config(self, assignment: Assignment) -> AllocationConfig:
        """Materialise a *valid* assignment as an AllocationConfig."""
        self.validate(assignment)
        return AllocationConfig.from_dict(dict(assignment))

    def key(self, assignment: Assignment) -> str:
        """Canonical text key (dedup, tie-breaking, trace output)."""
        return ",".join(
            f"{name}={assignment[name]!r}" for name in self.names
        )

    # -- enumeration and sampling ------------------------------------------

    def assignments(self) -> Iterator[Assignment]:
        """Every valid assignment, in deterministic space order."""
        for combo in itertools.product(
            *[p.values for p in self.parameters]
        ):
            assignment = dict(zip(self.names, combo))
            if self.is_valid(assignment):
                yield assignment

    def random_assignment(self, rng) -> Assignment:
        """A uniformly-drawn valid assignment (rejection sampling)."""
        for _ in range(_MAX_SAMPLE_TRIES):
            assignment = {
                p.name: rng.choice(p.values) for p in self.parameters
            }
            if self.is_valid(assignment):
                return assignment
        raise ValueError(
            "could not sample a valid assignment; the constraints "
            "reject almost all of the space"
        )

    def mutate(self, assignment: Assignment, rng) -> Assignment:
        """A valid assignment differing in at least one parameter."""
        for _ in range(_MAX_SAMPLE_TRIES):
            mutated = dict(assignment)
            parameter = rng.choice(self.parameters)
            choices = [
                v
                for v in parameter.values
                if v != assignment[parameter.name]
            ]
            if not choices:
                continue
            mutated[parameter.name] = rng.choice(choices)
            if self.is_valid(mutated):
                return mutated
        return self.random_assignment(rng)

    def crossover(
        self, first: Assignment, second: Assignment, rng
    ) -> Assignment:
        """Uniform per-parameter recombination, repaired to validity."""
        for _ in range(_MAX_SAMPLE_TRIES):
            child = {
                name: (first if rng.random() < 0.5 else second)[name]
                for name in self.names
            }
            if self.is_valid(child):
                return child
        return self.mutate(first, rng)

    def neighbors(self, assignment: Assignment) -> List[Assignment]:
        """All valid single-parameter changes, in deterministic order."""
        out: List[Assignment] = []
        for parameter in self.parameters:
            for value in parameter.values:
                if value == assignment[parameter.name]:
                    continue
                candidate = dict(assignment)
                candidate[parameter.name] = value
                if self.is_valid(candidate):
                    out.append(candidate)
        return out

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parameters": {
                p.name: list(p.values) for p in self.parameters
            },
            "constraints": [c.name for c in self.constraints],
        }


#: The default constraint set: prune combinations the allocator would
#: ignore or misread rather than evaluate differently.
DEFAULT_CONSTRAINTS = (
    Constraint(
        "split_lrf requires use_lrf",
        lambda a: a.get("use_lrf", False) or not a.get("split_lrf", False),
    ),
    Constraint(
        "lrf_banks is only tunable with split_lrf (else default 3)",
        lambda a: a.get("split_lrf", False) or a.get("lrf_banks", 3) == 3,
    ),
)

_DEFAULT_AXES: Tuple[Tuple[str, Tuple[Any, ...]], ...] = (
    ("orf_entries", tuple(range(1, 9))),
    ("use_lrf", (False, True)),
    ("split_lrf", (False, True)),
    ("lrf_banks", (1, 2, 3)),
    ("enable_partial_ranges", (False, True)),
    ("enable_read_operands", (False, True)),
    ("allow_forward_branches", (False, True)),
    ("assume_persistent_strands", (False, True)),
)


def default_space(include_ideal: bool = False) -> ParameterSpace:
    """The full AllocationConfig design space.

    ``include_ideal`` opens the Section 7 idealisation axis
    (``assume_persistent_strands``), which is not realisable in
    hardware; the default space pins it to False so a tuned config is
    always buildable.
    """
    parameters = []
    for name, values in _DEFAULT_AXES:
        if name == "assume_persistent_strands" and not include_ideal:
            values = (False,)
        parameters.append(Parameter(name, values))
    return ParameterSpace(tuple(parameters), DEFAULT_CONSTRAINTS)


def space_from_dict(obj: Dict[str, Any]) -> ParameterSpace:
    """Build a (sub)space from its wire form.

    Accepts ``{"parameters": {name: [values, ...]}}`` where every name
    is a default axis and every value is drawn from that axis — a tune
    request can *restrict* the search space but never extend it past
    what the allocator supports.  Omitted axes keep their full default
    value lists.  The default constraints always apply.
    """
    if not isinstance(obj, dict):
        raise ValueError("space must be an object")
    unknown = set(obj) - {"parameters"}
    if unknown:
        raise ValueError(
            f"unknown space field(s): {', '.join(sorted(unknown))}"
        )
    overrides = obj.get("parameters", {})
    if not isinstance(overrides, dict):
        raise ValueError("space.parameters must be an object")
    axes = dict(_DEFAULT_AXES)
    bad = set(overrides) - set(axes)
    if bad:
        raise ValueError(
            f"unknown space parameter(s): {', '.join(sorted(bad))}"
        )
    parameters = []
    for name, full_values in _DEFAULT_AXES:
        values = full_values
        if name == "assume_persistent_strands" and name not in overrides:
            # Ideal-axis opt-in mirrors default_space(): requests must
            # ask for the non-realisable idealisation explicitly.
            values = (False,)
        if name in overrides:
            chosen = overrides[name]
            if not isinstance(chosen, list) or not chosen:
                raise ValueError(
                    f"space.parameters.{name} must be a non-empty list"
                )
            invalid = [v for v in chosen if v not in full_values]
            if invalid:
                raise ValueError(
                    f"space.parameters.{name}: value(s) outside the "
                    f"supported axis: {invalid!r}"
                )
            # Preserve axis order, drop duplicates.
            values = tuple(v for v in full_values if v in chosen)
        parameters.append(Parameter(name, values))
    space = ParameterSpace(tuple(parameters), DEFAULT_CONSTRAINTS)
    if not any(True for _ in space.assignments()):
        raise ValueError("space has no valid assignments")
    return space

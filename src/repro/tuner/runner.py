"""The tune driver: strategy x space x batched evaluation oracle.

:func:`run_tune` searches the :class:`AllocationConfig` design space
for one workload's traces.  The search consumes the whole pipeline as
a black-box oracle: every candidate config maps to a software scheme
(:func:`repro.sim.schemes.scheme_for_config`) and a *generation* of
candidates is evaluated through
:meth:`repro.engine.ExperimentEngine.evaluate_batch`, so one
scheme-independent kernel analysis serves the whole batch and every
revisited design point is a record-memo (or disk-cache) hit.  The
result payload pins the best config, the explored Pareto frontier
(energy/instr x MRF accesses/instr), the evaluation/cache accounting,
and the full search trace — deterministic to the byte for a fixed
(kernel, space, strategy, objective, seed, budget) tuple, wall time
aside.

Observability: the whole search runs under a ``tuner.search`` span,
each evaluated candidate gets a ``tuner.candidate`` span, and each
oracle batch feeds a per-strategy histogram
(``tuner_batch_candidates{strategy="..."}``) in the engine's metrics
registry.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..alloc.allocator import AllocationConfig
from ..bench import (
    StoppingRule,
    bench_section,
    metric_from_samples,
    write_report,
)
from ..engine import ExperimentEngine
from ..obs.registry import labeled_name
from ..obs.tracer import TRACER
from ..sim.runner import TraceSet
from ..sim.schemes import scheme_for_config
from .objective import candidate_metrics, dominates, objective_value
from .space import Assignment, ParameterSpace, default_space
from .strategies import make_strategy

#: Schema 2 (additive): optional ``"bench"`` section — wall-time
#: samples under a stopping rule plus the deterministic search
#: outcomes as degenerate-interval metrics — and the environment
#: fingerprint.  Every schema-1 key is unchanged.
TUNER_SCHEMA = 2

#: Histogram buckets for candidates-per-oracle-batch.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Engine counters that attribute oracle evaluations to fresh pipeline
#: work vs memo/disk replay.
_FRESH_COUNTER = "record_misses"


@dataclass(frozen=True)
class Outcome:
    """One evaluated candidate, as strategies see it."""

    order: int
    assignment: Dict[str, Any]
    key: str
    config: AllocationConfig
    objective: float
    metrics: Dict[str, Any]


@dataclass
class SearchOracle:
    """Budgeted, memoised, batched evaluation of candidate configs."""

    engine: ExperimentEngine
    traces: TraceSet
    space: ParameterSpace
    objective: str
    budget: int
    strategy_name: str
    time_budget_s: Optional[float] = None
    started: float = field(default_factory=time.perf_counter)

    def __post_init__(self) -> None:
        self._memo: Dict[str, Outcome] = {}
        self.requested = 0
        self.repeat_hits = 0
        self.best: Optional[Outcome] = None
        self.trace: List[Dict[str, Any]] = []

    # -- budget ------------------------------------------------------------

    @property
    def evaluated(self) -> int:
        """Distinct configs evaluated so far."""
        return len(self._memo)

    @property
    def remaining(self) -> int:
        return max(0, self.budget - self.evaluated)

    @property
    def exhausted(self) -> bool:
        if self.remaining <= 0:
            return True
        if self.time_budget_s is not None:
            return time.perf_counter() - self.started > self.time_budget_s
        return False

    # -- evaluation --------------------------------------------------------

    def note(self, event: str, **detail: Any) -> None:
        """Append a strategy-authored event to the search trace."""
        self.trace.append({"event": event, "strategy": self.strategy_name,
                           **detail})

    def evaluate(
        self, assignments: Sequence[Assignment]
    ) -> List[Outcome]:
        """Evaluate a generation; returns one outcome per assignment
        that was served (memoised repeats are free; fresh work is
        truncated to the remaining budget, in order)."""
        served: List[Outcome] = []
        fresh: List[Assignment] = []
        fresh_keys: List[str] = []
        remaining = self.remaining
        for assignment in assignments:
            self.requested += 1
            key = self.space.key(assignment)
            hit = self._memo.get(key)
            if hit is not None:
                self.repeat_hits += 1
                served.append(hit)
                continue
            if key in fresh_keys or len(fresh) >= remaining:
                continue
            self.space.validate(assignment)
            fresh.append(dict(assignment))
            fresh_keys.append(key)
        if fresh:
            served.extend(self._evaluate_fresh(fresh, fresh_keys))
        return served

    def _evaluate_fresh(
        self, assignments: List[Assignment], keys: List[str]
    ) -> List[Outcome]:
        configs = [self.space.config(a) for a in assignments]
        schemes = [scheme_for_config(config) for config in configs]
        self.engine.metrics.observe(
            labeled_name(
                "tuner_batch_candidates", strategy=self.strategy_name
            ),
            float(len(schemes)),
            buckets=_BATCH_BUCKETS,
        )
        evaluations = self.engine.evaluate_batch(self.traces, schemes)
        outcomes: List[Outcome] = []
        for assignment, key, config, scheme, evaluation in zip(
            assignments, keys, configs, schemes, evaluations
        ):
            with TRACER.span(
                "tuner.candidate",
                scheme=scheme.name,
                key=key,
            ) as span:
                metrics = candidate_metrics(evaluation, config)
                value = objective_value(self.objective, metrics)
                if span is not None:
                    span.attributes["objective"] = value
            outcome = Outcome(
                order=len(self._memo),
                assignment=assignment,
                key=key,
                config=config,
                objective=value,
                metrics=metrics,
            )
            self._memo[key] = outcome
            new_best = self.best is None or value < self.best.objective
            if new_best:
                self.best = outcome
            self.trace.append(
                {
                    "event": "evaluate",
                    "strategy": self.strategy_name,
                    "order": outcome.order,
                    "key": key,
                    "scheme": scheme.name,
                    "objective": value,
                    "new_best": new_best,
                }
            )
            outcomes.append(outcome)
        return outcomes

    def outcomes(self) -> List[Outcome]:
        """Every distinct evaluated candidate, best first."""
        return sorted(
            self._memo.values(), key=lambda o: (o.objective, o.key)
        )


def _outcome_payload(outcome: Outcome) -> Dict[str, Any]:
    return {
        "order": outcome.order,
        "config": outcome.config.to_dict(),
        "scheme": scheme_for_config(outcome.config).name,
        "objective": outcome.objective,
        "metrics": outcome.metrics,
    }


def _pareto_frontier(outcomes: List[Outcome]) -> List[Outcome]:
    """Non-dominated set over (energy/instr, MRF accesses/instr),
    deduplicated to one representative (smallest key) per distinct
    metric point."""
    frontier = sorted(
        (
            a
            for a in outcomes
            if not any(
                dominates(b.metrics, a.metrics)
                for b in outcomes
                if b is not a
            )
        ),
        key=lambda o: (
            o.metrics["energy_per_instruction_pj"],
            o.metrics["mrf_accesses_per_instruction"],
            o.key,
        ),
    )
    unique: List[Outcome] = []
    seen = set()
    for outcome in frontier:
        point = (
            outcome.metrics["energy_per_instruction_pj"],
            outcome.metrics["mrf_accesses_per_instruction"],
        )
        if point in seen:
            continue
        seen.add(point)
        unique.append(outcome)
    return unique


def run_tune(
    traces: TraceSet,
    *,
    space: Optional[ParameterSpace] = None,
    strategy: str = "evolutionary",
    objective: str = "energy",
    budget: int = 64,
    seed: int = 0,
    engine: Optional[ExperimentEngine] = None,
    time_budget_s: Optional[float] = None,
    strategy_options: Optional[Dict[str, Any]] = None,
    rule: Optional[StoppingRule] = None,
) -> Dict[str, Any]:
    """Search the design space for one workload; returns the payload.

    Deterministic modulo ``wall_time_s`` (and, when ``time_budget_s``
    is set and actually binds, the stop point): the frontier, best
    config, trace, and evaluation counts replay byte-identically for a
    fixed seed.

    With ``rule`` set, the search is re-run (warm engine, identical
    outcome) until the rule says the wall-time samples are stable, and
    the payload gains a ``"bench"`` section: wall-time distribution
    plus the deterministic objective/improvement results as
    point-estimate metrics with degenerate intervals — so ``repro
    bench diff`` flags *any* change in tuning outcome as significant.
    """
    if space is None:
        space = default_space()
    if engine is None:
        engine = ExperimentEngine()
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    search = make_strategy(strategy, **(strategy_options or {}))
    rng = random.Random(seed)
    started = time.perf_counter()
    fresh_before = engine.metrics.counters.get(_FRESH_COUNTER, 0)

    oracle = SearchOracle(
        engine=engine,
        traces=traces,
        space=space,
        objective=objective,
        budget=budget,
        strategy_name=search.name,
        time_budget_s=time_budget_s,
    )

    baseline_config = AllocationConfig()
    baseline_assignment = baseline_config.to_dict()
    baseline_in_space = space.is_valid(baseline_assignment)
    with TRACER.span(
        "tuner.search",
        kernel=traces.kernel.name,
        strategy=search.name,
        objective=objective,
        seed=seed,
        budget=budget,
    ):
        if baseline_in_space:
            # Seed the search with the paper-default config so the
            # best result can never regress below it.
            (baseline_outcome,) = oracle.evaluate([baseline_assignment])
        else:
            evaluation = engine.evaluate(
                traces, scheme_for_config(baseline_config)
            )
            metrics = candidate_metrics(evaluation, baseline_config)
            baseline_outcome = Outcome(
                order=-1,
                assignment=baseline_assignment,
                key="(baseline)",
                config=baseline_config,
                objective=objective_value(objective, metrics),
                metrics=metrics,
            )
        search.search(space, oracle, rng)

    fresh = engine.metrics.counters.get(_FRESH_COUNTER, 0) - fresh_before
    explored = oracle.outcomes()
    if not explored:
        raise ValueError("search evaluated no candidates")
    best = explored[0]
    frontier = _pareto_frontier(explored)
    improvements = [
        {
            "order": event["order"],
            "key": event["key"],
            "objective": event["objective"],
        }
        for event in oracle.trace
        if event.get("event") == "evaluate" and event.get("new_best")
    ]
    distinct = oracle.evaluated
    payload: Dict[str, Any] = {
        "schema": TUNER_SCHEMA,
        "kernel": traces.kernel.name,
        "strategy": search.name,
        "objective": objective,
        "seed": seed,
        "budget": budget,
        "space": {**space.to_dict(), "size": space.size},
        "evaluations": {
            "distinct": distinct,
            "requested": oracle.requested,
            "repeat_hits": oracle.repeat_hits,
            "fresh": fresh,
            "cache_hits": max(0, distinct - fresh),
        },
        "baseline": {
            **_outcome_payload(baseline_outcome),
            "in_space": baseline_in_space,
        },
        "best": _outcome_payload(best),
        "improvement_over_baseline": (
            1.0 - best.objective / baseline_outcome.objective
            if baseline_outcome.objective > 0
            else 0.0
        ),
        "frontier": [_outcome_payload(o) for o in frontier],
        "improvements": improvements,
        "trace": oracle.trace,
        "wall_time_s": round(time.perf_counter() - started, 6),
    }
    if rule is not None:
        payload["bench"] = _tune_bench(
            payload,
            rule,
            traces=traces,
            space=space,
            strategy=strategy,
            objective=objective,
            budget=budget,
            seed=seed,
            engine=engine,
            time_budget_s=time_budget_s,
            strategy_options=strategy_options,
        )
    return payload


def _tune_bench(
    payload: Dict[str, Any],
    rule: StoppingRule,
    **tune_kwargs: Any,
) -> Dict[str, Any]:
    """Build the tune payload's ``"bench"`` section.

    Wall time is the only nondeterministic output, so it is the only
    adaptively sampled metric: the search re-runs on the warm engine
    (every candidate a record-memo hit) until the rule fires.  The
    search outcomes themselves are deterministic and recorded as
    point estimates with degenerate ``[v, v]`` intervals: a diff
    between two runs shows them as significant exactly when the
    tuning result actually changed.
    """
    traces = tune_kwargs.pop("traces")
    samples = [float(payload["wall_time_s"])]
    reason = rule.check(samples)
    while reason is None:
        repeat = run_tune(traces, rule=None, **tune_kwargs)
        samples.append(float(repeat["wall_time_s"]))
        reason = rule.check(samples)
    metrics = {
        "wall_time_s": metric_from_samples(
            "wall_time_s",
            samples,
            unit="s",
            direction="lower",
            comparable=False,
            rule=rule,
            stop_reason=reason,
        ),
        "improvement_over_baseline": metric_from_samples(
            "improvement_over_baseline",
            [payload["improvement_over_baseline"]],
            unit="frac",
            direction="higher",
            comparable=True,
            stop_reason="deterministic",
        ),
        "best_objective": metric_from_samples(
            "best_objective",
            [payload["best"]["objective"]],
            unit=payload["objective"],
            direction="lower",
            comparable=True,
            stop_reason="deterministic",
        ),
        "baseline_objective": metric_from_samples(
            "baseline_objective",
            [payload["baseline"]["objective"]],
            unit=payload["objective"],
            direction="lower",
            comparable=True,
            stop_reason="deterministic",
        ),
    }
    return bench_section("tune", metrics, rule=rule)


# -- rendering and persistence ---------------------------------------------


def _config_text(config: Dict[str, Any]) -> str:
    return " ".join(f"{key}={config[key]}" for key in sorted(config))


def format_tune(payload: Dict[str, Any]) -> str:
    """Human-readable tune report (the CLI's stdout)."""
    lines: List[str] = []
    evals = payload["evaluations"]
    lines.append(
        f"kernel {payload['kernel']}: tune"
        f" strategy={payload['strategy']}"
        f" objective={payload['objective']}"
        f" seed={payload['seed']} budget={payload['budget']}"
    )
    lines.append(
        f"space: {len(payload['space']['parameters'])} axes,"
        f" {payload['space']['size']} combos;"
        f" explored {evals['distinct']} distinct configs"
        f" ({evals['fresh']} fresh, {evals['cache_hits']} cache hits,"
        f" {evals['repeat_hits']} repeats)"
        f" in {payload['wall_time_s']:.2f}s"
    )
    baseline = payload["baseline"]
    best = payload["best"]
    lines.append("")
    lines.append(
        f"baseline {baseline['objective']:.4f}"
        f"  [{_config_text(baseline['config'])}]"
    )
    lines.append(
        f"best     {best['objective']:.4f}"
        f"  ({100 * payload['improvement_over_baseline']:.1f}% better)"
        f"  [{_config_text(best['config'])}]"
    )
    lines.append("")
    lines.append("why this config (improvement chain):")
    for step in payload["improvements"]:
        lines.append(
            f"  eval #{step['order']:>3}  {step['objective']:.4f}"
            f"  {step['key']}"
        )
    lines.append("")
    lines.append(f"frontier ({len(payload['frontier'])} non-dominated):")
    header = (
        f"  {'energy/instr pJ':>16} {'mrf/instr':>10} "
        f"{'norm':>6}  scheme"
    )
    lines.append(header)
    for point in payload["frontier"]:
        metrics = point["metrics"]
        lines.append(
            f"  {metrics['energy_per_instruction_pj']:>16.4f}"
            f" {metrics['mrf_accesses_per_instruction']:>10.4f}"
            f" {metrics['normalized_energy']:>6.3f}"
            f"  {point['scheme']}"
        )
    bench = payload.get("bench")
    if bench is not None:
        wall = bench["metrics"]["wall_time_s"]
        env = bench.get("env", {})
        lines.append("")
        lines.append(
            f"wall time: median {wall['median']:.4f}s over"
            f" {wall['repeats']} runs"
            f" (ci [{wall['ci'][0]:.4f}, {wall['ci'][1]:.4f}],"
            f" stop: {wall['stop_reason']});"
            f" env: python {env.get('python')} on {env.get('machine')}"
            f" ({env.get('cpu_count')} cpus)"
        )
    return "\n".join(lines)


def write_tune(path: str, payload: Dict[str, Any]) -> str:
    """Write the payload as JSON; returns a one-line confirmation."""
    return f"wrote {write_report(path, payload)}"

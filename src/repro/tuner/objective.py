"""Objectives: turn one evaluation into a number to minimise.

The primary objective is *energy per dynamic warp instruction* (pJ),
computed from the existing accounting pipeline —
:func:`repro.energy.accounting.compute_energy` over the evaluation's
access counters under the candidate config's own energy model.
Secondary metrics (MRF accesses per instruction, MRF-access reduction
vs the single-level baseline, normalized energy) are computed for
every candidate and reported in the frontier; ``"mrf"`` selects
MRF-access minimisation as the objective instead.

Every metric here is a pure function of the evaluation record, so a
tune run's frontier is byte-identical across repeats and across
memo/disk-cache replays.  Wall-clock cost is deliberately *not* an
objective: the allocation-time budget is enforced by the runner
(``time_budget_s``) as a search stop condition, where it cannot
perturb the ranking of configs that were evaluated.
"""

from __future__ import annotations

from typing import Any, Dict

from ..alloc.allocator import AllocationConfig
from ..energy.accounting import compute_energy
from ..hierarchy.counters import AccessCounters
from ..levels import Level
from ..sim.runner import KernelEvaluation

#: Objective name -> metric key minimised by the search.
OBJECTIVES: Dict[str, str] = {
    "energy": "energy_per_instruction_pj",
    "mrf": "mrf_accesses_per_instruction",
}


def _mrf_accesses(counters: AccessCounters) -> int:
    return sum(
        count
        for (level, _, _), count in counters.items()
        if level is Level.MRF
    )


def candidate_metrics(
    evaluation: KernelEvaluation, config: AllocationConfig
) -> Dict[str, Any]:
    """Deterministic per-candidate metrics from one evaluation record."""
    model = config.energy_model()
    instructions = max(1, evaluation.dynamic_instructions)
    total_pj = compute_energy(evaluation.counters, model).total_pj
    baseline_pj = compute_energy(evaluation.baseline, model).total_pj
    mrf = _mrf_accesses(evaluation.counters)
    mrf_baseline = _mrf_accesses(evaluation.baseline)
    return {
        "energy_per_instruction_pj": total_pj / instructions,
        "normalized_energy": (
            total_pj / baseline_pj if baseline_pj > 0 else 1.0
        ),
        "mrf_accesses_per_instruction": mrf / instructions,
        "mrf_access_reduction": (
            1.0 - mrf / mrf_baseline if mrf_baseline > 0 else 0.0
        ),
        "dynamic_instructions": evaluation.dynamic_instructions,
    }


def objective_value(objective: str, metrics: Dict[str, Any]) -> float:
    """The scalar the search minimises for one candidate."""
    try:
        key = OBJECTIVES[objective]
    except KeyError:
        raise ValueError(
            f"unknown objective {objective!r}; "
            f"known: {', '.join(sorted(OBJECTIVES))}"
        ) from None
    return float(metrics[key])


def dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """True when ``a`` is at least as good as ``b`` on both frontier
    axes (energy/instr and MRF accesses/instr) and better on one."""
    ae, be = a["energy_per_instruction_pj"], b["energy_per_instruction_pj"]
    am, bm = (
        a["mrf_accesses_per_instruction"],
        b["mrf_accesses_per_instruction"],
    )
    return ae <= be and am <= bm and (ae < be or am < bm)

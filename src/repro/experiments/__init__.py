"""Experiment drivers regenerating every table and figure of the paper."""

from .bench_accounting import (
    format_bench_accounting,
    run_bench_accounting,
    write_bench_accounting,
)
from .divergence_study import (
    DivergenceStudyResult,
    format_divergence_study,
    run_divergence_study,
)
from .encoding_study import (
    EncodingStudyResult,
    format_encoding_study,
    run_encoding_study,
)
from .fig2 import Fig2Result, format_fig2, run_fig2
from .fig11 import BreakdownPoint, Fig11Result, format_fig11, run_fig11
from .fig12 import Fig12Result, format_fig12, run_fig12
from .fig13 import Fig13Result, format_fig13, run_fig13
from .fig14 import Fig14Result, format_fig14, run_fig14
from .fig15 import Fig15Result, format_fig15, run_fig15
from .limit_study import (
    LimitStudyResult,
    format_limit_study,
    run_limit_study,
)
from .report import build_report, write_report
from .scheduler_study import (
    SchedulerStudyResult,
    expanded_warp_inputs,
    format_scheduler_study,
    run_scheduler_study,
)
from .sensitivity import (
    SensitivityResult,
    format_sensitivity,
    run_sensitivity_study,
)
from .suite_data import SuiteData
from .timing_study import (
    TimingStudyResult,
    format_timing_study,
    run_timing_study,
)
from .variable_orf import (
    VariableOrfResult,
    format_variable_orf,
    run_variable_orf_study,
)
from .unroll_study import (
    UnrollStudyResult,
    format_unroll_study,
    run_unroll_study,
)

__all__ = [
    "BreakdownPoint",
    "DivergenceStudyResult",
    "EncodingStudyResult",
    "Fig2Result",
    "Fig11Result",
    "Fig12Result",
    "Fig13Result",
    "Fig14Result",
    "Fig15Result",
    "LimitStudyResult",
    "SchedulerStudyResult",
    "SensitivityResult",
    "SuiteData",
    "TimingStudyResult",
    "UnrollStudyResult",
    "build_report",
    "VariableOrfResult",
    "expanded_warp_inputs",
    "format_bench_accounting",
    "format_divergence_study",
    "format_encoding_study",
    "format_fig2",
    "format_fig11",
    "format_fig12",
    "format_fig13",
    "format_fig14",
    "format_fig15",
    "format_limit_study",
    "format_scheduler_study",
    "format_sensitivity",
    "format_timing_study",
    "format_unroll_study",
    "format_variable_orf",
    "run_divergence_study",
    "run_encoding_study",
    "run_fig2",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_bench_accounting",
    "run_limit_study",
    "run_scheduler_study",
    "run_sensitivity_study",
    "run_timing_study",
    "run_unroll_study",
    "run_variable_orf_study",
    "write_bench_accounting",
    "write_report",
]

"""Figure 2: register value usage patterns per suite.

Figure 2(a) — for each suite, the fraction of produced values read
0 / 1 / 2 / more-than-2 times.  Figure 2(b) — for values read exactly
once, the distribution of lifetime (1 / 2 / 3 / >3 dynamic
instructions).  Paper headline: up to 70% of values are read at most
once, and 50% of all values are read exactly once within three
instructions of being produced (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.usage import UsageHistogram
from ..sim.runner import usage_histogram
from ..workloads.suites import SUITE_NAMES
from .suite_data import SuiteData


@dataclass
class Fig2Result:
    """Per-suite usage histograms plus the aggregate."""

    per_suite: Dict[str, UsageHistogram]
    overall: UsageHistogram


def run_fig2(data: SuiteData) -> Fig2Result:
    per_suite: Dict[str, UsageHistogram] = {
        name: UsageHistogram() for name in SUITE_NAMES
    }
    overall = UsageHistogram()
    for spec, traces in data.items:
        histogram = usage_histogram(traces)
        if spec.suite in per_suite:
            per_suite[spec.suite].merge(histogram)
        overall.merge(histogram)
    return Fig2Result(per_suite=per_suite, overall=overall)


def format_fig2(result: Fig2Result) -> str:
    lines: List[str] = []
    lines.append("Figure 2(a): percent of all values read N times")
    header = f"{'suite':<12}" + "".join(
        f"{bucket + ' reads':>12}" for bucket in ("0", "1", "2", ">2")
    )
    lines.append(header)
    for suite, histogram in list(result.per_suite.items()) + [
        ("ALL", result.overall)
    ]:
        fractions = histogram.read_count_fractions()
        lines.append(
            f"{suite:<12}"
            + "".join(
                f"{100 * fractions[bucket]:>11.1f}%"
                for bucket in ("0", "1", "2", ">2")
            )
        )
    lines.append("")
    lines.append(
        "Figure 2(b): lifetime (instructions) of values read exactly once"
    )
    lines.append(
        f"{'suite':<12}" + "".join(
            f"{'life ' + bucket:>12}" for bucket in ("1", "2", "3", ">3")
        )
    )
    for suite, histogram in list(result.per_suite.items()) + [
        ("ALL", result.overall)
    ]:
        fractions = histogram.lifetime_fractions()
        lines.append(
            f"{suite:<12}"
            + "".join(
                f"{100 * fractions[bucket]:>11.1f}%"
                for bucket in ("1", "2", "3", ">3")
            )
        )
    lines.append("")
    lines.append(
        "paper: ~70% of values read at most once -> measured "
        f"{100 * result.overall.fraction_read_at_most_once():.1f}%"
    )
    lines.append(
        "paper: ~50% of all values read once within 3 instructions -> "
        f"measured {100 * result.overall.fraction_read_once_within(3):.1f}%"
    )
    lines.append(
        "paper: ~7% of values consumed by the shared datapath -> "
        f"measured {100 * result.overall.fraction_read_by_shared():.1f}%"
    )
    return "\n".join(lines)

"""Scalar-vs-compiled accounting benchmark (``repro bench-accounting``).

Times the two accounting paths over the standard workload suite — the
scalar event-walk oracle against the compiled columnar/histogram path
(software schemes via :func:`repro.sim.evaluate_traces`, hardware
schemes batched through :func:`repro.sim.runner.evaluate_traces_batch`
so all 12 sweep configurations share one event-program pass per unique
trace) — and writes the measurements as JSON (``BENCH_accounting.json``).

Method: allocations are prewarmed into a shared memo so both passes
time *accounting*, not the allocator; the engine record memo is never
involved (cold-engine, single-process numbers); the compiled pass runs
on freshly built trace sets, so one-time trace compilation is inside
the measured region; each pass is repeated and the best wall time kept.

Schema 2 adds machine-comparable normalized costs: per family, the
nanoseconds spent per dynamic instruction per scheme
(``*_ns_per_instr``), alongside the raw wall seconds.

Schema 3 adds an ``allocation`` section (additive; every schema-2 key
is unchanged): wall time to allocate the full software sweep per-config
from cold (``single_s`` — fresh analysis for every config, the
pre-batching pipeline) against the batched path (``batch_s`` — one
:func:`~repro.alloc.analysis.analyze_kernel` per kernel via
:func:`~repro.alloc.allocator.allocate_kernels_batch`), plus the cold
decomposition into the shared analysis share (``analysis_s``) and the
per-config levels-pass share (``levels_s``).

Schema 4 replaces fixed ``repeats`` + best-of with adaptive repetition
under a statistical stopping rule (:mod:`repro.bench`): every wall time
is now the **median** of adaptively collected samples, and a top-level
``"bench"`` section carries the full per-metric evidence — samples,
median, CI bounds, repeats used, stop reason — plus the environment
fingerprint.  Speedups are marked ``comparable`` (machine-portable,
gated by ``repro bench diff``); absolute seconds and per-instruction
nanoseconds are report-only.  The legacy section keys are unchanged in
shape, so schema-3 consumers keep working.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..alloc.allocator import allocate_kernel, allocate_kernels_batch
from ..alloc.analysis import analyze_kernel, clear_analysis_cache
from ..sim.runner import (
    AllocationMemo,
    TraceSet,
    allocate_for_traces,
    build_traces,
    evaluate_traces_batch,
)
from ..sim.schemes import Scheme, SchemeKind
from ..workloads.shapes import WorkloadSpec
from ..workloads.suites import all_workloads
from ..bench import (
    StoppingRule,
    bench_section,
    make_rule,
    measure,
    metric_from_samples,
    write_report,
)

BENCH_SCHEMA = 4

#: ORF/RFC sizes swept per scheme family — the Figure 11/12 x-axis.
ENTRY_SWEEP = (1, 2, 3, 4, 6, 8)


def software_schemes() -> List[Scheme]:
    return [
        Scheme(kind, entries, split_lrf=split)
        for entries in ENTRY_SWEEP
        for kind, split in (
            (SchemeKind.SW_TWO_LEVEL, False),
            (SchemeKind.SW_THREE_LEVEL, False),
            (SchemeKind.SW_THREE_LEVEL, True),
        )
    ]


def hardware_schemes() -> List[Scheme]:
    return [
        Scheme(kind, entries)
        for entries in ENTRY_SWEEP
        for kind in (SchemeKind.HW_TWO_LEVEL, SchemeKind.HW_THREE_LEVEL)
    ]


def _build_suite(scale: float) -> List[TraceSet]:
    return [
        build_traces(spec.kernel, spec.warp_inputs)
        for spec in all_workloads(scale)
    ]


def _prewarm_allocations(
    suite: Sequence[TraceSet], schemes: Sequence[Scheme]
) -> AllocationMemo:
    memo: AllocationMemo = {}
    for traces in suite:
        for scheme in schemes:
            if scheme.kind.is_software:
                allocate_for_traces(
                    traces.kernel, scheme.allocation_config(), memo=memo
                )
    return memo


def _time_pass(
    suite: Sequence[TraceSet],
    schemes: Sequence[Scheme],
    memo: AllocationMemo,
    use_compiled: bool,
) -> float:
    started = time.perf_counter()
    for traces in suite:
        evaluate_traces_batch(
            traces,
            schemes,
            allocation_memo=memo,
            use_compiled=use_compiled,
        )
    return time.perf_counter() - started


def _ratio_metric(
    name: str,
    numerator: Sequence[float],
    denominator: Sequence[float],
    rule: StoppingRule,
) -> Dict:
    """Pairwise ratio samples (e.g. speedups) from two sample sets."""
    n = min(len(numerator), len(denominator))
    ratios = [
        numerator[i] / denominator[i] if denominator[i] else 0.0
        for i in range(n)
    ]
    return metric_from_samples(
        name,
        ratios,
        unit="x",
        direction="higher",
        comparable=True,
        rule=rule,
        stop_reason="derived",
    )


def _bench_family(
    label: str,
    schemes: Sequence[Scheme],
    scale: float,
    rule: StoppingRule,
    memo: AllocationMemo,
    scalar_suite: Sequence[TraceSet],
) -> Tuple[Dict[str, float], Dict[str, Dict]]:
    scalar_samples, scalar_metric = measure(
        lambda i: _time_pass(
            scalar_suite, schemes, memo, use_compiled=False
        ),
        rule,
        name=f"{label}_scalar_s",
        unit="s",
        direction="lower",
    )
    # Fresh trace sets per repeat: trace compilation and the baseline /
    # analysis caches start cold, so their cost is part of the number.
    compiled_samples, compiled_metric = measure(
        lambda i: _time_pass(
            _build_suite(scale), schemes, memo, use_compiled=True
        ),
        rule,
        name=f"{label}_compiled_s",
        unit="s",
        direction="lower",
    )
    scalar_s = float(statistics.median(scalar_samples))
    compiled_s = float(statistics.median(compiled_samples))
    # Normalized cost (schema 2): nanoseconds per dynamic instruction
    # per scheme — comparable across machines and suite scales.
    accounted = sum(
        traces.dynamic_instructions for traces in scalar_suite
    ) * len(schemes)

    def _per_instr(entry: Dict, samples: Sequence[float]) -> Dict:
        scaled = dict(entry)
        scaled["samples"] = [
            round(v / accounted * 1e9, 2) for v in samples
        ]
        scaled["median"] = round(entry["median"] / accounted * 1e9, 2)
        scaled["ci"] = [
            round(v / accounted * 1e9, 2) for v in entry["ci"]
        ]
        scaled["unit"] = "ns/instr"
        return scaled

    metrics = {
        f"{label}_scalar_ns_per_instr": _per_instr(
            scalar_metric, scalar_samples
        ),
        f"{label}_compiled_ns_per_instr": _per_instr(
            compiled_metric, compiled_samples
        ),
        f"{label}_speedup": _ratio_metric(
            f"{label}_speedup", scalar_samples, compiled_samples, rule
        ),
    }
    row = {
        "schemes": len(schemes),
        "scalar_s": round(scalar_s, 6),
        "compiled_s": round(compiled_s, 6),
        "scalar_ns_per_instr": round(scalar_s / accounted * 1e9, 2),
        "compiled_ns_per_instr": round(compiled_s / accounted * 1e9, 2),
        "speedup": round(scalar_s / compiled_s, 2) if compiled_s else 0.0,
    }
    return row, metrics


def _bench_allocation(
    suite: Sequence[TraceSet],
    schemes: Sequence[Scheme],
    rule: StoppingRule,
) -> Tuple[Dict[str, float], Dict[str, Dict]]:
    """Time the software sweep's allocation phase, per-config vs. batched.

    ``single_s`` reproduces the pre-batching pipeline — every config
    pays a fresh scheme-independent analysis — by calling
    :func:`analyze_kernel` (uncached) per config.  ``batch_s`` clears
    the analysis cache and runs :func:`allocate_kernels_batch` cold, so
    both numbers include exactly one pipeline's worth of work and the
    ratio is the batching win.  ``analysis_s``/``levels_s`` decompose
    one cold batched run: the shared analysis share and the per-config
    levels-pass share.
    """
    configs = [
        scheme.allocation_config()
        for scheme in schemes
        if scheme.kind.is_software
    ]
    kernels = [traces.kernel for traces in suite]
    flags = sorted({config.assume_persistent_strands for config in configs})

    def _single() -> float:
        started = time.perf_counter()
        for kernel in kernels:
            for config in configs:
                analysis = analyze_kernel(
                    kernel, config.assume_persistent_strands
                )
                allocate_kernel(
                    kernel.clone(), config, analysis=analysis
                )
        return time.perf_counter() - started

    def _batch() -> float:
        clear_analysis_cache()
        started = time.perf_counter()
        for kernel in kernels:
            allocate_kernels_batch(kernel, configs)
        return time.perf_counter() - started

    single_samples, single_metric = measure(
        lambda i: _single(),
        rule,
        name="allocation_single_s",
        unit="s",
        direction="lower",
    )
    batch_samples, batch_metric = measure(
        lambda i: _batch(),
        rule,
        name="allocation_batch_s",
        unit="s",
        direction="lower",
    )
    single_s = float(statistics.median(single_samples))
    batch_s = float(statistics.median(batch_samples))

    def _analysis() -> float:
        started = time.perf_counter()
        for kernel in kernels:
            for flag in flags:
                analyses[(kernel.content_fingerprint(), flag)] = (
                    analyze_kernel(kernel, flag)
                )
        return time.perf_counter() - started

    def _levels() -> float:
        started = time.perf_counter()
        for kernel in kernels:
            for config in configs:
                analysis = analyses[
                    (
                        kernel.content_fingerprint(),
                        config.assume_persistent_strands,
                    )
                ]
                allocate_kernel(
                    kernel.clone(), config, analysis=analysis
                )
        return time.perf_counter() - started

    analyses: Dict = {}
    analysis_samples, _ = measure(
        lambda i: _analysis(),
        rule,
        name="allocation_analysis_s",
        unit="s",
        direction="lower",
    )
    levels_samples, _ = measure(
        lambda i: _levels(),
        rule,
        name="allocation_levels_s",
        unit="s",
        direction="lower",
    )
    analysis_s = float(statistics.median(analysis_samples))
    levels_s = float(statistics.median(levels_samples))
    row = {
        "configs": len(configs),
        "kernels": len(kernels),
        "single_s": round(single_s, 6),
        "batch_s": round(batch_s, 6),
        "analysis_s": round(analysis_s, 6),
        "levels_s": round(levels_s, 6),
        "speedup": round(single_s / batch_s, 2) if batch_s else 0.0,
    }
    metrics = {
        "allocation_single_s": single_metric,
        "allocation_batch_s": batch_metric,
        "allocation_speedup": _ratio_metric(
            "allocation_speedup", single_samples, batch_samples, rule
        ),
    }
    return row, metrics


def run_bench_accounting(
    scale: float = 1.0,
    repeats: int = 3,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    *,
    rule: Optional[StoppingRule] = None,
) -> Dict:
    """Measure scalar vs. compiled accounting; return the JSON payload.

    ``repeats`` sets the stopping rule's ``min_repeats`` when no
    explicit ``rule`` is given (the default rule is a bootstrap-CI
    repeater capped at ``max(repeats, 10)`` repeats).
    """
    if rule is None:
        rule = make_rule(
            "ci",
            min_repeats=repeats,
            max_repeats=max(repeats, 10),
            target=0.05,
            seed=0,
        )
    specs = list(workloads) if workloads is not None else all_workloads(scale)
    suite = [
        build_traces(spec.kernel, spec.warp_inputs) for spec in specs
    ]
    sw = software_schemes()
    hw = hardware_schemes()
    memo = _prewarm_allocations(suite, sw)
    software_row, software_metrics = _bench_family(
        "software", sw, scale, rule, memo, suite
    )
    hardware_row, hardware_metrics = _bench_family(
        "hardware", hw, scale, rule, memo, suite
    )
    baseline_row, baseline_metrics = _bench_family(
        "baseline", [Scheme(SchemeKind.BASELINE)], scale, rule, memo, suite
    )
    allocation_row, allocation_metrics = _bench_allocation(suite, sw, rule)
    metrics: Dict[str, Dict] = {}
    for group in (
        software_metrics,
        hardware_metrics,
        baseline_metrics,
        allocation_metrics,
    ):
        metrics.update(group)
    payload = {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "suite": {
            "workloads": len(suite),
            "dynamic_instructions": sum(
                traces.dynamic_instructions for traces in suite
            ),
            "unique_traces": sum(
                traces.unique_trace_count for traces in suite
            ),
            "warp_traces": sum(
                len(traces.warp_traces) for traces in suite
            ),
            "static_instructions": sum(
                traces.kernel.num_instructions for traces in suite
            ),
        },
        "software": software_row,
        "hardware": hardware_row,
        "baseline": baseline_row,
        "allocation": allocation_row,
        "bench": bench_section("bench-accounting", metrics, rule=rule),
    }
    return payload


def format_bench_accounting(payload: Dict) -> str:
    suite = payload["suite"]
    lines = [
        "Accounting benchmark: scalar event walk vs. compiled "
        "columnar traces",
        f"  suite: {suite['workloads']} workloads, "
        f"{suite['dynamic_instructions']} dynamic / "
        f"{suite['static_instructions']} static instructions, "
        f"{suite['unique_traces']}/{suite['warp_traces']} unique warp "
        "traces",
    ]
    for family in ("software", "hardware", "baseline"):
        row = payload[family]
        lines.append(
            f"  {family:<9} {row['schemes']:>3} schemes   "
            f"scalar {row['scalar_s']:8.3f}s "
            f"({row['scalar_ns_per_instr']:8.1f} ns/instr)   "
            f"compiled {row['compiled_s']:8.3f}s "
            f"({row['compiled_ns_per_instr']:8.1f} ns/instr)   "
            f"{row['speedup']:6.2f}x"
        )
    alloc = payload.get("allocation")
    if alloc is not None:
        lines.append(
            f"  allocation {alloc['configs']} configs x "
            f"{alloc['kernels']} kernels   "
            f"per-config {alloc['single_s']:8.3f}s   "
            f"batched {alloc['batch_s']:8.3f}s "
            f"(analysis {alloc['analysis_s']:.3f}s + "
            f"levels {alloc['levels_s']:.3f}s)   "
            f"{alloc['speedup']:6.2f}x"
        )
    bench = payload.get("bench")
    if bench is not None:
        rule = bench.get("rule", {})
        env = bench.get("env", {})
        stops = sorted({
            metric.get("stop_reason", "?")
            for metric in bench.get("metrics", {}).values()
        })
        lines.append(
            f"  stopping rule: {rule.get('rule', 'fixed')} "
            f"(target {rule.get('target', '-')}, "
            f"{rule.get('min_repeats', '-')}..{rule.get('max_repeats', '-')}"
            f" repeats), stop reasons: {', '.join(stops)}"
        )
        lines.append(
            f"  env: python {env.get('python')} on {env.get('machine')} "
            f"({env.get('cpu_count')} cpus, "
            f"governor {env.get('governor') or 'n/a'})"
        )
    return "\n".join(lines)


def write_bench_accounting(path: str, payload: Dict) -> str:
    return str(write_report(path, payload))

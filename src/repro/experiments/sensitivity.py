"""Energy-model sensitivity study (robustness of the paper's
conclusions).

The paper's constants come from one 40 nm synthesis run (Section 5.2).
How far can they move before the conclusions change?  This study sweeps
multipliers on the MRF access energy, the wire energy, and the ORF
access energy; accesses are re-priced under each scaled model (the
allocation itself is the compiler's, made against the Table 3
constants — mirroring a binary compiled once and deployed on silicon
whose real energies drift from the model) and the study records:

* the best software design's savings,
* the hardware RFC's savings,
* whether the paper's ordering (SW split-LRF beats HW RFC) holds.

Expected outcome: the ordering is robust across the entire plausible
range — software control wins because it avoids write-back traffic and
captures MRF-resident reuse, not because of any particular constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..energy.accounting import normalized_energy
from ..energy.model import EnergyModel
from ..hierarchy.counters import AccessCounters
from ..sim.runner import evaluate_traces
from ..sim.schemes import Scheme, SchemeKind
from .suite_data import SuiteData

DEFAULT_FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0)


@dataclass
class SensitivityPoint:
    component: str
    factor: float
    sw_savings: float
    hw_savings: float

    @property
    def ordering_holds(self) -> bool:
        return self.sw_savings > self.hw_savings


@dataclass
class SensitivityResult:
    points: List[SensitivityPoint] = field(default_factory=list)

    def all_orderings_hold(self) -> bool:
        return all(point.ordering_holds for point in self.points)

    def by_component(self) -> Dict[str, List[SensitivityPoint]]:
        result: Dict[str, List[SensitivityPoint]] = {}
        for point in self.points:
            result.setdefault(point.component, []).append(point)
        return result


def _evaluate(
    data: SuiteData, scheme: Scheme, model: EnergyModel
) -> float:
    """Normalized energy with accesses re-priced under a scaled model.

    The allocation is the unmodified compiler output (Table 3 model);
    only the per-access costs change.  The seed version of this study
    pre-allocated each kernel in place with the scaled model, but that
    allocation was silently discarded by ``evaluate_traces`` — the
    in-place mutation was its only effect.
    """
    counters = AccessCounters()
    baseline = AccessCounters()
    for spec, traces in data.items:
        evaluation = data.evaluate(traces, scheme)
        counters.merge(evaluation.counters)
        baseline.merge(evaluation.baseline)
    return normalized_energy(counters, baseline, model)


def run_sensitivity_study(
    data: SuiteData,
    factors: Sequence[float] = DEFAULT_FACTORS,
) -> SensitivityResult:
    result = SensitivityResult()
    sw_scheme = Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
    hw_scheme = Scheme(SchemeKind.HW_TWO_LEVEL, 3)
    base_model = sw_scheme.energy_model()
    for component in ("mrf", "wire", "orf"):
        for factor in factors:
            model = base_model.scaled(**{component: factor})
            sw_energy = _evaluate(data, sw_scheme, model)
            hw_energy = _evaluate(data, hw_scheme, model)
            result.points.append(
                SensitivityPoint(
                    component=component,
                    factor=factor,
                    sw_savings=1.0 - sw_energy,
                    hw_savings=1.0 - hw_energy,
                )
            )
    return result


def format_sensitivity(result: SensitivityResult) -> str:
    lines: List[str] = []
    lines.append(
        "Energy-model sensitivity: savings vs component scaling "
        "(allocator re-tuned per model)"
    )
    lines.append(
        f"{'component':<11}{'factor':>8}{'SW split':>10}{'HW RFC':>9}"
        f"{'SW>HW':>7}"
    )
    for component, points in result.by_component().items():
        for point in points:
            lines.append(
                f"{component:<11}{point.factor:>8.2f}"
                f"{100 * point.sw_savings:>9.1f}%"
                f"{100 * point.hw_savings:>8.1f}%"
                f"{'yes' if point.ordering_holds else 'NO':>7}"
            )
    lines.append("")
    verdict = (
        "the paper's conclusion (software control beats hardware "
        "caching) holds at every point"
        if result.all_orderings_hold()
        else "WARNING: the ordering flips at some point above"
    )
    lines.append(verdict)
    return "\n".join(lines)

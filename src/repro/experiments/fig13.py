"""Figure 13: normalized access + wire energy of every organisation.

The paper's headline figure.  Four curves over 1-8 entries per thread,
normalized to the single-level register file:

* ``HW``       — hardware RFC + MRF          (paper best: 34% at 3)
* ``HW LRF``   — hardware LRF + RFC + MRF    (paper best: 41% at 6)
* ``SW``       — software ORF + MRF          (paper best: 45% at 3)
* ``SW LRF Split`` — software split LRF + ORF + MRF (paper best: 54% at 3)

Also reports the unified-LRF software variant (split is worth ~4% in
the paper, Section 6.4) and the baseline-algorithm ablation (partial
range + read operand allocation are worth 3-4%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..energy.chip_power import chip_power_savings
from ..sim.schemes import Scheme, SchemeKind
from .fig11 import ENTRY_SWEEP
from .suite_data import SuiteData

#: Figure 13 series, in the paper's legend order.
SERIES: Tuple[Tuple[str, Scheme], ...] = (
    ("HW", Scheme(SchemeKind.HW_TWO_LEVEL)),
    ("HW LRF", Scheme(SchemeKind.HW_THREE_LEVEL)),
    ("SW", Scheme(SchemeKind.SW_TWO_LEVEL)),
    ("SW LRF Split", Scheme(SchemeKind.SW_THREE_LEVEL, split_lrf=True)),
)

EXTRA_SERIES: Tuple[Tuple[str, Scheme], ...] = (
    ("SW LRF Unified", Scheme(SchemeKind.SW_THREE_LEVEL)),
    (
        "SW (no opts)",
        Scheme(
            SchemeKind.SW_TWO_LEVEL,
            enable_partial_ranges=False,
            enable_read_operands=False,
        ),
    ),
)

#: Paper-reported best savings per series, for the comparison table.
PAPER_BEST = {
    "HW": (3, 0.34),
    "HW LRF": (6, 0.41),
    "SW": (3, 0.45),
    "SW LRF Split": (3, 0.54),
}


@dataclass
class Fig13Result:
    """name -> {entries -> normalized energy}."""

    curves: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def best(self, name: str) -> Tuple[int, float]:
        """(entries, normalized energy) of the most efficient size."""
        curve = self.curves[name]
        entries = min(curve, key=curve.get)
        return entries, curve[entries]

    def savings(self, name: str, entries: int) -> float:
        return 1.0 - self.curves[name][entries]


def run_fig13(
    data: SuiteData,
    sweep: Sequence[int] = ENTRY_SWEEP,
    include_extras: bool = True,
) -> Fig13Result:
    result = Fig13Result()
    series = SERIES + (EXTRA_SERIES if include_extras else ())
    for name, base_scheme in series:
        curve: Dict[int, float] = {}
        for entries in sweep:
            scheme = base_scheme.with_entries(entries)
            curve[entries] = data.normalized_energy(scheme)
        result.curves[name] = curve
    return result


def format_fig13(result: Fig13Result) -> str:
    lines: List[str] = []
    lines.append(
        "Figure 13: normalized access+wire energy "
        "(single-level register file = 1.0)"
    )
    names = list(result.curves)
    sweep = sorted(next(iter(result.curves.values())))
    lines.append(
        f"{'entries':>8}" + "".join(f"{name:>16}" for name in names)
    )
    for entries in sweep:
        lines.append(
            f"{entries:>8}"
            + "".join(
                f"{result.curves[name][entries]:>16.3f}" for name in names
            )
        )
    lines.append("")
    lines.append("Best configuration per series (paper in parentheses):")
    for name in names:
        entries, energy = result.best(name)
        saving = 1.0 - energy
        paper = PAPER_BEST.get(name)
        paper_note = (
            f" (paper: {100 * paper[1]:.0f}% at {paper[0]} entries)"
            if paper
            else ""
        )
        lines.append(
            f"  {name:<16} {100 * saving:5.1f}% savings at {entries} "
            f"entries/thread{paper_note}"
        )
    best_entries, best_energy = result.best("SW LRF Split")
    chip = chip_power_savings(1.0 - best_energy)
    lines.append("")
    lines.append(
        "Section 6.4 power scaling of the best design: "
        f"{100 * chip.register_file_savings:.1f}% RF energy -> "
        f"{100 * chip.sm_dynamic_power_savings:.1f}% SM dynamic power "
        f"(paper 8.3%) -> "
        f"{100 * chip.chip_dynamic_power_savings:.1f}% chip-wide "
        "(paper 5.8%)"
    )
    if "SW LRF Unified" in result.curves:
        _, unified = result.best("SW LRF Unified")
        lines.append(
            "split vs unified LRF: "
            f"{100 * (unified - best_energy):+.1f} points "
            "(paper: split saves ~4%)"
        )
    if "SW (no opts)" in result.curves:
        _, no_opts = result.best("SW (no opts)")
        _, sw = result.best("SW")
        lines.append(
            "partial-range + read-operand allocation: "
            f"{100 * (no_opts - sw):+.1f} points (paper: 3-4%)"
        )
    return "\n".join(lines)

"""Instruction encoding overhead study (Section 6.5).

Combines the measured best-configuration register file savings with the
paper's fetch/decode energy model: the optimistic encoding costs one
extra bit per instruction (the strand-end marker; hierarchy levels fit
in unused register-namespace encodings), the pessimistic one costs five
(four namespace bits plus the strand bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..energy.encoding import EncodingOverheadResult, encoding_overhead
from ..sim.schemes import BEST_SCHEME
from .suite_data import SuiteData


@dataclass
class EncodingStudyResult:
    register_file_savings: float
    optimistic: EncodingOverheadResult
    pessimistic: EncodingOverheadResult


def run_encoding_study(data: SuiteData) -> EncodingStudyResult:
    savings = 1.0 - data.normalized_energy(BEST_SCHEME)
    return EncodingStudyResult(
        register_file_savings=savings,
        optimistic=encoding_overhead(1, savings),
        pessimistic=encoding_overhead(5, savings),
    )


def format_encoding_study(result: EncodingStudyResult) -> str:
    lines: List[str] = []
    lines.append("Section 6.5: instruction encoding overhead")
    lines.append(
        f"  measured register file savings: "
        f"{100 * result.register_file_savings:.1f}% (paper 54%)"
    )
    for label, outcome, paper in (
        ("optimistic (1 extra bit)", result.optimistic,
         "+3% fetch/decode, 0.3% chip, net 5.5%"),
        ("pessimistic (5 extra bits)", result.pessimistic,
         "+15% fetch/decode, 1.5% chip, net >=4.3%"),
    ):
        lines.append(f"  {label}  [paper: {paper}]")
        lines.append(
            f"    fetch/decode energy increase: "
            f"{100 * outcome.fetch_decode_increase:.1f}%"
        )
        lines.append(
            f"    chip-wide overhead: "
            f"{100 * outcome.chip_wide_overhead:.2f}%"
        )
        lines.append(
            f"    chip-wide net savings: "
            f"{100 * outcome.chip_wide_net_savings:.2f}%"
        )
    return "\n".join(lines)

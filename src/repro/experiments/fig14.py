"""Figure 14: energy breakdown of the most efficient configuration.

For the best design (software three-level hierarchy with a split LRF),
sweeps ORF entries per thread and splits the normalized energy into
access and wire components per level.  Paper observations (Section
6.4): roughly two thirds of the remaining energy is MRF (split about
evenly between access and wire); the LRF serves a third of the reads
but costs almost nothing; LRF wire energy is under 1% of baseline even
when split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..energy.accounting import compute_energy
from ..levels import ALL_LEVELS, Level
from ..sim.schemes import Scheme, SchemeKind
from .fig11 import ENTRY_SWEEP
from .suite_data import SuiteData


@dataclass
class Fig14Point:
    entries: int
    #: Fractions of baseline total energy.
    access: Dict[Level, float]
    wire: Dict[Level, float]

    @property
    def total(self) -> float:
        return sum(self.access.values()) + sum(self.wire.values())


@dataclass
class Fig14Result:
    points: List[Fig14Point] = field(default_factory=list)

    def point(self, entries: int) -> Fig14Point:
        for point in self.points:
            if point.entries == entries:
                return point
        raise KeyError(f"no point for entries={entries}")


def run_fig14(
    data: SuiteData, sweep: Sequence[int] = ENTRY_SWEEP
) -> Fig14Result:
    result = Fig14Result()
    for entries in sweep:
        scheme = Scheme(
            SchemeKind.SW_THREE_LEVEL, entries, split_lrf=True
        )
        counters, baseline = data.aggregate(scheme)
        model = scheme.energy_model()
        breakdown = compute_energy(counters, model)
        baseline_total = compute_energy(baseline, model).total_pj
        result.points.append(
            Fig14Point(
                entries=entries,
                access={
                    level: breakdown.access_pj[level] / baseline_total
                    for level in ALL_LEVELS
                },
                wire={
                    level: breakdown.wire_pj[level] / baseline_total
                    for level in ALL_LEVELS
                },
            )
        )
    return result


def format_fig14(result: Fig14Result) -> str:
    lines: List[str] = []
    lines.append(
        "Figure 14: energy breakdown of the best design "
        "(SW split LRF), fractions of baseline energy"
    )
    lines.append(
        f"{'ORF ent':>8}{'MRF acc':>9}{'MRF wire':>10}{'ORF acc':>9}"
        f"{'ORF wire':>10}{'LRF acc':>9}{'LRF wire':>10}{'total':>8}"
    )
    for point in result.points:
        lines.append(
            f"{point.entries:>8}"
            f"{100 * point.access[Level.MRF]:>8.1f}%"
            f"{100 * point.wire[Level.MRF]:>9.1f}%"
            f"{100 * point.access[Level.ORF]:>8.1f}%"
            f"{100 * point.wire[Level.ORF]:>9.1f}%"
            f"{100 * point.access[Level.LRF]:>8.1f}%"
            f"{100 * point.wire[Level.LRF]:>9.1f}%"
            f"{100 * point.total:>7.1f}%"
        )
    best = result.point(3)
    mrf_fraction = (
        best.access[Level.MRF] + best.wire[Level.MRF]
    ) / best.total
    lines.append("")
    lines.append(
        "paper: ~2/3 of remaining energy is MRF -> measured "
        f"{100 * mrf_fraction:.1f}% at 3 entries"
    )
    lines.append(
        "paper: LRF wire energy <1% of baseline -> measured "
        f"{100 * best.wire[Level.LRF]:.2f}%"
    )
    return "\n".join(lines)

"""Figure 15: per-benchmark energy of the most efficient configuration.

Normalized register file energy per benchmark under the best design
(3-entry ORF, split LRF, partial range + read operand allocation),
sorted by savings.  Paper observations (Section 6.4): Reduction and
ScalarProd save the least (~25% and ~30%) because their tight
global-load loops pass few values in registers and are frequently
descheduled, invalidating the LRF/ORF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.schemes import BEST_SCHEME
from ..workloads.suites import suite_of
from .suite_data import SuiteData


@dataclass
class Fig15Result:
    #: benchmark -> normalized energy, best configuration.
    energies: Dict[str, float]

    def sorted_by_savings(self) -> List[Tuple[str, float]]:
        """Most-saving benchmark first (the paper sorts the reverse
        way on the figure; both orders are one sort away)."""
        return sorted(self.energies.items(), key=lambda item: item[1])

    @property
    def mean(self) -> float:
        return sum(self.energies.values()) / len(self.energies)

    def worst(self, count: int = 2) -> List[Tuple[str, float]]:
        return sorted(
            self.energies.items(), key=lambda item: -item[1]
        )[:count]


def run_fig15(data: SuiteData) -> Fig15Result:
    return Fig15Result(data.per_benchmark_energy(BEST_SCHEME))


def format_fig15(result: Fig15Result) -> str:
    lines: List[str] = []
    lines.append(
        "Figure 15: per-benchmark normalized energy, best configuration "
        "(3-entry ORF, split LRF), sorted by savings"
    )
    for name, energy in result.sorted_by_savings():
        bar = "#" * int(round(40 * energy))
        lines.append(
            f"  {name:<22} {suite_of(name):<9} {energy:6.3f}  {bar}"
        )
    lines.append(f"  {'MEAN':<22} {'':<9} {result.mean:6.3f}")
    lines.append("")
    worst = result.worst(2)
    lines.append(
        "paper: Reduction (~25% savings) and ScalarProd (~30%) save "
        "least -> measured worst: "
        + ", ".join(
            f"{name} ({100 * (1 - energy):.1f}%)" for name, energy in worst
        )
    )
    return "\n".join(lines)

"""Variable ORF allocation: fixed vs realistic scheduler vs oracle
(Section 7, "Variable Allocation of ORF Resources").

The paper evaluates an *oracle* policy — the scheduler knows the
register needs of future threads — and reports ~6% further savings,
noting that "a realistic scheduler would perform worse than our oracle
scheduler".  This module implements that realistic scheduler so the gap
can actually be measured:

* every kernel is compiled once per ORF size (1-8 entries), producing
  per-strand access counters for each size — the information a strand
  header would carry;
* the *header* of each static strand declares, per size, the energy the
  strand saves relative to running entirely from the MRF;
* a shared pool of ``active_warps x base_entries`` ORF entries is
  simulated: warps' strand executions interleave round-robin; at each
  strand entry the warp requests the smallest size within
  ``request_tolerance`` of its best declared savings, the scheduler
  grants what is available (no future knowledge), and the strand runs
  with the counters of the granted size (0 granted = all-MRF);
* the oracle instead charges every strand execution at its individually
  best size, ignoring pool contention — the paper's upper bound.

Access energy is charged at the base structure's Table 3 row: the pool
is the same physical array regardless of how entries are partitioned
across warps (the paper's oracle makes the same assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..alloc.allocator import AllocationConfig
from ..energy.accounting import compute_energy
from ..energy.model import EnergyModel
from ..hierarchy.counters import AccessCounters
from ..ir.kernel import Kernel
from ..sim.accounting import (
    BaselineAccounting,
    SoftwareAccounting,
)
from ..sim.executor import TraceEvent
from ..sim.runner import TraceSet, allocate_for_traces
from .suite_data import SuiteData

SIZES = tuple(range(1, 9))


@dataclass
class StrandExecution:
    """One dynamic execution of a strand by one warp."""

    warp: int
    strand_key: Tuple[str, int]
    #: Access counters per compiled ORF size (0 = all-MRF fallback).
    counters_by_size: Dict[int, AccessCounters]

    def energy(self, size: int, model: EnergyModel) -> float:
        return compute_energy(self.counters_by_size[size], model).total_pj


@dataclass
class VariableOrfResult:
    """Normalized energies of the three policies."""

    fixed: float
    realistic: float
    oracle: float
    #: Fraction of realistic grants that were smaller than requested.
    starved_fraction: float


def _split_executions(
    trace: Sequence[TraceEvent], strand_of_position: Dict[int, int]
) -> List[List[TraceEvent]]:
    """Split a warp trace at strand boundaries (strand change or
    position non-increase within the same strand)."""
    executions: List[List[TraceEvent]] = []
    current: List[TraceEvent] = []
    prev_strand: Optional[int] = None
    prev_position: Optional[int] = None
    for event in trace:
        position = event.ref.position
        strand = strand_of_position.get(position)
        boundary = strand != prev_strand or (
            prev_position is not None and position <= prev_position
        )
        if boundary and current:
            executions.append(current)
            current = []
        current.append(event)
        prev_strand = strand
        prev_position = position
    if current:
        executions.append(current)
    return executions


def _account_events(
    events: Sequence[TraceEvent],
    software: bool,
    annotation_kernel: Optional[Kernel] = None,
) -> AccessCounters:
    counters = AccessCounters()
    driver = (
        SoftwareAccounting(counters, annotation_kernel)
        if software
        else BaselineAccounting(counters)
    )
    for event in events:
        driver.process(event)
    driver.finish()
    return counters


def collect_strand_executions(
    items: Sequence[Tuple[object, TraceSet]],
    base_config: AllocationConfig,
) -> Tuple[List[List[StrandExecution]], AccessCounters]:
    """Per-warp ordered strand executions with per-size counters,
    plus the single-level baseline counters for normalisation.

    Warps are numbered across workloads (each simulated warp is an
    independent resident warp competing for the pool).
    """
    per_warp: List[List[StrandExecution]] = []
    baseline = AccessCounters()
    memo: Dict = {}

    # Pass 0: split every warp's trace into executions; account the
    # all-MRF fallback and the baseline.
    raw: List[Tuple[object, TraceSet, List[List[List[TraceEvent]]]]] = []
    for spec, traces in items:
        result = allocate_for_traces(spec.kernel, base_config, memo=memo)
        strand_map = result.partition.strand_of_position
        warp_splits = [
            _split_executions(trace, strand_map)
            for trace in traces.warp_traces
        ]
        raw.append((spec, traces, warp_splits))
        for trace in traces.warp_traces:
            baseline.merge(_account_events(trace, software=False))

    # Per size: reallocate and account each execution.
    counters_store: Dict[
        Tuple[int, int, int], Dict[int, AccessCounters]
    ] = {}
    for workload_index, (spec, traces, warp_splits) in enumerate(raw):
        for warp_index, executions in enumerate(warp_splits):
            for exec_index, events in enumerate(executions):
                counters_store[
                    (workload_index, warp_index, exec_index)
                ] = {0: _account_events(events, software=False)}
    for size in SIZES:
        for workload_index, (spec, traces, warp_splits) in enumerate(raw):
            config = AllocationConfig(
                orf_entries=size,
                use_lrf=base_config.use_lrf,
                split_lrf=base_config.split_lrf,
                enable_partial_ranges=base_config.enable_partial_ranges,
                enable_read_operands=base_config.enable_read_operands,
                allow_forward_branches=base_config.allow_forward_branches,
            )
            allocation = allocate_for_traces(spec.kernel, config, memo=memo)
            for warp_index, executions in enumerate(warp_splits):
                for exec_index, events in enumerate(executions):
                    counters_store[
                        (workload_index, warp_index, exec_index)
                    ][size] = _account_events(
                        events, software=True,
                        annotation_kernel=allocation.kernel,
                    )

    warp_counter = 0
    for workload_index, (spec, traces, warp_splits) in enumerate(raw):
        strand_map = allocate_for_traces(
            spec.kernel, base_config, memo=memo
        ).partition.strand_of_position
        for warp_index, executions in enumerate(warp_splits):
            sequence: List[StrandExecution] = []
            for exec_index, events in enumerate(executions):
                strand = strand_map.get(events[0].ref.position, -1)
                sequence.append(
                    StrandExecution(
                        warp=warp_counter,
                        strand_key=(spec.name, strand),
                        counters_by_size=counters_store[
                            (workload_index, warp_index, exec_index)
                        ],
                    )
                )
            per_warp.append(sequence)
            warp_counter += 1
    return per_warp, baseline


def _strand_headers(
    per_warp: Sequence[Sequence[StrandExecution]],
    model: EnergyModel,
) -> Dict[Tuple[str, int], Dict[int, float]]:
    """Static strand headers: mean declared savings per size."""
    sums: Dict[Tuple[str, int], Dict[int, float]] = {}
    counts: Dict[Tuple[str, int], int] = {}
    for sequence in per_warp:
        for execution in sequence:
            key = execution.strand_key
            counts[key] = counts.get(key, 0) + 1
            per_size = sums.setdefault(key, {s: 0.0 for s in SIZES})
            base = execution.energy(0, model)
            for size in SIZES:
                per_size[size] += base - execution.energy(size, model)
    return {
        key: {size: total / counts[key] for size, total in per_size.items()}
        for key, per_size in sums.items()
    }


def _request_size(
    header: Dict[int, float], tolerance: float
) -> int:
    """Smallest size within ``tolerance`` of the best declared saving."""
    best = max(header.values())
    if best <= 0:
        return 0
    for size in SIZES:
        if header[size] >= (1.0 - tolerance) * best:
            return size
    return SIZES[-1]


def simulate_realistic(
    per_warp: Sequence[Sequence[StrandExecution]],
    model: EnergyModel,
    pool_entries: int,
    active_warps: int = 8,
    request_tolerance: float = 0.05,
) -> Tuple[float, float]:
    """(total pJ, starved fraction) under the realistic pool scheduler.

    Strand executions interleave round-robin across warps in windows of
    ``active_warps``; entries are granted first-come-first-served from
    the shared pool and returned at strand end (strands in this model
    run to completion within their scheduling turn, matching the
    trace-level abstraction).
    """
    headers = _strand_headers(per_warp, model)
    total_pj = 0.0
    grants = 0
    starved = 0

    queues = [list(sequence) for sequence in per_warp]
    pending = [q for q in queues if q]
    while pending:
        window = pending[:active_warps]
        available = pool_entries
        scheduled: List[Tuple[StrandExecution, int]] = []
        for queue in window:
            execution = queue.pop(0)
            request = _request_size(
                headers[execution.strand_key], request_tolerance
            )
            granted = min(request, available)
            available -= granted
            scheduled.append((execution, granted))
            grants += 1
            if granted < request:
                starved += 1
        for execution, granted in scheduled:
            total_pj += execution.energy(granted, model)
        pending = [q for q in queues if q]
    return total_pj, (starved / grants if grants else 0.0)


def oracle_energy(
    per_warp: Sequence[Sequence[StrandExecution]],
    model: EnergyModel,
) -> float:
    """Every strand execution at its individually best size (Section 7's
    oracle upper bound; ignores pool contention)."""
    total = 0.0
    for sequence in per_warp:
        for execution in sequence:
            total += min(
                execution.energy(size, model) for size in (0,) + SIZES
            )
    return total


def run_variable_orf_study(
    data: SuiteData,
    base_entries: int = 3,
    active_warps: int = 8,
) -> VariableOrfResult:
    def compute() -> Dict[str, float]:
        base_config = AllocationConfig(
            orf_entries=base_entries, use_lrf=True, split_lrf=True
        )
        model = EnergyModel(orf_entries=base_entries, split_lrf=True)
        per_warp, baseline = collect_strand_executions(
            data.items, base_config
        )
        baseline_pj = compute_energy(baseline, model).total_pj

        fixed_pj = sum(
            execution.energy(base_entries, model)
            for sequence in per_warp
            for execution in sequence
        )
        realistic_pj, starved = simulate_realistic(
            per_warp, model,
            pool_entries=base_entries * active_warps,
            active_warps=active_warps,
        )
        oracle_pj = oracle_energy(per_warp, model)
        return {
            "fixed": fixed_pj / baseline_pj,
            "realistic": realistic_pj / baseline_pj,
            "oracle": oracle_pj / baseline_pj,
            "starved_fraction": starved,
        }

    if data.engine is None:
        values = compute()
    else:
        values = data.engine.memo_study(
            (
                "variable-orf",
                data.content_fingerprint(),
                str(base_entries),
                str(active_warps),
            ),
            compute,
        )
    return VariableOrfResult(
        fixed=values["fixed"],
        realistic=values["realistic"],
        oracle=values["oracle"],
        starved_fraction=values["starved_fraction"],
    )


def format_variable_orf(result: VariableOrfResult) -> str:
    lines = [
        "Variable ORF allocation (Section 7): fixed vs realistic vs "
        "oracle",
        f"  fixed 3 entries/warp:     {result.fixed:6.3f} "
        f"({100 * (1 - result.fixed):5.1f}% savings)",
        f"  realistic pool scheduler: {result.realistic:6.3f} "
        f"({100 * (1 - result.realistic):5.1f}% savings, "
        f"{100 * result.starved_fraction:.1f}% of grants starved)",
        f"  oracle per-strand sizing: {result.oracle:6.3f} "
        f"({100 * (1 - result.oracle):5.1f}% savings)",
        "",
        "paper: the oracle saves ~6 further points; a realistic "
        "scheduler 'would perform worse than our oracle' — the gap "
        "above quantifies how much.",
    ]
    return "\n".join(lines)

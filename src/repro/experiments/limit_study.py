"""Register hierarchy limit study (Section 7).

Idealised variants bounding how much better operand delivery could get:

* *ideal all-LRF* — every access served by the LRF (paper: 87% savings;
  not realisable, the LRF cannot hold the working set);
* *ideal all-ORF(5)* — every access served by a 5-entry ORF (61%);
* *variable ORF allocation* — an oracle scheduler gives each strand the
  ORF size that minimises its energy (paper: ~6% further savings);
* *fewer active warps* — running 6 instead of 8 active warps lets each
  warp use 4 entries at 3-entry access energy (paper: further ~6%);
* *allocating past backward branches* — bounded via the hardware
  caching variant: RFC resident across backward branches vs flushed at
  them differs by only ~5% (paper);
* *intra-block rescheduling* — idealised as an 8-entry ORF at 3-entry
  access energy (paper: 9%); a realistic variant uses 5 entries at
  3-entry energy (6%);
* *cross-strand rescheduling* — idealised by letting ORF/LRF contents
  survive descheduling (paper: 8%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..alloc.allocator import AllocationConfig
from ..energy.accounting import compute_energy
from ..energy.model import EnergyModel
from ..hierarchy.counters import AccessCounters
from ..levels import Level
from ..sim.accounting import (
    BaselineAccounting,
    SoftwareAccounting,
    account_trace,
)
from ..sim.runner import allocate_for_traces
from ..sim.schemes import BEST_SCHEME, Scheme, SchemeKind
from .suite_data import SuiteData


@dataclass
class LimitStudyResult:
    """Normalized energies (single-level baseline = 1.0)."""

    realistic: float
    ideal_all_lrf: float
    ideal_all_orf5: float
    variable_orf: float
    fewer_active_warps: float
    hw_flush_backward: float
    hw_resident_backward: float
    resched_ideal_8_as_3: float
    resched_realistic_5_as_3: float
    cross_strand_persistent: float

    def summary(self) -> Dict[str, float]:
        return {
            "realistic (SW split LRF, 3 entries)": self.realistic,
            "ideal: every access LRF": self.ideal_all_lrf,
            "ideal: every access 5-entry ORF": self.ideal_all_orf5,
            "oracle variable ORF sizing": self.variable_orf,
            "6 active warps (4 entries at 3-entry energy)": (
                self.fewer_active_warps
            ),
            "HW RFC flushed at backward branches": self.hw_flush_backward,
            "HW RFC resident past backward branches": (
                self.hw_resident_backward
            ),
            "resched ideal (8 entries at 3-entry energy)": (
                self.resched_ideal_8_as_3
            ),
            "resched realistic (5 entries at 3-entry energy)": (
                self.resched_realistic_5_as_3
            ),
            "cross-strand persistence ideal": self.cross_strand_persistent,
        }


def _transform_all_to(
    baseline: AccessCounters, level: Level, keep_shared: bool
) -> AccessCounters:
    """Baseline counters with every access redirected to one level."""
    result = AccessCounters()
    for (lvl, is_read, shared), count in baseline.items():
        shared_flag = shared if keep_shared else False
        if is_read:
            result.add_read(level, shared_flag, count)
        else:
            result.add_write(level, shared_flag, count)
    return result


def _normalized(
    counters: AccessCounters,
    baseline: AccessCounters,
    model: EnergyModel,
    baseline_model: Optional[EnergyModel] = None,
) -> float:
    if baseline_model is None:
        baseline_model = model
    return (
        compute_energy(counters, model).total_pj
        / compute_energy(baseline, baseline_model).total_pj
    )


def _sw_energy(
    data: SuiteData,
    config: AllocationConfig,
    accounting_model: EnergyModel,
) -> float:
    """Software-scheme normalized energy with decoupled capacity/energy.

    Allocates each kernel under ``config`` (the allocator's savings
    decisions use ``accounting_model``) and charges accesses with
    ``accounting_model`` — supporting the limit study's 'N entries at
    M-entry energy' idealisations.  Allocation happens on clones; the
    suite's kernels are never annotated.
    """
    engine = data.engine

    def compute() -> float:
        total = AccessCounters()
        baseline = AccessCounters()
        memo = engine.allocation_memo if engine is not None else None
        for spec, traces in data.items:
            allocation = allocate_for_traces(
                spec.kernel, config, model=accounting_model, memo=memo
            )
            for trace in traces.warp_traces:
                driver = SoftwareAccounting(total, allocation.kernel)
                account_trace(driver, trace)
                account_trace(BaselineAccounting(baseline), trace)
        return _normalized(total, baseline, accounting_model)

    if engine is None:
        return compute()
    from ..engine.hashing import dataclass_fingerprint

    return engine.memo_study(
        (
            "limit-sw-energy",
            data.content_fingerprint(),
            dataclass_fingerprint(config),
            dataclass_fingerprint(accounting_model),
        ),
        compute,
    )


def _variable_orf_energy(data: SuiteData) -> float:
    """Oracle per-strand-execution ORF sizing (Section 7).

    Every kernel is compiled at each ORF size and each dynamic strand
    execution is charged at its individually best size — the oracle
    scheduler that "examines the register usage patterns of future
    threads".  Implemented by ``repro.experiments.variable_orf``; the
    realistic (non-oracle) counterpart lives there too.
    """
    from .variable_orf import run_variable_orf_study

    return run_variable_orf_study(data).oracle


def run_limit_study(data: SuiteData) -> LimitStudyResult:
    best_model = BEST_SCHEME.energy_model()
    realistic = data.normalized_energy(BEST_SCHEME)

    _, baseline = data.aggregate(BEST_SCHEME)
    ideal_lrf = _normalized(
        _transform_all_to(baseline, Level.LRF, keep_shared=False),
        baseline,
        EnergyModel(orf_entries=3),
        baseline_model=best_model,
    )
    ideal_orf5 = _normalized(
        _transform_all_to(baseline, Level.ORF, keep_shared=True),
        baseline,
        EnergyModel(orf_entries=5),
        baseline_model=best_model,
    )

    variable = _variable_orf_energy(data)

    fewer_warps = _sw_energy(
        data,
        AllocationConfig(orf_entries=4, use_lrf=True, split_lrf=True),
        EnergyModel(orf_entries=3, split_lrf=True),
    )

    hw_flush = data.normalized_energy(
        Scheme(
            SchemeKind.HW_TWO_LEVEL, 3, flush_on_backward_branch=True
        )
    )
    hw_resident = data.normalized_energy(
        Scheme(SchemeKind.HW_TWO_LEVEL, 3)
    )

    resched_ideal = _sw_energy(
        data,
        AllocationConfig(orf_entries=8, use_lrf=True, split_lrf=True),
        EnergyModel(orf_entries=3, split_lrf=True),
    )
    resched_real = _sw_energy(
        data,
        AllocationConfig(orf_entries=5, use_lrf=True, split_lrf=True),
        EnergyModel(orf_entries=3, split_lrf=True),
    )
    cross_strand = _sw_energy(
        data,
        AllocationConfig(
            orf_entries=3,
            use_lrf=True,
            split_lrf=True,
            assume_persistent_strands=True,
        ),
        EnergyModel(orf_entries=3, split_lrf=True),
    )

    return LimitStudyResult(
        realistic=realistic,
        ideal_all_lrf=ideal_lrf,
        ideal_all_orf5=ideal_orf5,
        variable_orf=variable,
        fewer_active_warps=fewer_warps,
        hw_flush_backward=hw_flush,
        hw_resident_backward=hw_resident,
        resched_ideal_8_as_3=resched_ideal,
        resched_realistic_5_as_3=resched_real,
        cross_strand_persistent=cross_strand,
    )


def format_limit_study(result: LimitStudyResult) -> str:
    lines: List[str] = []
    lines.append("Section 7 limit study (normalized energy, baseline=1.0)")
    for name, energy in result.summary().items():
        lines.append(f"  {name:<48} {energy:6.3f} "
                     f"({100 * (1 - energy):5.1f}% savings)")
    lines.append("")
    lines.append("Paper comparisons:")
    lines.append(
        f"  ideal all-LRF savings: paper 87% -> measured "
        f"{100 * (1 - result.ideal_all_lrf):.1f}%"
    )
    lines.append(
        f"  ideal all-ORF(5) savings: paper 61% -> measured "
        f"{100 * (1 - result.ideal_all_orf5):.1f}%"
    )
    lines.append(
        "  oracle variable ORF vs realistic: paper ~6% -> measured "
        f"{100 * (result.realistic - result.variable_orf):.1f} points"
    )
    lines.append(
        "  6 active warps vs realistic: paper ~6% -> measured "
        f"{100 * (result.realistic - result.fewer_active_warps):.1f} points"
    )
    lines.append(
        "  RFC resident past backward branches vs flushed: paper ~5% -> "
        "measured "
        f"{100 * (result.hw_flush_backward - result.hw_resident_backward):.1f}"
        " points"
    )
    lines.append(
        "  resched ideal (8-as-3): paper 9% -> measured "
        f"{100 * (result.realistic - result.resched_ideal_8_as_3):.1f} points"
    )
    lines.append(
        "  resched realistic (5-as-3): paper 6% -> measured "
        f"{100 * (result.realistic - result.resched_realistic_5_as_3):.1f}"
        " points"
    )
    lines.append(
        "  cross-strand persistence: paper 8% -> measured "
        f"{100 * (result.realistic - result.cross_strand_persistent):.1f}"
        " points"
    )
    return "\n".join(lines)

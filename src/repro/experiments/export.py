"""CSV export of experiment results.

Each ``*_csv`` function renders one result dataclass as CSV text
(plot-ready: one row per series point), and :func:`export_all` runs
every experiment and writes the full artifact set to a directory —
useful for regenerating the paper's figures in any plotting tool.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, List, Sequence

from ..levels import Level
from .fig2 import Fig2Result
from .fig11 import Fig11Result
from .fig12 import Fig12Result
from .fig13 import Fig13Result
from .fig14 import Fig14Result
from .fig15 import Fig15Result
from .limit_study import LimitStudyResult
from .scheduler_study import SchedulerStudyResult
from .unroll_study import UnrollStudyResult


def _render(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def fig2_csv(result: Fig2Result) -> str:
    rows: List[List] = []
    for suite, histogram in list(result.per_suite.items()) + [
        ("all", result.overall)
    ]:
        reads = histogram.read_count_fractions()
        lifetimes = histogram.lifetime_fractions()
        for bucket, fraction in reads.items():
            rows.append([suite, "reads", bucket, f"{fraction:.6f}"])
        for bucket, fraction in lifetimes.items():
            rows.append([suite, "lifetime", bucket, f"{fraction:.6f}"])
    return _render(["suite", "metric", "bucket", "fraction"], rows)


def _breakdown_csv(series: Dict[str, List]) -> str:
    rows: List[List] = []
    for name, points in series.items():
        for point in points:
            for level in Level:
                rows.append(
                    [
                        name,
                        point.entries,
                        level.value,
                        f"{point.reads[level]:.6f}",
                        f"{point.writes[level]:.6f}",
                    ]
                )
    return _render(
        ["series", "entries", "level", "reads_frac", "writes_frac"], rows
    )


def fig11_csv(result: Fig11Result) -> str:
    return _breakdown_csv({"hw": result.hw, "sw": result.sw})


def fig12_csv(result: Fig12Result) -> str:
    return _breakdown_csv(
        {
            "hw": result.hw,
            "sw": result.sw,
            "sw_split": result.sw_split,
        }
    )


def fig13_csv(result: Fig13Result) -> str:
    rows = [
        [name, entries, f"{energy:.6f}"]
        for name, curve in result.curves.items()
        for entries, energy in sorted(curve.items())
    ]
    return _render(["series", "entries", "normalized_energy"], rows)


def fig14_csv(result: Fig14Result) -> str:
    rows: List[List] = []
    for point in result.points:
        for level in Level:
            rows.append(
                [
                    point.entries,
                    level.value,
                    f"{point.access[level]:.6f}",
                    f"{point.wire[level]:.6f}",
                ]
            )
    return _render(
        ["entries", "level", "access_frac", "wire_frac"], rows
    )


def fig15_csv(result: Fig15Result) -> str:
    rows = [
        [name, f"{energy:.6f}"]
        for name, energy in result.sorted_by_savings()
    ]
    return _render(["benchmark", "normalized_energy"], rows)


def limit_study_csv(result: LimitStudyResult) -> str:
    rows = [
        [name, f"{energy:.6f}"]
        for name, energy in result.summary().items()
    ]
    return _render(["variant", "normalized_energy"], rows)


def scheduler_csv(result: SchedulerStudyResult) -> str:
    rows = [
        [name, active, f"{ipc:.6f}"]
        for name, curves in sorted(result.ipc.items())
        for active, ipc in sorted(curves.items())
    ]
    return _render(["benchmark", "active_warps", "ipc"], rows)


def unroll_csv(result: UnrollStudyResult) -> str:
    rows = [
        [point.benchmark, point.variant, f"{point.normalized:.6f}"]
        for point in result.points
    ]
    return _render(["benchmark", "variant", "normalized_energy"], rows)


def export_all(
    data,
    directory,
    include_slow: bool = True,
) -> List[pathlib.Path]:
    """Run every experiment on ``data`` and write CSVs to ``directory``.

    Returns the written paths.  ``include_slow`` controls the limit
    study (the most expensive driver).
    """
    from . import (
        run_fig2,
        run_fig11,
        run_fig12,
        run_fig13,
        run_fig14,
        run_fig15,
        run_limit_study,
    )

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "fig2.csv": fig2_csv(run_fig2(data)),
        "fig11.csv": fig11_csv(run_fig11(data)),
        "fig12.csv": fig12_csv(run_fig12(data)),
        "fig13.csv": fig13_csv(run_fig13(data)),
        "fig14.csv": fig14_csv(run_fig14(data)),
        "fig15.csv": fig15_csv(run_fig15(data)),
    }
    if include_slow:
        artifacts["limit_study.csv"] = limit_study_csv(
            run_limit_study(data)
        )
    written: List[pathlib.Path] = []
    for name, text in artifacts.items():
        path = directory / name
        path.write_text(text)
        written.append(path)
    return written

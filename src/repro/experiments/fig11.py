"""Figure 11: reads/writes by level, two-level hierarchy, HW vs SW.

Sweeps RFC/ORF entries per thread from 1 to 8 and reports, normalized
to the single-level baseline, the fraction of reads and writes serviced
by each level.  Paper observations (Section 6.1):

* the HW RFC performs ~20% more reads than baseline (write-backs);
* the SW scheme eliminates write-back reads entirely and slightly
  reduces MRF reads at probable ORF sizes (2-5 entries);
* the SW scheme writes the ORF ~20% less than the RFC (only values
  worth caching are written).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..levels import Level
from ..sim.schemes import Scheme, SchemeKind
from .suite_data import SuiteData

ENTRY_SWEEP = tuple(range(1, 9))


@dataclass
class BreakdownPoint:
    """Read/write fractions (of baseline totals) per level, one config."""

    entries: int
    reads: Dict[Level, float]
    writes: Dict[Level, float]

    @property
    def total_reads(self) -> float:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> float:
        return sum(self.writes.values())


@dataclass
class Fig11Result:
    hw: List[BreakdownPoint] = field(default_factory=list)
    sw: List[BreakdownPoint] = field(default_factory=list)

    def point(self, scheme: str, entries: int) -> BreakdownPoint:
        series = self.hw if scheme == "hw" else self.sw
        for point in series:
            if point.entries == entries:
                return point
        raise KeyError(f"no point for {scheme} entries={entries}")


def _breakdown(data: SuiteData, scheme: Scheme) -> BreakdownPoint:
    counters, baseline = data.aggregate(scheme)
    total_reads = baseline.total_reads()
    total_writes = baseline.total_writes()
    return BreakdownPoint(
        entries=scheme.entries_per_thread,
        reads={
            level: counters.reads(level) / total_reads for level in Level
        },
        writes={
            level: counters.writes(level) / total_writes for level in Level
        },
    )


def run_fig11(
    data: SuiteData, sweep: Sequence[int] = ENTRY_SWEEP
) -> Fig11Result:
    result = Fig11Result()
    for entries in sweep:
        result.hw.append(
            _breakdown(data, Scheme(SchemeKind.HW_TWO_LEVEL, entries))
        )
        result.sw.append(
            _breakdown(data, Scheme(SchemeKind.SW_TWO_LEVEL, entries))
        )
    return result


def format_fig11(result: Fig11Result) -> str:
    lines: List[str] = []
    for kind, series in (("HW (RFC)", result.hw), ("SW (ORF)", result.sw)):
        lines.append(
            f"Figure 11 — {kind}: % of baseline reads / writes by level"
        )
        lines.append(
            f"{'entries':>8}{'rd RFC/ORF':>12}{'rd MRF':>9}{'rd tot':>9}"
            f"{'wr RFC/ORF':>12}{'wr MRF':>9}{'wr tot':>9}"
        )
        for point in series:
            lines.append(
                f"{point.entries:>8}"
                f"{100 * point.reads[Level.ORF]:>11.1f}%"
                f"{100 * point.reads[Level.MRF]:>8.1f}%"
                f"{100 * point.total_reads:>8.1f}%"
                f"{100 * point.writes[Level.ORF]:>11.1f}%"
                f"{100 * point.writes[Level.MRF]:>8.1f}%"
                f"{100 * point.total_writes:>8.1f}%"
            )
        lines.append("")
    hw3 = result.point("hw", 3)
    sw3 = result.point("sw", 3)
    extra_hw_reads = hw3.total_reads - sw3.total_reads
    lines.append(
        "paper: RFC performs ~20% more reads than SW (write-backs) -> "
        f"measured {100 * extra_hw_reads:.1f}% more at 3 entries"
    )
    if hw3.writes[Level.ORF] > 0:
        write_reduction = 1 - sw3.writes[Level.ORF] / hw3.writes[Level.ORF]
        lines.append(
            "paper: SW reduces ORF writes by ~20% vs RFC -> measured "
            f"{100 * write_reduction:.1f}%"
        )
    return "\n".join(lines)

"""Divergence robustness study.

The paper evaluates warp-level register file traffic on reconstructed
warp interleavings; branch divergence changes *which* instructions
execute but not the per-access energy (banks are driven for the whole
warp).  This study runs the branchy benchmarks twice — uniform warps
vs warps whose lanes take different paths and trip counts — and
compares the normalized energy of the best design, verifying each
divergent trace per lane along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..alloc.allocator import allocate_kernel
from ..energy.accounting import normalized_energy
from ..sim.divergence import DivergentWarpInput
from ..sim.runner import (
    build_divergent_traces,
    build_traces,
    evaluate_traces,
)
from ..sim.schemes import BEST_SCHEME
from ..sim.verify_divergent import verify_divergent_trace
from ..workloads.suites import get_workload

DEFAULT_BENCHMARKS = (
    "mergesort", "eigenvalues", "needle", "sortingnetworks", "histogram",
)


@dataclass
class DivergencePoint:
    benchmark: str
    uniform_energy: float
    divergent_energy: float
    divergent_instructions: int
    uniform_instructions: int

    @property
    def delta(self) -> float:
        return self.divergent_energy - self.uniform_energy


@dataclass
class DivergenceStudyResult:
    points: List[DivergencePoint] = field(default_factory=list)

    def max_abs_delta(self) -> float:
        return max(
            (abs(point.delta) for point in self.points), default=0.0
        )


def _divergent_inputs(spec, lanes: int = 8) -> List[DivergentWarpInput]:
    inputs = []
    for warp_index, template in enumerate(spec.warp_inputs):
        threads = []
        for lane in range(lanes):
            values = dict(template.live_in_values)
            for index, reg in enumerate(
                sorted(values, key=lambda r: r.index)
            ):
                if index >= 1:
                    values[reg] = values[reg] + lane * (5 + index)
            threads.append(values)
        inputs.append(
            DivergentWarpInput(threads, max_instructions=200_000)
        )
    return inputs


def run_divergence_study(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    lanes: int = 8,
) -> DivergenceStudyResult:
    result = DivergenceStudyResult()
    scheme = BEST_SCHEME
    model = scheme.energy_model()
    for name in benchmarks:
        spec = get_workload(name)
        allocation = allocate_kernel(
            spec.kernel, scheme.allocation_config()
        )
        uniform = build_traces(spec.kernel, spec.warp_inputs)
        divergent = build_divergent_traces(
            spec.kernel, _divergent_inputs(spec, lanes)
        )
        for trace in divergent.warp_traces:
            verify_divergent_trace(
                spec.kernel, allocation.partition, trace, lanes
            )
        uniform_eval = evaluate_traces(uniform, scheme)
        divergent_eval = evaluate_traces(divergent, scheme)
        result.points.append(
            DivergencePoint(
                benchmark=name,
                uniform_energy=normalized_energy(
                    uniform_eval.counters, uniform_eval.baseline, model
                ),
                divergent_energy=normalized_energy(
                    divergent_eval.counters,
                    divergent_eval.baseline,
                    model,
                ),
                divergent_instructions=divergent.dynamic_instructions,
                uniform_instructions=uniform.dynamic_instructions,
            )
        )
    return result


def format_divergence_study(result: DivergenceStudyResult) -> str:
    lines: List[str] = []
    lines.append(
        "Divergence robustness: normalized energy, uniform vs "
        "divergent warps (best design, per-lane verified)"
    )
    lines.append(
        f"{'benchmark':<18}{'uniform':>9}{'divergent':>11}{'delta':>8}"
        f"{'instr ratio':>13}"
    )
    for point in result.points:
        ratio = (
            point.divergent_instructions / point.uniform_instructions
            if point.uniform_instructions
            else 0.0
        )
        lines.append(
            f"{point.benchmark:<18}"
            f"{point.uniform_energy:>9.3f}"
            f"{point.divergent_energy:>11.3f}"
            f"{point.delta:>+8.3f}"
            f"{ratio:>13.2f}"
        )
    lines.append("")
    lines.append(
        "normalized energy is a per-access ratio, so divergence (which "
        "changes the executed instruction mix, not per-access costs) "
        f"moves it by at most {result.max_abs_delta():.3f}."
    )
    return "\n".join(lines)

"""Figure 12: reads/writes by level, three-level hierarchy, HW vs SW.

Same sweep as Figure 11 with the LRF added.  Paper observations
(Sections 6.2-6.3):

* despite its single entry per thread, the LRF captures ~30% of reads
  under software control;
* software management cuts overhead writes from ~40% to under 10%;
* MRF writes rise slightly under SW control (control-flow uncertainty
  forces some dual writes);
* a split LRF increases LRF reads by ~20% over a unified LRF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..levels import Level
from ..sim.schemes import Scheme, SchemeKind
from .fig11 import ENTRY_SWEEP, BreakdownPoint, _breakdown
from .suite_data import SuiteData


@dataclass
class Fig12Result:
    hw: List[BreakdownPoint] = field(default_factory=list)
    sw: List[BreakdownPoint] = field(default_factory=list)
    sw_split: List[BreakdownPoint] = field(default_factory=list)

    def point(self, series_name: str, entries: int) -> BreakdownPoint:
        series = getattr(self, series_name)
        for point in series:
            if point.entries == entries:
                return point
        raise KeyError(f"no point for {series_name} entries={entries}")


def run_fig12(
    data: SuiteData, sweep: Sequence[int] = ENTRY_SWEEP
) -> Fig12Result:
    result = Fig12Result()
    for entries in sweep:
        result.hw.append(
            _breakdown(data, Scheme(SchemeKind.HW_THREE_LEVEL, entries))
        )
        result.sw.append(
            _breakdown(data, Scheme(SchemeKind.SW_THREE_LEVEL, entries))
        )
        result.sw_split.append(
            _breakdown(
                data,
                Scheme(SchemeKind.SW_THREE_LEVEL, entries, split_lrf=True),
            )
        )
    return result


def format_fig12(result: Fig12Result) -> str:
    lines: List[str] = []
    for kind, series in (
        ("HW (LRF+RFC+MRF)", result.hw),
        ("SW (LRF+ORF+MRF, unified LRF)", result.sw),
        ("SW (LRF+ORF+MRF, split LRF)", result.sw_split),
    ):
        lines.append(
            f"Figure 12 — {kind}: % of baseline reads / writes by level"
        )
        lines.append(
            f"{'entries':>8}{'rd LRF':>9}{'rd RFC/ORF':>12}{'rd MRF':>9}"
            f"{'wr LRF':>9}{'wr RFC/ORF':>12}{'wr MRF':>9}{'wr tot':>9}"
        )
        for point in series:
            lines.append(
                f"{point.entries:>8}"
                f"{100 * point.reads[Level.LRF]:>8.1f}%"
                f"{100 * point.reads[Level.ORF]:>11.1f}%"
                f"{100 * point.reads[Level.MRF]:>8.1f}%"
                f"{100 * point.writes[Level.LRF]:>8.1f}%"
                f"{100 * point.writes[Level.ORF]:>11.1f}%"
                f"{100 * point.writes[Level.MRF]:>8.1f}%"
                f"{100 * point.total_writes:>8.1f}%"
            )
        lines.append("")
    sw3 = result.point("sw", 3)
    split3 = result.point("sw_split", 3)
    lines.append(
        "paper: LRF captures ~30% of all reads under SW control -> "
        f"measured {100 * sw3.reads[Level.LRF]:.1f}% (unified, 3 entries)"
    )
    if sw3.reads[Level.LRF] > 0:
        gain = split3.reads[Level.LRF] / sw3.reads[Level.LRF] - 1
        lines.append(
            "paper: split LRF increases LRF reads ~20% vs unified -> "
            f"measured {100 * gain:+.1f}%"
        )
    hw3 = result.point("hw", 3)
    hw_overhead = hw3.total_writes - 1.0
    sw_overhead = sw3.total_writes - 1.0
    lines.append(
        "paper: overhead writes drop from ~40% (HW) to <10% (SW) -> "
        f"measured {100 * hw_overhead:.1f}% (HW) vs "
        f"{100 * sw_overhead:.1f}% (SW) at 3 entries"
    )
    return "\n".join(lines)

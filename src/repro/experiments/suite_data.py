"""Shared evaluation data for the experiment drivers.

Building traces is the expensive step, so :class:`SuiteData` executes
every workload once and the per-figure drivers re-account the cached
traces under each scheme — the same structure as the authors' Ocelot
trace-analysis methodology (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..energy.accounting import normalized_energy
from ..energy.model import EnergyModel
from ..hierarchy.counters import AccessCounters
from ..sim.runner import TraceSet, build_traces, evaluate_traces
from ..sim.schemes import Scheme
from ..workloads.shapes import WorkloadSpec
from ..workloads.suites import all_workloads


@dataclass
class SuiteData:
    """Materialised traces for a set of workloads."""

    items: List[Tuple[WorkloadSpec, TraceSet]]

    @classmethod
    def build(
        cls,
        workloads: Optional[Sequence[WorkloadSpec]] = None,
        scale: float = 1.0,
    ) -> "SuiteData":
        if workloads is None:
            workloads = all_workloads(scale)
        return cls(
            [
                (spec, build_traces(spec.kernel, spec.warp_inputs))
                for spec in workloads
            ]
        )

    @property
    def dynamic_instructions(self) -> int:
        return sum(traces.dynamic_instructions for _, traces in self.items)

    def aggregate(
        self, scheme: Scheme
    ) -> Tuple[AccessCounters, AccessCounters]:
        """(scheme counters, baseline counters) summed over workloads."""
        counters = AccessCounters()
        baseline = AccessCounters()
        for _, traces in self.items:
            evaluation = evaluate_traces(traces, scheme)
            counters.merge(evaluation.counters)
            baseline.merge(evaluation.baseline)
        return counters, baseline

    def normalized_energy(
        self, scheme: Scheme, model: Optional[EnergyModel] = None
    ) -> float:
        counters, baseline = self.aggregate(scheme)
        if model is None:
            model = scheme.energy_model()
        return normalized_energy(counters, baseline, model)

    def per_benchmark_energy(
        self, scheme: Scheme, model: Optional[EnergyModel] = None
    ) -> Dict[str, float]:
        """Benchmark name -> normalized energy (Figure 15)."""
        if model is None:
            model = scheme.energy_model()
        result: Dict[str, float] = {}
        for spec, traces in self.items:
            evaluation = evaluate_traces(traces, scheme)
            result[spec.name] = normalized_energy(
                evaluation.counters, evaluation.baseline, model
            )
        return result

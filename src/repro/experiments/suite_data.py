"""Shared evaluation data for the experiment drivers.

Building traces is the expensive step, so :class:`SuiteData` executes
every workload once and the per-figure drivers re-account the cached
traces under each scheme — the same structure as the authors' Ocelot
trace-analysis methodology (Section 5.1).

When an :class:`~repro.engine.ExperimentEngine` is attached, every
evaluation routes through it: results are memoized content-addressed
(and on disk, when the engine has a cache directory), and
:meth:`SuiteData.prefetch` can fan upcoming (workload, scheme) jobs
across a process pool.  Drivers are oblivious — they call
:meth:`evaluate` either way and merge serially in workload order, so
output is byte-identical with or without the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..energy.accounting import normalized_energy
from ..energy.model import EnergyModel
from ..hierarchy.counters import AccessCounters
from ..sim.runner import (
    KernelEvaluation,
    TraceSet,
    build_traces,
    evaluate_traces,
)
from ..sim.schemes import Scheme
from ..workloads.shapes import WorkloadSpec
from ..workloads.suites import all_workloads

if TYPE_CHECKING:
    from ..engine import ExperimentEngine


@dataclass
class SuiteData:
    """Materialised traces for a set of workloads."""

    items: List[Tuple[WorkloadSpec, TraceSet]]
    scale: float = 1.0
    engine: Optional["ExperimentEngine"] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def build(
        cls,
        workloads: Optional[Sequence[WorkloadSpec]] = None,
        scale: float = 1.0,
        engine: Optional["ExperimentEngine"] = None,
    ) -> "SuiteData":
        if workloads is None:
            workloads = all_workloads(scale)
        make_traces = (
            engine.build_traces if engine is not None else build_traces
        )
        return cls(
            [
                (spec, make_traces(spec.kernel, spec.warp_inputs))
                for spec in workloads
            ],
            scale=scale,
            engine=engine,
        )

    @property
    def dynamic_instructions(self) -> int:
        return sum(traces.dynamic_instructions for _, traces in self.items)

    @property
    def unique_traces(self) -> int:
        """Distinct warp traces across the suite after deduplication."""
        return sum(traces.unique_trace_count for _, traces in self.items)

    @property
    def static_instructions(self) -> int:
        return sum(
            traces.kernel.num_instructions for _, traces in self.items
        )

    def content_fingerprint(self) -> str:
        """Fingerprint over every workload's traces (study memo keys)."""
        from ..engine.hashing import suite_fingerprint

        return suite_fingerprint(self.items)

    def evaluate(
        self, traces: TraceSet, scheme: Scheme
    ) -> KernelEvaluation:
        """One (trace set, scheme) evaluation — the engine chokepoint."""
        if self.engine is not None:
            return self.engine.evaluate(traces, scheme)
        return evaluate_traces(traces, scheme)

    def prefetch(self, schemes: Sequence[Scheme]) -> None:
        """Warm the engine's record memo for the given schemes."""
        if self.engine is not None:
            self.engine.prefetch(self.items, schemes, scale=self.scale)

    def aggregate(
        self, scheme: Scheme
    ) -> Tuple[AccessCounters, AccessCounters]:
        """(scheme counters, baseline counters) summed over workloads."""
        counters = AccessCounters()
        baseline = AccessCounters()
        for _, traces in self.items:
            evaluation = self.evaluate(traces, scheme)
            counters.merge(evaluation.counters)
            baseline.merge(evaluation.baseline)
        return counters, baseline

    def normalized_energy(
        self, scheme: Scheme, model: Optional[EnergyModel] = None
    ) -> float:
        counters, baseline = self.aggregate(scheme)
        if model is None:
            model = scheme.energy_model()
        return normalized_energy(counters, baseline, model)

    def per_benchmark_energy(
        self, scheme: Scheme, model: Optional[EnergyModel] = None
    ) -> Dict[str, float]:
        """Benchmark name -> normalized energy (Figure 15)."""
        if model is None:
            model = scheme.energy_model()
        result: Dict[str, float] = {}
        for spec, traces in self.items:
            evaluation = self.evaluate(traces, scheme)
            result[spec.name] = normalized_energy(
                evaluation.counters, evaluation.baseline, model
            )
        return result

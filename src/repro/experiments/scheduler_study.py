"""Two-level warp scheduler performance study (Sections 2.2 and 6).

The paper reports that a two-level scheduler with 8 active warps (of 32
resident) suffers no performance penalty: the active set hides short
latencies and descheduling hides long ones.  This study sweeps the
active-set size and reports IPC normalized to the all-warps-active
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..ir.registers import Register
from ..sim.executor import WarpInput, WarpExecutor
from ..sim.params import DEFAULT_PARAMS, SimParams
from ..sim.scheduler import simulate_schedule
from ..workloads.shapes import R_N, WorkloadSpec

DEFAULT_ACTIVE_SWEEP = (1, 2, 4, 6, 8, 12, 16, 24, 32)


def expanded_warp_inputs(
    spec: WorkloadSpec, num_warps: int
) -> List[WarpInput]:
    """Replicate a workload's warp inputs up to ``num_warps`` warps,
    jittering trip counts so warps do not run in lockstep."""
    inputs: List[WarpInput] = []
    base = spec.warp_inputs
    for warp in range(num_warps):
        template = base[warp % len(base)]
        values: Dict[Register, object] = dict(template.live_in_values)
        if R_N in values:
            values[R_N] = max(2, int(values[R_N]) + warp % 5)
        inputs.append(
            WarpInput(
                live_in_values=values,
                max_instructions=template.max_instructions,
            )
        )
    return inputs


@dataclass
class SchedulerStudyResult:
    #: benchmark -> {active warps -> IPC}.
    ipc: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def mean_relative_ipc(self) -> Dict[int, float]:
        """Active-set size -> geometric-mean IPC relative to all-active."""
        import math

        sweep = sorted(next(iter(self.ipc.values())))
        full = max(sweep)
        result: Dict[int, float] = {}
        for active in sweep:
            log_sum = 0.0
            for curves in self.ipc.values():
                log_sum += math.log(
                    max(1e-12, curves[active] / curves[full])
                )
            result[active] = math.exp(log_sum / len(self.ipc))
        return result


def run_scheduler_study(
    workloads: Sequence[WorkloadSpec],
    active_sweep: Sequence[int] = DEFAULT_ACTIVE_SWEEP,
    num_warps: int = 32,
    params: SimParams = DEFAULT_PARAMS,
) -> SchedulerStudyResult:
    result = SchedulerStudyResult()
    for spec in workloads:
        inputs = expanded_warp_inputs(spec, num_warps)
        traces = [
            list(WarpExecutor(spec.kernel, warp_input).run())
            for warp_input in inputs
        ]
        curves: Dict[int, float] = {}
        for active in active_sweep:
            outcome = simulate_schedule(traces, active, params)
            curves[active] = outcome.ipc
        result.ipc[spec.name] = curves
    return result


def format_scheduler_study(result: SchedulerStudyResult) -> str:
    lines: List[str] = []
    lines.append(
        "Two-level scheduler study: IPC vs active warps "
        "(32 resident warps)"
    )
    sweep = sorted(next(iter(result.ipc.values())))
    lines.append(
        f"{'benchmark':<22}" + "".join(f"{a:>8}" for a in sweep)
    )
    for name, curves in sorted(result.ipc.items()):
        lines.append(
            f"{name:<22}"
            + "".join(f"{curves[a]:>8.3f}" for a in sweep)
        )
    relative = result.mean_relative_ipc()
    lines.append(
        f"{'geomean (rel. 32)':<22}"
        + "".join(f"{relative[a]:>8.3f}" for a in sweep)
    )
    lines.append("")
    at8 = relative.get(8)
    if at8 is not None:
        lines.append(
            "paper: no performance penalty with 8 active warps -> "
            f"measured {100 * at8:.1f}% of all-active IPC"
        )
    return "\n".join(lines)

"""Performance-neutrality study: the hierarchy does not harm IPC.

The paper's headline is energy saved "without harming system
performance": the baseline pipeline already tolerates multi-cycle MRF
operand fetch, and ORF/LRF operands only shorten the operand path.
This study runs the operand-timing scheduler twice per workload —
single-level annotations (every operand from the MRF, with bank-group
conflicts) and the best software allocation — and compares IPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..sim.executor import WarpExecutor
from ..sim.operand_timing import (
    OperandTimingParams,
    OperandTimingResult,
    simulate_with_operand_timing,
)
from ..sim.params import DEFAULT_PARAMS, SimParams
from ..sim.runner import allocate_for_traces
from ..sim.schemes import BEST_SCHEME
from ..workloads.shapes import WorkloadSpec
from .scheduler_study import expanded_warp_inputs

DEFAULT_BENCHMARKS = (
    "matrixmul", "hotspot", "reduction", "montecarlo", "vectoradd",
)


@dataclass
class TimingPoint:
    benchmark: str
    baseline: OperandTimingResult
    hierarchy: OperandTimingResult

    @property
    def ipc_ratio(self) -> float:
        return (
            self.hierarchy.ipc / self.baseline.ipc
            if self.baseline.ipc
            else 0.0
        )


@dataclass
class TimingStudyResult:
    points: List[TimingPoint] = field(default_factory=list)

    def geomean_ratio(self) -> float:
        import math

        if not self.points:
            return 1.0
        return math.exp(
            sum(math.log(max(1e-12, p.ipc_ratio)) for p in self.points)
            / len(self.points)
        )


def run_timing_study(
    specs: Sequence[WorkloadSpec],
    num_warps: int = 32,
    active_warps: int = 8,
    params: SimParams = DEFAULT_PARAMS,
    operand_params: OperandTimingParams = OperandTimingParams(),
) -> TimingStudyResult:
    result = TimingStudyResult()
    for spec in specs:
        inputs = expanded_warp_inputs(spec, num_warps)
        traces = [
            list(WarpExecutor(spec.kernel, warp_input).run())
            for warp_input in inputs
        ]

        # Single-level baseline: all operands annotated MRF.  Both
        # annotation sets live on clones, so the traced kernel is
        # never touched and the same traces serve both runs.
        mrf_kernel = spec.kernel.clone()
        for _, instruction in mrf_kernel.instructions():
            instruction.ensure_default_annotations()
        baseline = simulate_with_operand_timing(
            traces, active_warps, params, operand_params,
            annotation_kernel=mrf_kernel,
        )

        # Best software hierarchy.
        allocation = allocate_for_traces(
            spec.kernel, BEST_SCHEME.allocation_config()
        )
        hierarchy = simulate_with_operand_timing(
            traces, active_warps, params, operand_params,
            annotation_kernel=allocation.kernel,
        )
        result.points.append(
            TimingPoint(spec.name, baseline, hierarchy)
        )
    return result


def format_timing_study(result: TimingStudyResult) -> str:
    lines: List[str] = []
    lines.append(
        "Performance neutrality with operand-delivery timing "
        "(8 active warps)"
    )
    lines.append(
        f"{'benchmark':<14}{'base IPC':>10}{'hier IPC':>10}{'ratio':>8}"
        f"{'base conflicts':>16}{'hier conflicts':>16}"
    )
    for point in result.points:
        lines.append(
            f"{point.benchmark:<14}"
            f"{point.baseline.ipc:>10.3f}"
            f"{point.hierarchy.ipc:>10.3f}"
            f"{point.ipc_ratio:>8.3f}"
            f"{point.baseline.bank_conflicts:>16d}"
            f"{point.hierarchy.bank_conflicts:>16d}"
        )
    lines.append(
        f"{'geomean ratio':<14}{'':>10}{'':>10}"
        f"{result.geomean_ratio():>8.3f}"
    )
    lines.append("")
    lines.append(
        "paper: the compile-time hierarchy saves energy 'without "
        "harming system performance' — ratio >= 1.0 expected (ORF/LRF "
        "operands skip the MRF operand collector)."
    )
    return "\n".join(lines)

"""Unroll-and-hoist ablation (the Section 6.4 prescription).

The paper explains why Reduction and ScalarProd save the least energy
(tight global-load loops, frequent descheduling) and prescribes the
fix: "unroll the inner loop and issue all of the long latency
instructions at the beginning of the loop".  This study applies the
prescription with the real compiler transforms
(``repro.compiler.unroll_loop_fused`` + ``HOIST_LONG_LATENCY``
scheduling) and measures how far the worst benchmarks move toward the
suite average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..alloc.allocator import allocate_kernel
from ..compiler.schedule import ScheduleStrategy, schedule_kernel
from ..compiler.unroll import unroll_loop_fused
from ..energy.accounting import normalized_energy
from ..sim.executor import WarpInput
from ..sim.runner import build_traces, evaluate_traces
from ..sim.schemes import BEST_SCHEME
from ..sim.verify import verify_trace
from ..workloads.shapes import R_C0, R_C1, R_IN, R_N, R_OUT
from ..workloads.suites import get_workload

#: The paper's two worst benchmarks plus a moderate one for contrast.
DEFAULT_BENCHMARKS = ("reduction", "scalarprod", "vectoradd")


@dataclass
class UnrollPoint:
    benchmark: str
    variant: str
    normalized: float

    @property
    def savings(self) -> float:
        return 1.0 - self.normalized


@dataclass
class UnrollStudyResult:
    points: List[UnrollPoint] = field(default_factory=list)

    def by_benchmark(self) -> Dict[str, Dict[str, float]]:
        result: Dict[str, Dict[str, float]] = {}
        for point in self.points:
            result.setdefault(point.benchmark, {})[point.variant] = (
                point.normalized
            )
        return result


def _divisible_inputs(factor: int, num_warps: int = 3) -> List[WarpInput]:
    """Warp inputs with trip counts divisible by the unroll factor
    (the fused-unroll contract)."""
    return [
        WarpInput(
            live_in_values={
                R_IN: warp * 4096,
                R_OUT: 1_000_000 + warp * 4096,
                R_N: factor * (4 + 2 * warp),
                R_C0: 3 + warp,
                R_C1: 7,
            }
        )
        for warp in range(num_warps)
    ]


def run_unroll_study(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    factor: int = 4,
) -> UnrollStudyResult:
    result = UnrollStudyResult()
    scheme = BEST_SCHEME
    model = scheme.energy_model()
    for name in benchmarks:
        spec = get_workload(name)
        variants = {
            "original": spec.kernel,
            f"unroll{factor}": unroll_loop_fused(
                spec.kernel, "loop", factor
            ),
        }
        variants[f"unroll{factor}+hoist"] = schedule_kernel(
            variants[f"unroll{factor}"],
            ScheduleStrategy.HOIST_LONG_LATENCY,
        )
        inputs = _divisible_inputs(factor)
        for variant, kernel in variants.items():
            allocation = allocate_kernel(
                kernel, scheme.allocation_config()
            )
            traces = build_traces(kernel, inputs)
            for trace in traces.warp_traces:
                verify_trace(kernel, allocation.partition, trace)
            evaluation = evaluate_traces(traces, scheme)
            result.points.append(
                UnrollPoint(
                    benchmark=name,
                    variant=variant,
                    normalized=normalized_energy(
                        evaluation.counters, evaluation.baseline, model
                    ),
                )
            )
    return result


def format_unroll_study(result: UnrollStudyResult) -> str:
    lines: List[str] = []
    lines.append(
        "Unroll-and-hoist ablation (Section 6.4 prescription for the "
        "worst benchmarks)"
    )
    table = result.by_benchmark()
    variants = list(next(iter(table.values())))
    lines.append(
        f"{'benchmark':<14}"
        + "".join(f"{variant:>18}" for variant in variants)
    )
    for benchmark, row in table.items():
        lines.append(
            f"{benchmark:<14}"
            + "".join(
                f"{100 * (1 - row[variant]):>17.1f}%"
                for variant in variants
            )
        )
    lines.append("")
    lines.append(
        "paper: unrolling + issuing all long-latency loads at the top "
        "of the loop lets the body stay resident and use the LRF/ORF."
    )
    return "\n".join(lines)

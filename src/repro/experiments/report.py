"""One-shot reproduction report.

``build_report`` runs every experiment on a workload set and composes a
single markdown document: the headline paper-vs-measured table followed
by each figure's text rendering.  ``repro report REPORT.md`` writes it
to disk — the artifact a reviewer would read first.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence

from ..sim.schemes import Scheme, SchemeKind
from .encoding_study import format_encoding_study, run_encoding_study
from .fig2 import format_fig2, run_fig2
from .fig11 import format_fig11, run_fig11
from .fig12 import format_fig12, run_fig12
from .fig13 import format_fig13, run_fig13
from .fig14 import format_fig14, run_fig14
from .fig15 import format_fig15, run_fig15
from .limit_study import format_limit_study, run_limit_study
from .sensitivity import format_sensitivity, run_sensitivity_study
from .suite_data import SuiteData
from .variable_orf import format_variable_orf, run_variable_orf_study

#: (section title, run, format) in report order.
_SECTIONS = (
    ("Figure 2 — register value usage", run_fig2, format_fig2),
    ("Figure 11 — two-level breakdown", run_fig11, format_fig11),
    ("Figure 12 — three-level breakdown", run_fig12, format_fig12),
    ("Figure 13 — normalized energy", run_fig13, format_fig13),
    ("Figure 14 — energy breakdown", run_fig14, format_fig14),
    ("Figure 15 — per benchmark", run_fig15, format_fig15),
    ("Section 6.5 — encoding overhead", run_encoding_study,
     format_encoding_study),
    ("Section 7 — limit study", run_limit_study, format_limit_study),
    ("Section 7 — variable ORF", run_variable_orf_study,
     format_variable_orf),
    ("Sensitivity — model robustness", run_sensitivity_study,
     format_sensitivity),
)


def _headline(data: SuiteData) -> str:
    rows = [
        ("HW RFC (3 entries)", Scheme(SchemeKind.HW_TWO_LEVEL, 3), 0.34),
        ("HW LRF+RFC (6 entries)",
         Scheme(SchemeKind.HW_THREE_LEVEL, 6), 0.41),
        ("SW ORF (3 entries)", Scheme(SchemeKind.SW_TWO_LEVEL, 3), 0.45),
        ("SW split LRF (3 entries)",
         Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True), 0.54),
    ]
    lines = [
        "| organisation | paper savings | measured savings |",
        "|---|---|---|",
    ]
    for label, scheme, paper in rows:
        measured = 1.0 - data.normalized_energy(scheme)
        lines.append(
            f"| {label} | {100 * paper:.0f}% | {100 * measured:.1f}% |"
        )
    return "\n".join(lines)


def build_report(
    data: Optional[SuiteData] = None,
    sections: Sequence = _SECTIONS,
) -> str:
    """Compose the full reproduction report as markdown text."""
    if data is None:
        data = SuiteData.build()
    parts: List[str] = []
    parts.append("# Reproduction report")
    parts.append(
        "\nGebhart, Keckler, Dally — *A Compile-Time Managed "
        "Multi-Level Register File Hierarchy* (MICRO 2011).\n"
        f"\nWorkloads: {len(data.items)} synthetic benchmarks, "
        f"{data.dynamic_instructions} dynamic warp instructions.\n"
    )
    parts.append("## Headline\n")
    parts.append(_headline(data))
    for title, run, fmt in sections:
        parts.append(f"\n## {title}\n")
        parts.append("```")
        parts.append(fmt(run(data)))
        parts.append("```")
    return "\n".join(parts) + "\n"


def write_report(
    path, data: Optional[SuiteData] = None
) -> pathlib.Path:
    """Build the report and write it to ``path``."""
    target = pathlib.Path(path)
    target.write_text(build_report(data))
    return target

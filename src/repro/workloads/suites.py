"""The benchmark suites of Table 1, synthesised from kernel shapes.

Each benchmark name from the paper's Table 1 maps to a shape with
parameters chosen to reflect that application's structure (see
``repro.workloads.shapes`` for the shape taxonomy and the rationale).
The ``scale`` parameter multiplies loop trip counts to lengthen traces
for benchmarking; the structure (and therefore the per-access
statistics) is scale-invariant.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from ..ir.instructions import Opcode
from . import shapes
from .shapes import WorkloadSpec

SUITE_CUDA_SDK = "cuda_sdk"
SUITE_PARBOIL = "parboil"
SUITE_RODINIA = "rodinia"
SUITE_NAMES = (SUITE_CUDA_SDK, SUITE_PARBOIL, SUITE_RODINIA)


def _scaled(trips: Sequence[int], scale: float) -> Tuple[int, ...]:
    return tuple(max(2, int(math.ceil(t * scale))) for t in trips)


def _make_registry() -> Dict[str, Tuple[str, Callable[..., WorkloadSpec], dict]]:
    """name -> (suite, shape factory, shape kwargs)."""
    sdk = SUITE_CUDA_SDK
    parboil = SUITE_PARBOIL
    rodinia = SUITE_RODINIA
    return {
        # -- CUDA SDK 3.2 ---------------------------------------------------
        "bicubictexture": (sdk, shapes.texture_sampler,
                           dict(fetches=4, filter_ops=6)),
        "binomialoptions": (sdk, shapes.fma_chain,
                            dict(loads_per_iter=2, chain_length=8)),
        "boxfilter": (sdk, shapes.stencil_shared, dict(taps=5)),
        "convolutionseparable": (sdk, shapes.stencil_shared, dict(taps=7)),
        "convolutiontexture": (sdk, shapes.texture_sampler,
                               dict(fetches=3, filter_ops=5)),
        "dct8x8": (sdk, shapes.fma_chain,
                   dict(loads_per_iter=4, chain_length=10)),
        "dwthaar1d": (sdk, shapes.streaming_map,
                      dict(unroll=2, ops_per_element=2)),
        "dxtc": (sdk, shapes.histogram_scatter, dict(bit_ops=6)),
        "eigenvalues": (sdk, shapes.branchy_hammock, dict(work_ops=3)),
        "fastwalshtransform": (sdk, shapes.streaming_map,
                               dict(unroll=4, ops_per_element=2)),
        "histogram": (sdk, shapes.histogram_scatter, dict(bit_ops=4)),
        "imagedenoising": (sdk, shapes.stencil_shared, dict(taps=9)),
        "mandelbrot": (sdk, shapes.nested_loop,
                       dict(inner_trip=6, inner_ops=4)),
        "matrixmul": (sdk, shapes.fma_chain,
                      dict(loads_per_iter=2, chain_length=6)),
        "mergesort": (sdk, shapes.branchy_hammock, dict(work_ops=2)),
        "montecarlo": (sdk, shapes.transcendental,
                       dict(sfu_ops=(Opcode.SIN, Opcode.COS, Opcode.EX2),
                            alu_ops_between=2)),
        "nbody": (sdk, shapes.transcendental,
                  dict(sfu_ops=(Opcode.RSQRT,), alu_ops_between=5)),
        "recursivegaussian": (sdk, shapes.stencil_shared, dict(taps=4)),
        "reduction": (sdk, shapes.reduction_tight,
                      dict(loads=1)),
        "scalarprod": (sdk, shapes.reduction_tight,
                       dict(loads=2)),
        "sobelfilter": (sdk, shapes.streaming_map,
                        dict(unroll=3, ops_per_element=4)),
        "sobolqrng": (sdk, shapes.histogram_scatter, dict(bit_ops=5)),
        "sortingnetworks": (sdk, shapes.branchy_hammock, dict(work_ops=1)),
        "vectoradd": (sdk, shapes.streaming_map,
                      dict(unroll=1, ops_per_element=1)),
        "volumerender": (sdk, shapes.texture_sampler,
                         dict(fetches=2, filter_ops=8)),
        # -- Parboil (longest running of the suites) --------------------------
        "cp": (parboil, shapes.fma_chain,
               dict(loads_per_iter=1, chain_length=12,
                    trips=(10, 14, 18))),
        "mri-fhd": (parboil, shapes.transcendental,
                    dict(sfu_ops=(Opcode.SIN, Opcode.COS),
                         alu_ops_between=4, trips=(10, 12, 14))),
        "mri-q": (parboil, shapes.transcendental,
                  dict(sfu_ops=(Opcode.SIN, Opcode.COS),
                       alu_ops_between=3, trips=(10, 12, 14))),
        "rpes": (parboil, shapes.fma_chain,
                 dict(loads_per_iter=3, chain_length=7,
                      trips=(8, 12, 16))),
        "sad": (parboil, shapes.streaming_map,
                dict(unroll=4, ops_per_element=3, trips=(8, 12, 16))),
        # -- Rodinia -----------------------------------------------------------
        "backprop": (rodinia, shapes.nested_loop,
                     dict(inner_trip=5, inner_ops=3)),
        "hotspot": (rodinia, shapes.stencil_shared, dict(taps=5)),
        "hwt": (rodinia, shapes.streaming_map,
                dict(unroll=2, ops_per_element=3)),
        "lu": (rodinia, shapes.nested_loop,
               dict(inner_trip=4, inner_ops=2)),
        "needle": (rodinia, shapes.branchy_hammock, dict(work_ops=2)),
        "srad": (rodinia, shapes.transcendental,
                 dict(sfu_ops=(Opcode.RCP, Opcode.EX2),
                      alu_ops_between=3)),
    }


_REGISTRY = _make_registry()

BENCHMARK_NAMES = tuple(sorted(_REGISTRY))


def get_workload(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Build one named benchmark (see ``BENCHMARK_NAMES``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
        )
    suite, factory, kwargs = _REGISTRY[key]
    kwargs = dict(kwargs)
    trips = kwargs.pop("trips", None)
    if trips is None:
        trips = (6, 9, 12)
    kwargs["trips"] = _scaled(trips, scale)
    return factory(key, suite, **kwargs)


def build_suite(suite: str, scale: float = 1.0) -> List[WorkloadSpec]:
    """All benchmarks of one suite (Table 1)."""
    if suite not in SUITE_NAMES:
        raise KeyError(f"unknown suite {suite!r}; known: {SUITE_NAMES}")
    return [
        get_workload(name, scale)
        for name in BENCHMARK_NAMES
        if _REGISTRY[name][0] == suite
    ]


def all_workloads(scale: float = 1.0) -> List[WorkloadSpec]:
    """Every benchmark of every suite."""
    return [get_workload(name, scale) for name in BENCHMARK_NAMES]


def suite_of(name: str) -> str:
    return _REGISTRY[name.lower()][0]

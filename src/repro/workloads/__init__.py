"""Synthetic benchmark workloads standing in for Table 1's suites."""

from .generators import GeneratorConfig, generate_kernel, generate_workload
from .shapes import WorkloadSpec
from .suites import (
    BENCHMARK_NAMES,
    SUITE_CUDA_SDK,
    SUITE_NAMES,
    SUITE_PARBOIL,
    SUITE_RODINIA,
    all_workloads,
    build_suite,
    get_workload,
    suite_of,
)

__all__ = [
    "BENCHMARK_NAMES",
    "GeneratorConfig",
    "SUITE_CUDA_SDK",
    "SUITE_NAMES",
    "SUITE_PARBOIL",
    "SUITE_RODINIA",
    "WorkloadSpec",
    "all_workloads",
    "build_suite",
    "generate_kernel",
    "generate_workload",
    "get_workload",
    "suite_of",
]

"""Parameterised kernel shapes used to synthesise the benchmark suites.

The paper evaluates on CUDA SDK 3.2, Rodinia, and Parboil (Table 1).
Those binaries are not redistributable here, so each benchmark is
synthesised from a *shape* — a structural template capturing how that
class of kernel uses registers:

* ``streaming_map`` — load/transform/store element streams (VectorAdd,
  SobelFilter, ...): mostly single-use temporaries, strand per load
  batch.
* ``reduction_tight`` — a tight loop of one global load, one FMA into
  an accumulator, and independent address/counter adds.  The paper
  singles out Reduction and ScalarProd as the *worst* cases for the
  hierarchy (Section 6.4): few register-passed values, frequent
  descheduling on the loads.
* ``fma_chain`` — blocked inner products (MatrixMul, Nbody, ...): long
  chains of single-use FMA temporaries after a batch of loads.
* ``stencil_shared`` — shared-memory stencils (Hotspot, Convolution,
  ...): LDS has short latency, so strands span whole loop bodies and
  the ORF/LRF capture nearly all traffic.
* ``transcendental`` — SFU-heavy math (MonteCarlo, Mandelbrot, ...):
  a fraction of values is consumed by the shared datapath, which the
  LRF cannot serve (Section 3.2).
* ``texture_sampler`` — texture fetches (long latency) plus filtering
  arithmetic (BicubicTexture, ...).
* ``histogram_scatter`` — bit manipulation and shared-memory scatter
  (Histogram, DwtHaar1D, ...).
* ``branchy_hammock`` — data-dependent hammocks writing the same
  register on both sides (MergeSort, EigenValues, Needle, ...):
  exercises forward-branch allocation (Section 4.5, Figure 10c).
* ``nested_loop`` — an inner loop nested in an outer loop (SRAD,
  BackProp, LU): backward-branch strand endpoints dominate.

The arithmetic texture inside every shape comes from
:class:`repro.workloads.mixer.ArithMixer`, which reproduces the paper's
Figure 2 register-usage statistics (mostly read-once short-lived
values, butterfly pairs, a tail of long-lived and dead values).

Register convention: R0-R4 live-ins, R5-R7 accumulators/pointers,
R8-R21 mixer temporaries, R22+ loads and addresses.

Every shape returns a :class:`WorkloadSpec` with per-warp inputs whose
trip counts differ, so warps interleave differently in the timing
model.  All shapes are deterministic (seeded by the benchmark name).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence

from ..ir.builder import KernelBuilder
from ..ir.instructions import Opcode
from ..ir.kernel import Kernel
from ..ir.registers import Register, gpr, pred
from ..sim.executor import WarpInput
from .mixer import ArithMixer

#: Conventional live-in registers used by every shape.
R_IN = gpr(0)      # input base address
R_OUT = gpr(1)     # output base address
R_N = gpr(2)       # element / iteration count
R_C0 = gpr(3)      # coefficient (loop invariant, read many times)
R_C1 = gpr(4)      # coefficient
LIVE_INS = (R_IN, R_OUT, R_N, R_C0, R_C1)

_ACC = gpr(5)
_PTR = gpr(6)
_PTR2 = gpr(7)
_LOAD_BASE = 22
_ADDR = gpr(28)
_ADDR2 = gpr(29)


@dataclass
class WorkloadSpec:
    """One synthetic benchmark: a kernel plus its simulated warps."""

    name: str
    suite: str
    kernel: Kernel
    warp_inputs: List[WarpInput]
    description: str = ""


def _seed_of(name: str) -> int:
    return zlib.crc32(name.encode())


def _warp_inputs(
    num_warps: int, trips: Sequence[int], stride: int = 4096
) -> List[WarpInput]:
    """Standard warp inputs: disjoint address ranges, varied trips."""
    inputs: List[WarpInput] = []
    for warp in range(num_warps):
        trip = trips[warp % len(trips)]
        inputs.append(
            WarpInput(
                live_in_values={
                    R_IN: warp * stride,
                    R_OUT: 1_000_000 + warp * stride,
                    R_N: trip,
                    R_C0: 3 + warp,
                    R_C1: 7,
                }
            )
        )
    return inputs


def _loop_epilogue(
    b: KernelBuilder,
    counter: Register,
    loop_label: str,
    advance: Sequence[Register] = (),
    step: int = 4,
) -> None:
    """Advance pointers, decrement the counter, and branch back."""
    for reg in advance:
        b.op(Opcode.IADD, reg, reg, step)
    b.op(Opcode.IADD, counter, counter, -1)
    b.op(Opcode.SETP, pred(0), 0, counter)
    b.bra(loop_label, guard=pred(0))


def _loads(
    b: KernelBuilder,
    count: int,
    base: Register,
    opcode: Opcode = Opcode.LDG,
    spacing: int = 4,
) -> List[Register]:
    """Load ``count`` elements at base + i*spacing into R22+."""
    loads: List[Register] = []
    for index in range(count):
        target = gpr(_LOAD_BASE + index)
        if index == 0:
            b.op(opcode, target, base)
        else:
            b.op(Opcode.IADD, _ADDR, base, spacing * index)
            b.op(opcode, target, _ADDR)
        loads.append(target)
    return loads


# ---------------------------------------------------------------------------
# shapes
# ---------------------------------------------------------------------------


def streaming_map(
    name: str,
    suite: str,
    unroll: int = 2,
    ops_per_element: int = 6,
    num_warps: int = 3,
    trips: Sequence[int] = (6, 9, 12),
) -> WorkloadSpec:
    """Load a batch of elements, transform each, store the results."""
    b = KernelBuilder(name, live_in=LIVE_INS)
    b.block("entry")
    b.op(Opcode.MOV, _PTR, R_IN)
    b.op(Opcode.MOV, _PTR2, R_OUT)
    b.block("loop")
    mixer = ArithMixer(b, _seed_of(name))
    loads = _loads(b, unroll, _PTR)
    for index, load in enumerate(loads):
        result = mixer.emit(
            [load] + loads[:1], ops_per_element, coefficients=(R_C0, R_C1)
        )
        b.op(Opcode.IADD, _ADDR2, _PTR2, 4 * index)
        b.op(Opcode.STG, None, _ADDR2, result)
        mixer.release_result(result)
    _loop_epilogue(
        b, R_N, "loop", advance=(_PTR, _PTR2), step=4 * unroll
    )
    b.block("done")
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description=f"streaming map, unroll={unroll}",
    )


def reduction_tight(
    name: str,
    suite: str,
    num_warps: int = 3,
    trips: Sequence[int] = (16, 24, 32),
    loads: int = 1,
) -> WorkloadSpec:
    """The paper's worst case: load, one FMA, pointer/counter adds.

    ``loads=2`` gives the ScalarProd variant (dot product of two
    streams); ``loads=1`` the Reduction variant.
    """
    b = KernelBuilder(name, live_in=LIVE_INS)
    b.block("entry")
    b.op(Opcode.MOV, _ACC, 0)
    b.block("loop")
    value = gpr(_LOAD_BASE)
    b.op(Opcode.LDG, value, R_IN)
    if loads >= 2:
        b.op(Opcode.IADD, _ADDR, R_IN, 2048)
        second = gpr(_LOAD_BASE + 1)
        b.op(Opcode.LDG, second, _ADDR)
        b.op(Opcode.FFMA, _ACC, value, second, _ACC)
    else:
        b.op(Opcode.FFMA, _ACC, value, R_C0, _ACC)
    _loop_epilogue(b, R_N, "loop", advance=(R_IN,), step=4)
    b.block("done")
    b.op(Opcode.STG, None, R_OUT, _ACC)
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description="tight reduction loop (paper's worst case)",
    )


def fma_chain(
    name: str,
    suite: str,
    loads_per_iter: int = 2,
    chain_length: int = 10,
    accumulators: int = 3,
    num_warps: int = 3,
    trips: Sequence[int] = (5, 8, 10),
) -> WorkloadSpec:
    """Blocked inner product: a batch of loads feeds a compute block.

    Real blocked kernels (MatrixMul, Nbody, BinomialOptions) keep
    several accumulators live across iterations; this loop-carried
    state is flushed and refetched around every deschedule under
    hardware caching, a key overhead the software scheme avoids
    (Section 6.1).
    """
    b = KernelBuilder(name, live_in=LIVE_INS)
    accs = [gpr(30 + index) for index in range(accumulators)]
    b.block("entry")
    for index, acc in enumerate(accs):
        b.op(Opcode.MOV, acc, index)
    b.block("loop")
    mixer = ArithMixer(b, _seed_of(name))
    loads = _loads(b, loads_per_iter, R_IN)
    result = mixer.emit(loads, chain_length, coefficients=(R_C0, R_C1))
    for index, acc in enumerate(accs):
        source = loads[index % len(loads)]
        b.op(Opcode.FFMA, acc, result if index == 0 else source,
             R_C0, acc)
    mixer.release_result(result)
    _loop_epilogue(b, R_N, "loop", advance=(R_IN,), step=4 * loads_per_iter)
    b.block("done")
    total = accs[0]
    for acc in accs[1:]:
        b.op(Opcode.FADD, total, total, acc)
    b.op(Opcode.STG, None, R_OUT, total)
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description=f"FMA block, {loads_per_iter} loads/iter",
    )


def stencil_shared(
    name: str,
    suite: str,
    taps: int = 3,
    ops_per_tap: int = 3,
    num_warps: int = 3,
    trips: Sequence[int] = (8, 10, 12),
) -> WorkloadSpec:
    """Shared-memory stencil: short-latency LDS keeps strands long."""
    b = KernelBuilder(name, live_in=LIVE_INS)
    b.block("entry")
    b.op(Opcode.MOV, _PTR, R_IN)
    b.block("loop")
    mixer = ArithMixer(b, _seed_of(name))
    taps_regs = _loads(b, taps, _PTR, opcode=Opcode.LDS)
    result = mixer.emit(
        taps_regs, taps * ops_per_tap, coefficients=(R_C0, R_C1)
    )
    b.op(Opcode.IADD, _ADDR2, _PTR, 2048)
    b.op(Opcode.STS, None, _ADDR2, result)
    mixer.release_result(result)
    _loop_epilogue(b, R_N, "loop", advance=(_PTR,), step=4)
    b.block("done")
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description=f"{taps}-tap shared-memory stencil",
    )


def transcendental(
    name: str,
    suite: str,
    sfu_ops: Sequence[Opcode] = (Opcode.SIN, Opcode.EX2),
    alu_ops_between: int = 5,
    num_warps: int = 3,
    trips: Sequence[int] = (6, 8, 10),
) -> WorkloadSpec:
    """SFU-heavy math: shared-datapath consumers limit LRF coverage."""
    b = KernelBuilder(name, live_in=LIVE_INS)
    b.block("entry")
    b.op(Opcode.MOV, _ACC, 0)
    b.block("loop")
    mixer = ArithMixer(b, _seed_of(name))
    value = gpr(_LOAD_BASE)
    b.op(Opcode.LDG, value, R_IN)
    work = mixer.emit([value], alu_ops_between, coefficients=(R_C0, R_C1))
    for index, sfu_op in enumerate(sfu_ops):
        sfu_result = gpr(_LOAD_BASE + 1 + index)
        b.op(sfu_op, sfu_result, work)
        mixer.release_result(work)
        work = mixer.emit(
            [sfu_result], alu_ops_between, coefficients=(R_C1,)
        )
    b.op(Opcode.FADD, _ACC, _ACC, work)
    mixer.release_result(work)
    _loop_epilogue(b, R_N, "loop", advance=(R_IN,), step=4)
    b.block("done")
    b.op(Opcode.STG, None, R_OUT, _ACC)
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description=f"transcendental chain ({len(sfu_ops)} SFU ops/iter)",
    )


def texture_sampler(
    name: str,
    suite: str,
    fetches: int = 2,
    filter_ops: int = 8,
    num_warps: int = 3,
    trips: Sequence[int] = (5, 7, 9),
) -> WorkloadSpec:
    """Texture fetches (long latency) plus filtering arithmetic."""
    b = KernelBuilder(name, live_in=LIVE_INS)
    b.block("entry")
    b.op(Opcode.MOV, _PTR, R_IN)
    b.block("loop")
    mixer = ArithMixer(b, _seed_of(name))
    texels = _loads(b, fetches, _PTR, opcode=Opcode.TEX, spacing=1)
    result = mixer.emit(texels, filter_ops, coefficients=(R_C0,))
    b.op(Opcode.STG, None, R_OUT, result)
    mixer.release_result(result)
    _loop_epilogue(b, R_N, "loop", advance=(_PTR, R_OUT), step=4)
    b.block("done")
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description=f"texture sampler, {fetches} fetches/iter",
    )


def histogram_scatter(
    name: str,
    suite: str,
    bit_ops: int = 4,
    num_warps: int = 3,
    trips: Sequence[int] = (8, 12, 16),
) -> WorkloadSpec:
    """Bit manipulation plus data-dependent shared-memory scatter."""
    b = KernelBuilder(name, live_in=LIVE_INS)
    b.block("loop")
    mixer = ArithMixer(b, _seed_of(name))
    value = gpr(_LOAD_BASE)
    b.op(Opcode.LDG, value, R_IN)
    work = mixer.emit([value], bit_ops, coefficients=(R_C0,))
    bucket = gpr(_LOAD_BASE + 1)
    b.op(Opcode.AND, bucket, work, 255)
    mixer.release_result(work)
    b.op(Opcode.SHL, _ADDR, bucket, 2)
    count = gpr(_LOAD_BASE + 2)
    b.op(Opcode.LDS, count, _ADDR)
    new_count = gpr(_LOAD_BASE + 3)
    b.op(Opcode.IADD, new_count, count, 1)
    b.op(Opcode.STS, None, _ADDR, new_count)
    _loop_epilogue(b, R_N, "loop", advance=(R_IN,), step=4)
    b.block("done")
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description="bit ops + shared-memory scatter",
    )


def branchy_hammock(
    name: str,
    suite: str,
    work_ops: int = 4,
    num_warps: int = 3,
    trips: Sequence[int] = (8, 10, 14),
) -> WorkloadSpec:
    """Data-dependent hammock writing one register on both sides.

    The merge-point consumer exercises forward-branch allocation
    (Figure 10c): both sides can target the same ORF entry.
    """
    b = KernelBuilder(name, live_in=LIVE_INS)
    b.block("loop")
    value = gpr(_LOAD_BASE)
    b.op(Opcode.LDG, value, R_IN)
    b.op(Opcode.SETP, pred(0), value, 128)
    b.bra("small", guard=pred(0))
    b.block("big")
    result = gpr(_LOAD_BASE + 1)
    big_mixer = ArithMixer(b, _seed_of(name + "/big"))
    big_val = big_mixer.emit([value], work_ops, coefficients=(R_C0,))
    b.op(Opcode.IMUL, result, big_val, 3)
    big_mixer.release_result(big_val)
    b.bra("merge")
    b.block("small")
    small_mixer = ArithMixer(b, _seed_of(name + "/small"))
    small_val = small_mixer.emit([value], work_ops, coefficients=(R_C1,))
    b.op(Opcode.IADD, result, small_val, 5)
    small_mixer.release_result(small_val)
    b.block("merge")
    clamped = gpr(_LOAD_BASE + 2)
    b.op(Opcode.IMIN, clamped, result, 255)
    b.op(Opcode.STG, None, R_OUT, clamped)
    _loop_epilogue(b, R_N, "loop", advance=(R_IN, R_OUT), step=4)
    b.block("done")
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description="hammock writing one register on both sides",
    )


def nested_loop(
    name: str,
    suite: str,
    inner_trip: int = 4,
    inner_ops: int = 6,
    accumulators: int = 2,
    num_warps: int = 3,
    trips: Sequence[int] = (4, 5, 6),
) -> WorkloadSpec:
    """Outer loop with loads feeding an inner compute loop."""
    b = KernelBuilder(name, live_in=LIVE_INS)
    accs = [gpr(30 + index) for index in range(accumulators)]
    b.block("entry")
    b.op(Opcode.MOV, _ACC, 0)
    for index, acc in enumerate(accs):
        b.op(Opcode.MOV, acc, index)
    b.block("outer")
    value = gpr(_LOAD_BASE)
    b.op(Opcode.LDG, value, R_IN)
    inner_count = gpr(_LOAD_BASE + 1)
    b.op(Opcode.MOV, inner_count, inner_trip)
    b.block("inner")
    mixer = ArithMixer(b, _seed_of(name))
    work = mixer.emit(
        [value, inner_count], inner_ops, coefficients=(R_C0,)
    )
    b.op(Opcode.FADD, _ACC, _ACC, work)
    for index, acc in enumerate(accs):
        b.op(Opcode.FFMA, acc, work, R_C0, acc)
    mixer.release_result(work)
    b.op(Opcode.IADD, inner_count, inner_count, -1)
    b.op(Opcode.SETP, pred(1), 0, inner_count)
    b.bra("inner", guard=pred(1))
    b.block("outer_tail")
    _loop_epilogue(b, R_N, "outer", advance=(R_IN,), step=4)
    b.block("done")
    for acc in accs:
        b.op(Opcode.FADD, _ACC, _ACC, acc)
    b.op(Opcode.STG, None, R_OUT, _ACC)
    b.exit()
    return WorkloadSpec(
        name, suite, b.build(), _warp_inputs(num_warps, trips),
        description=f"nested loop, inner trip {inner_trip}",
    )

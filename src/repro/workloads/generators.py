"""Random structured kernel generation (fuzzing and property tests).

Generates valid kernels — every register defined before use on every
path, structured control flow (straight-line segments, hammocks, and
counted loops) — from a seed.  Used to fuzz the allocator against the
dynamic verifier (``repro.sim.verify``): for any generated kernel and
any allocator configuration, every annotated read must observe the
architecturally correct value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..ir.builder import KernelBuilder
from ..ir.instructions import Opcode
from ..ir.kernel import Kernel
from ..ir.registers import Register, gpr, pred
from ..sim.executor import WarpInput
from .shapes import LIVE_INS, R_C0, R_C1, R_IN, R_N, R_OUT, WorkloadSpec

_ALU_BINARY = (
    Opcode.IADD,
    Opcode.ISUB,
    Opcode.IMUL,
    Opcode.IMIN,
    Opcode.IMAX,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
)
_SFU_UNARY = (Opcode.RCP, Opcode.SQRT, Opcode.SIN, Opcode.EX2)


@dataclass
class GeneratorConfig:
    """Knobs for random kernel generation."""

    num_segments: int = 4
    ops_per_segment: int = 6
    max_registers: int = 20
    loop_probability: float = 0.35
    hammock_probability: float = 0.3
    load_probability: float = 0.25
    sfu_probability: float = 0.1
    store_probability: float = 0.15
    max_loop_trip: int = 5


class _Generator:
    def __init__(self, seed: int, config: GeneratorConfig) -> None:
        self.rng = random.Random(seed)
        self.config = config
        self.builder = KernelBuilder(f"fuzz_{seed}", live_in=LIVE_INS)
        #: Registers guaranteed defined on every path to this point.
        self.defined: List[Register] = [r for r in LIVE_INS]
        self._label_counter = 0
        self._loop_counter_regs = 0

    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"

    def _fresh_reg(self) -> Register:
        index = self.rng.randrange(5, self.config.max_registers)
        return gpr(index)

    def _source(self) -> Register:
        return self.rng.choice(self.defined)

    def _define(self, reg: Register) -> None:
        if reg not in self.defined:
            self.defined.append(reg)

    # -- emission ---------------------------------------------------------

    def _emit_op(self) -> None:
        b = self.builder
        roll = self.rng.random()
        if roll < self.config.load_probability:
            dst = self._fresh_reg()
            b.op(Opcode.LDG, dst, self._source())
            self._define(dst)
        elif roll < self.config.load_probability + self.config.sfu_probability:
            dst = self._fresh_reg()
            b.op(self.rng.choice(_SFU_UNARY), dst, self._source())
            self._define(dst)
        elif roll < (
            self.config.load_probability
            + self.config.sfu_probability
            + self.config.store_probability
        ):
            b.op(Opcode.STG, None, self._source(), self._source())
        else:
            dst = self._fresh_reg()
            opcode = self.rng.choice(_ALU_BINARY + (Opcode.FFMA,))
            if opcode is Opcode.FFMA:
                b.op(opcode, dst, self._source(), self._source(),
                     self._source())
            else:
                b.op(opcode, dst, self._source(), self._source())
            self._define(dst)

    def _emit_straight(self, count: int) -> None:
        for _ in range(count):
            self._emit_op()

    def _emit_hammock(self) -> None:
        b = self.builder
        p = pred(self.rng.randrange(0, 2))
        b.op(Opcode.SETP, p, self._source(), self.rng.randrange(1, 200))
        else_label = self._label("else")
        merge_label = self._label("merge")
        b.bra(else_label, guard=p)
        b.block(self._label("then"))
        # then-side; both sides define the same register so the merge
        # point may consume it (Figure 10c).
        common = self._fresh_reg()
        before = list(self.defined)
        self._emit_straight(self.rng.randrange(1, 4))
        b.op(Opcode.IADD, common, self._source(), 1)
        b.bra(merge_label)
        # else-side: reset definedness to the pre-hammock state.
        self.defined = list(before)
        b.block(else_label)
        self._emit_straight(self.rng.randrange(1, 4))
        b.op(Opcode.ISUB, common, self._source(), 1)
        b.block(merge_label)
        self.defined = list(before)
        self._define(common)

    def _emit_loop(self) -> None:
        b = self.builder
        counter = gpr(self.config.max_registers + self._loop_counter_regs)
        self._loop_counter_regs += 1
        trip = self.rng.randrange(2, self.config.max_loop_trip + 1)
        b.op(Opcode.MOV, counter, trip)
        self._define(counter)
        loop_label = self._label("loop")
        b.block(loop_label)
        before = list(self.defined)
        self._emit_straight(self.rng.randrange(2, self.config.ops_per_segment))
        # Only registers defined before the loop are guaranteed on the
        # backward path; restore definedness conservatively.
        p = pred(2)
        b.op(Opcode.IADD, counter, counter, -1)
        b.op(Opcode.SETP, p, 0, counter)
        b.bra(loop_label, guard=p)
        b.block(self._label("after"))
        self.defined = before

    def generate(self) -> Kernel:
        b = self.builder
        b.block("entry")
        self._emit_straight(2)
        for _ in range(self.config.num_segments):
            roll = self.rng.random()
            if roll < self.config.loop_probability:
                self._emit_loop()
            elif roll < (
                self.config.loop_probability
                + self.config.hammock_probability
            ):
                self._emit_hammock()
            else:
                self._emit_straight(self.config.ops_per_segment)
        b.op(Opcode.STG, None, R_OUT, self._source())
        b.exit()
        return b.build()


def generate_kernel(
    seed: int, config: GeneratorConfig = GeneratorConfig()
) -> Kernel:
    """Deterministically generate one valid random kernel."""
    return _Generator(seed, config).generate()


def generate_workload(
    seed: int,
    config: GeneratorConfig = GeneratorConfig(),
    num_warps: int = 2,
) -> WorkloadSpec:
    """A random kernel with standard warp inputs."""
    kernel = generate_kernel(seed, config)
    inputs = [
        WarpInput(
            live_in_values={
                R_IN: 4096 * warp,
                R_OUT: 1_000_000 + 4096 * warp,
                R_N: 4 + warp,
                R_C0: 3,
                R_C1: 5,
            }
        )
        for warp in range(num_warps)
    ]
    return WorkloadSpec(
        name=kernel.name,
        suite="fuzz",
        kernel=kernel,
        warp_inputs=inputs,
        description=f"random kernel, seed={seed}",
    )

"""Deterministic arithmetic-block synthesis shared by all kernel shapes.

The register-usage statistics that drive the paper's results (Figure 2)
come from the *arithmetic texture* of real kernels: interleaved
dependence chains, butterfly pairs (each input read twice, in two
different operand slots), short producer-consumer distances with an
occasional long-lived value, and a few dead writes.  :class:`ArithMixer`
emits such blocks deterministically from a seed, managing a small pool
of temporary registers the way a real register allocator would.

Patterns emitted (probabilities configurable):

* *chain step* — ``t = ffma(head, coef, head2)``: head read once,
  lifetime 1;
* *butterfly* — ``c = a + b; d = a - b``: a and b each read twice, in
  operand slots A and B, then die;
* *triad* — three fresh read-once values consumed by one FMA in
  operand slots A, B, and C: with three values simultaneously live for
  one or two cycles, a unified one-entry LRF can hold only one of them
  while a split LRF holds all three — the pattern behind the paper's
  split-LRF advantage (Section 6.3);
* *stash* — hold a value and consume it several ops later (lifetime
  >3 tail of Figure 2b);
* *dead write* — a value never read (the 'Read 0 Times' band of
  Figure 2a).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..ir.builder import KernelBuilder
from ..ir.instructions import Opcode
from ..ir.registers import Register, gpr

_CHAIN_OPS = (Opcode.FFMA, Opcode.IMAD)
_PAIR_OPS = (
    (Opcode.IADD, Opcode.ISUB),
    (Opcode.FADD, Opcode.FMUL),
    (Opcode.IMIN, Opcode.IMAX),
)


class ArithMixer:
    """Emits a realistic arithmetic block into a KernelBuilder."""

    def __init__(
        self,
        builder: KernelBuilder,
        seed: int,
        temp_range: Sequence[int] = range(8, 22),
        butterfly_prob: float = 0.22,
        triad_prob: float = 0.18,
        stash_prob: float = 0.12,
        dead_prob: float = 0.04,
    ) -> None:
        self.b = builder
        self.rng = random.Random(seed)
        self.free: List[Register] = [gpr(i) for i in temp_range]
        self.butterfly_prob = butterfly_prob
        self.triad_prob = triad_prob
        self.stash_prob = stash_prob
        self.dead_prob = dead_prob
        #: (register, ops remaining until consumption)
        self._stashes: List[List] = []

    def _alloc(self) -> Register:
        if not self.free:
            raise RuntimeError("mixer temp pool exhausted")
        return self.free.pop()

    def _release(self, reg: Register) -> None:
        if reg not in self.free:
            self.free.append(reg)

    def emit(
        self,
        inputs: Sequence[Register],
        num_ops: int,
        coefficients: Sequence[Register] = (),
    ) -> Register:
        """Emit ~``num_ops`` instructions consuming ``inputs``; returns
        the register holding the block's result.

        ``inputs`` must hold live values; they are treated as read-only.
        ``coefficients`` are extra read-only multi-read values (loop
        invariants), matching the '>2 reads' band of Figure 2a.
        """
        if not inputs:
            raise ValueError("mixer needs at least one input")
        rng = self.rng
        coefs = list(coefficients) if coefficients else list(inputs[:1])

        # Two live chain heads, seeded from the inputs.
        heads: List[Register] = []
        first = self._alloc()
        self.b.op(Opcode.IADD, first, inputs[0], 1)
        heads.append(first)
        second = self._alloc()
        self.b.op(
            Opcode.IMUL, second, inputs[min(1, len(inputs) - 1)],
            rng.choice(coefs),
        )
        heads.append(second)
        emitted = 2

        while emitted < num_ops:
            self._age_stashes(heads)
            roll = rng.random()
            if roll < self.dead_prob:
                dead = self._alloc()
                self.b.op(
                    Opcode.XOR, dead, rng.choice(heads), emitted
                )
                self._release(dead)
                emitted += 1
            elif roll < self.dead_prob + self.butterfly_prob and (
                len(heads) >= 2 and len(self.free) >= 2
            ):
                a, b_reg = heads[0], heads[1]
                op_add, op_sub = rng.choice(_PAIR_OPS)
                out1, out2 = self._alloc(), self._alloc()
                self.b.op(op_add, out1, a, b_reg)
                self.b.op(op_sub, out2, a, b_reg)
                self._release(a)
                self._release(b_reg)
                heads[0], heads[1] = out1, out2
                emitted += 2
            elif roll < (
                self.dead_prob + self.butterfly_prob + self.triad_prob
            ) and len(self.free) >= 4:
                # Triad: three fresh read-once values, consumed in
                # operand slots A, B, and C of one FMA (Section 6.3).
                slot_a = self._alloc()
                slot_b = self._alloc()
                slot_c = self._alloc()
                self.b.op(
                    Opcode.IADD, slot_a, heads[0], rng.randrange(1, 32)
                )
                self.b.op(Opcode.IMUL, slot_b, heads[-1], rng.choice(coefs))
                self.b.op(
                    Opcode.IADD, slot_c, heads[0], rng.randrange(32, 64)
                )
                out = self._alloc()
                self.b.op(Opcode.IMAD, out, slot_a, slot_b, slot_c)
                self._release(slot_a)
                self._release(slot_b)
                self._release(slot_c)
                head_index = rng.randrange(len(heads))
                self._release(heads[head_index])
                heads[head_index] = out
                emitted += 4
            elif roll < (
                self.dead_prob + self.butterfly_prob + self.stash_prob
            ) and self.free:
                stash = self._alloc()
                self.b.op(
                    Opcode.IADD, stash, rng.choice(heads),
                    rng.randrange(1, 64),
                )
                self._stashes.append([stash, rng.randrange(4, 9)])
                emitted += 1
            else:
                head_index = rng.randrange(len(heads))
                head = heads[head_index]
                out = self._alloc()
                other = rng.choice(
                    list(inputs) + coefs + [h for h in heads if h != head]
                )
                opcode = rng.choice(_CHAIN_OPS)
                self.b.op(opcode, out, head, rng.choice(coefs), other)
                self._release(head)
                heads[head_index] = out
                emitted += 1

        # Consume outstanding stashes and collapse heads.
        for stash, _ in self._stashes:
            out = self._alloc()
            self.b.op(Opcode.IADD, out, heads[0], stash)
            self._release(stash)
            self._release(heads[0])
            heads[0] = out
        self._stashes.clear()
        while len(heads) > 1:
            merged = self._alloc()
            self.b.op(Opcode.IADD, merged, heads[0], heads[1])
            self._release(heads[0])
            self._release(heads[1])
            heads = [merged] + heads[2:]
        return heads[0]

    def _age_stashes(self, heads: List[Register]) -> None:
        """Consume stashed values whose deferral has elapsed."""
        remaining: List[List] = []
        for entry in self._stashes:
            stash, countdown = entry
            if countdown <= 0:
                index = self.rng.randrange(len(heads))
                out = self._alloc()
                self.b.op(Opcode.IMAD, out, stash, heads[index], stash)
                self._release(stash)
                self._release(heads[index])
                heads[index] = out
            else:
                entry[1] = countdown - 1
                remaining.append(entry)
        self._stashes = remaining

    def release_result(self, reg: Register) -> None:
        """Return the block result's register to the pool."""
        self._release(reg)

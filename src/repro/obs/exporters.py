"""Span exporters: Chrome trace-event JSON (Perfetto-loadable) and
plain JSONL.

The Chrome format is the ``chrome://tracing`` / Perfetto "JSON trace
event" flavour: complete events (``"ph": "X"``) with microsecond
timestamps, grouped by the recording process/thread so pool workers
show up as separate tracks.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List

from .tracer import Span


def chrome_trace_events(spans: Iterable[Span]) -> Dict[str, Any]:
    """Spans as a Chrome trace-event document (``traceEvents`` list)."""
    events: List[Dict[str, Any]] = []
    for span in spans:
        args: Dict[str, Any] = dict(span.attributes)
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["ts"], event["pid"], event["tid"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span]) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_events(spans), handle, indent=2)
        handle.write("\n")


def read_jsonl(path: str) -> List[Span]:
    """Load spans from a JSONL sink (e.g. a shard's ``--trace-jsonl``
    file) so multi-process traces can merge into one document.
    Malformed lines are skipped — a shard killed mid-write must not
    sink the whole merge."""
    spans: List[Span] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(Span.from_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue
    except OSError:
        return []
    return spans


def write_jsonl(path: str, spans: Iterable[Span]) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")

"""Observability: span tracing, allocation provenance, metrics registry.

Light re-exports only — :mod:`repro.obs.explain` (which depends on the
allocator) is intentionally not imported here so low-level modules like
``repro.engine.metrics`` and ``repro.alloc.allocator`` can import this
package without a cycle.
"""

from .provenance import ProvenanceEvent, ProvenanceRecorder
from .registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from .tracer import TRACER, Span, Tracer, traced_call

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "ProvenanceEvent",
    "ProvenanceRecorder",
    "Span",
    "TRACER",
    "Tracer",
    "render_prometheus",
    "traced_call",
]

"""Unified metrics registry: counters, gauges, and fixed-bucket
histograms, with Prometheus text exposition (stdlib only).

This subsumes the flat counter/gauge dicts that :class:`RunMetrics`
(``repro.engine.metrics``) has carried since schema 1 and adds the
missing aggregate: **histograms** with fixed upper-bound buckets, used
for service request latencies and engine stage durations.  Buckets are
fixed at creation so merging snapshots and rendering cumulative
Prometheus ``_bucket`` series is exact, never interpolated.

:func:`render_prometheus` turns a ``RunMetrics.to_dict()`` snapshot
into Prometheus text exposition format v0.0.4 — the format served by
``GET /metrics`` under content negotiation (JSON stays the default).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 250µs .. 10s, roughly 1-2.5-5 per
#: decade — wide enough for cold service requests, fine enough for warm
#: memo hits.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``bounds`` are inclusive upper bounds in ascending order; one
    overflow bucket (``+Inf``) is implicit at the end.
    """

    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per bound, ending with the +Inf total."""
        out: List[int] = []
        running = 0
        for bucket in self.bucket_counts:
            running += bucket
            out.append(running)
        return out

    def quantile(self, fraction: float) -> float:
        """Estimated quantile: the upper bound of the bucket holding the
        target rank (the overflow bucket reports the last finite bound)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.5))
        running = 0
        for index, bucket in enumerate(self.bucket_counts):
            running += bucket
            if running >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "sum": round(self.total, 9),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        histogram = cls(data["bounds"])
        counts = list(data.get("bucket_counts", []))
        if len(counts) != len(histogram.bucket_counts):
            raise ValueError("bucket_counts does not match bounds")
        histogram.bucket_counts = [int(c) for c in counts]
        histogram.total = float(data.get("sum", 0.0))
        histogram.count = int(data.get("count", 0))
        return histogram

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.total += other.total
        self.count += other.count


class MetricsRegistry:
    """Named counters, gauges, and histograms under one roof."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get-or-create: the first caller fixes the bucket layout."""
        existing = self.histograms.get(name)
        if existing is None:
            existing = Histogram(buckets)
            self.histograms[name] = existing
        return existing

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        self.histogram(name, buckets).observe(value)


# -- Prometheus text exposition v0.0.4 ------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _sanitize_name(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isalnum() or char in "_:":
            if index == 0 and char.isdigit():
                out.append("_")
            out.append(char)
        else:
            out.append("_")
    return "".join(out) or "_"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def labeled_name(name: str, **labels: object) -> str:
    """A metric name carrying Prometheus-style labels.

    The cluster coordinator counts per-shard events under names like
    ``cluster_shard_requests{shard="0"}``; in the JSON metrics payload
    the label block is simply part of the counter key (additive for
    schema-3 readers), while :func:`render_prometheus` splits it back
    out so the exposition carries a real ``shard`` label.
    """
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}" if inner else name


def _split_labels(name: str) -> Tuple[str, str]:
    """``base{...}`` → (base, ``{...}``); label-free names pass through."""
    if name.endswith("}") and "{" in name:
        base, _, labels = name.partition("{")
        return base, "{" + labels
    return name, ""


def merge_labels(name: str, **labels: object) -> str:
    """Add labels to a metric name that may already carry some.

    The cluster metrics rollup stamps every per-shard series with a
    ``shard`` label; a name like ``cluster_shard_requests{shard="0"}``
    must gain further labels *inside* the existing block, not grow a
    second one.
    """
    base, existing = _split_labels(name)
    inner = existing[1:-1] if existing else ""
    extra = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    combined = ",".join(part for part in (inner, extra) if part)
    return f"{base}{{{combined}}}" if combined else base


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    snapshot: Dict[str, Any], namespace: str = "repro"
) -> str:
    """Render a ``RunMetrics.to_dict()`` snapshot as Prometheus text.

    Counters become ``{ns}_{name}_total``, gauges stay plain, stage
    timings fold into one ``{ns}_stage_seconds_total{stage="..."}``
    family, and each histogram becomes the standard cumulative
    ``_bucket``/``_sum``/``_count`` triple.
    """
    ns = _sanitize_name(namespace)
    lines: List[str] = []

    seen_counter_bases = set()
    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        base, labels = _split_labels(name)
        metric = f"{ns}_{_sanitize_name(base)}_total"
        if base not in seen_counter_bases:
            seen_counter_bases.add(base)
            lines.append(
                f"# HELP {metric} {_escape_help(base)} event count"
            )
            lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{labels} {_format_value(value)}")

    seen_gauge_bases = set()
    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        base, labels = _split_labels(name)
        metric = f"{ns}_{_sanitize_name(base)}"
        if base not in seen_gauge_bases:
            seen_gauge_bases.add(base)
            lines.append(f"# HELP {metric} {_escape_help(base)} gauge")
            lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{labels} {_format_value(value)}")

    stages = snapshot.get("stages", {})
    if stages:
        metric = f"{ns}_stage_seconds_total"
        lines.append(
            f"# HELP {metric} cumulative wall-clock seconds per stage"
        )
        lines.append(f"# TYPE {metric} counter")
        for name in sorted(stages):
            label = _escape_label_value(name)
            lines.append(
                f'{metric}{{stage="{label}"}} '
                f"{_format_value(stages[name])}"
            )

    seen_histogram_bases = set()
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        base, labels = _split_labels(name)
        metric = f"{ns}_{_sanitize_name(base)}"
        if base not in seen_histogram_bases:
            seen_histogram_bases.add(base)
            lines.append(f"# HELP {metric} {_escape_help(base)} histogram")
            lines.append(f"# TYPE {metric} histogram")
        # Fold ``le`` into any existing label block so shard-labeled
        # bucket series stay one well-formed label set.
        inner = labels[1:-1] if labels else ""

        def _bucket_labels(le_text: str) -> str:
            parts = ([inner] if inner else []) + [f'le="{le_text}"']
            return "{" + ",".join(parts) + "}"

        bounds = data["bounds"]
        running = 0
        for bound, bucket in zip(bounds, data["bucket_counts"]):
            running += bucket
            lines.append(
                f"{metric}_bucket"
                f"{_bucket_labels(_format_value(bound))} {running}"
            )
        running += data["bucket_counts"][len(bounds)]
        lines.append(f'{metric}_bucket{_bucket_labels("+Inf")} {running}')
        lines.append(f"{metric}_sum{labels} {_format_value(data['sum'])}")
        lines.append(f"{metric}_count{labels} {data['count']}")

    return "\n".join(lines) + "\n" if lines else ""

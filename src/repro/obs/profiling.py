"""Per-stage cProfile capture behind ``--profile-out``.

A :class:`StageProfiler`, when installed via :func:`install`, is
consulted by ``RunMetrics.stage`` so every named engine stage runs
under its own :class:`cProfile.Profile`.  ``cProfile`` cannot nest —
enabling a second profiler raises — so only the outermost stage of any
nested pair is profiled (the ``_active`` guard).  Disabled (the
default), the hook is a single module-global ``None`` check.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class StageProfiler:
    """One cProfile.Profile per stage name, accumulated across calls."""

    def __init__(self, top: int = 25) -> None:
        self.top = top
        self._profiles: Dict[str, cProfile.Profile] = {}
        self._active = False

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        if self._active:
            # cProfile cannot nest; inner stages run unprofiled.
            yield
            return
        profile = self._profiles.get(name)
        if profile is None:
            profile = cProfile.Profile()
            self._profiles[name] = profile
        self._active = True
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            self._active = False

    def report(self) -> str:
        sections = []
        for name in sorted(self._profiles):
            buffer = io.StringIO()
            stats = pstats.Stats(self._profiles[name], stream=buffer)
            stats.sort_stats("cumulative").print_stats(self.top)
            sections.append(
                f"==== stage: {name} ====\n{buffer.getvalue().strip()}\n"
            )
        if not sections:
            return "(no stages profiled)\n"
        return "\n".join(sections)

    def write(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.report())


_PROFILER: Optional[StageProfiler] = None


def install(profiler: StageProfiler) -> None:
    global _PROFILER
    _PROFILER = profiler


def uninstall() -> None:
    global _PROFILER
    _PROFILER = None


def current() -> Optional[StageProfiler]:
    return _PROFILER

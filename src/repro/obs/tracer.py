"""Span-based tracing with ``contextvars`` propagation (stdlib only).

One process-wide :data:`TRACER` records hierarchical spans: the
service request path (httpd → normalize → batcher → pool worker) and
the engine pipeline (parse → strand partition → allocation → trace sim
→ accounting) both open spans around their stages.  Tracing is **off
by default**; a disabled tracer's :meth:`Tracer.span` is a single
attribute check returning a shared no-op context manager, so traced
call sites cost nothing measurable in production paths.

Parenting is carried in a :mod:`contextvars` variable, so nesting
follows the logical flow — across ``await`` points and asyncio tasks —
rather than the call stack.  Two helpers move a trace across executor
boundaries, where context does not propagate by itself:

* :meth:`Tracer.wrap` captures the submitting context and replays it
  in a pool thread (same-process propagation);
* :meth:`Tracer.current_carrier` / :func:`traced_call` ship a small
  ``{"trace_id", "span_id"}`` carrier into a worker *process*, record
  spans there, and return them alongside the result for the parent to
  :meth:`Tracer.ingest`.

Span identifiers are deterministic per process (``pid.sequence``), so
traces are reproducible and collision-free across pool workers.
Finished spans buffer in memory (exported via
:mod:`repro.obs.exporters`) and optionally stream to a JSONL sink.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: (trace_id, span_id) of the active span, or None outside any span.
_CURRENT: "contextvars.ContextVar[Optional[Tuple[str, str]]]" = (
    contextvars.ContextVar("repro_obs_span", default=None)
)


@dataclass
class Span:
    """One finished (or in-flight) span."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    #: Wall-clock epoch seconds at start (aligns spans across processes).
    start_s: float
    duration_s: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "attributes": self.attributes,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_s=data["start_s"],
            duration_s=data.get("duration_s", 0.0),
            attributes=dict(data.get("attributes", {})),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
        )


class _NoopSpan:
    """Shared context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


class Tracer:
    """Process-wide span recorder; disabled (and free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._seq = 0
        self._jsonl_path: Optional[str] = None

    # -- configuration -----------------------------------------------------

    def configure(
        self,
        enabled: bool = True,
        jsonl_path: Optional[str] = None,
    ) -> None:
        """Turn tracing on/off and optionally stream spans to JSONL."""
        with self._lock:
            self._jsonl_path = jsonl_path
            if jsonl_path:
                directory = os.path.dirname(jsonl_path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                # Truncate: one run, one sink file.
                with open(jsonl_path, "w", encoding="utf-8"):
                    pass
        self.enabled = enabled

    def reset(self) -> None:
        """Disable and drop all buffered spans (tests)."""
        self.enabled = False
        with self._lock:
            self._spans.clear()
            self._seq = 0
            self._jsonl_path = None

    # -- span recording ----------------------------------------------------

    def _next_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{os.getpid():x}.{self._seq}"

    def span(self, name: str, **attributes: Any):
        """Context manager for one span; yields the :class:`Span` (or
        ``None`` when tracing is disabled) so callers may attach
        attributes discovered mid-flight."""
        if not self.enabled:
            return _NOOP
        return self._record_span(name, attributes)

    @contextmanager
    def _record_span(
        self, name: str, attributes: Dict[str, Any]
    ) -> Iterator[Span]:
        parent = _CURRENT.get()
        span_id = self._next_id()
        if parent is None:
            trace_id, parent_id = span_id, None
        else:
            trace_id, parent_id = parent[0], parent[1]
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start_s=time.time(),
            attributes=dict(attributes),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        token = _CURRENT.set((trace_id, span_id))
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - started
            _CURRENT.reset(token)
            self._finish(span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self._jsonl_path:
                try:
                    with open(
                        self._jsonl_path, "a", encoding="utf-8"
                    ) as handle:
                        handle.write(
                            json.dumps(span.to_dict(), sort_keys=True)
                            + "\n"
                        )
                except OSError:
                    pass

    # -- buffer access -----------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Return and clear all buffered spans."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def ingest(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Adopt spans recorded in another process (see
        :func:`traced_call`)."""
        spans = [Span.from_dict(data) for data in span_dicts]
        with self._lock:
            self._spans.extend(spans)

    # -- propagation -------------------------------------------------------

    def current_carrier(self) -> Optional[Dict[str, Any]]:
        """The active span context as a picklable carrier dict.

        Carries the origin ``pid`` so the receiving side can tell a
        same-process hop (thread pool) from a cross-process one (fork
        workers inherit ``enabled`` but must ship spans back)."""
        current = _CURRENT.get()
        if current is None:
            return None
        return {
            "trace_id": current[0],
            "span_id": current[1],
            "pid": os.getpid(),
        }

    @contextmanager
    def attach(
        self, carrier: Optional[Dict[str, Any]]
    ) -> Iterator[None]:
        """Parent subsequent spans under a carrier from elsewhere."""
        if not carrier:
            yield
            return
        token = _CURRENT.set(
            (carrier["trace_id"], carrier["span_id"])
        )
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def wrap(self, fn):
        """Bind ``fn`` to the *submitting* context so spans opened in a
        pool thread nest under the caller's active span."""
        ctx = contextvars.copy_context()

        def bound(*args: Any, **kwargs: Any) -> Any:
            return ctx.run(fn, *args, **kwargs)

        return bound

    @contextmanager
    def recording(
        self, carrier: Optional[Dict[str, Any]] = None
    ) -> Iterator[List[Span]]:
        """Temporarily enable tracing and collect the spans recorded in
        the ``with`` body (worker-process side of a carrier hop).

        If the tracer is already enabled *and* the carrier originated in
        this process (same-process executor), spans flow to the shared
        buffer as usual and the yielded list stays empty — the parent
        already sees them.  A carrier from another pid forces the
        collect path even when ``enabled`` was inherited across a fork:
        a fork child's buffer is invisible to the parent, so the spans
        must ship back with the result.
        """
        collected: List[Span] = []
        same_process = carrier is None or carrier.get("pid") == os.getpid()
        if self.enabled and same_process:
            with self.attach(carrier):
                yield collected
            return
        self.enabled = True
        before = len(self._spans)
        try:
            with self.attach(carrier):
                yield collected
        finally:
            self.enabled = False
            with self._lock:
                collected.extend(self._spans[before:])
                del self._spans[before:]


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()

#: HTTP header carrying the span context across service hops
#: (coordinator → shard).  Lower-case to match the servers' parsed
#: header dicts.
TRACE_HEADER = "x-repro-trace"


def carrier_to_header(carrier: Dict[str, Any]) -> str:
    """Serialise a :meth:`Tracer.current_carrier` dict for HTTP."""
    return json.dumps(carrier, sort_keys=True, separators=(",", ":"))


def carrier_from_header(value: Optional[str]) -> Optional[Dict[str, Any]]:
    """Parse an ``X-Repro-Trace`` header; ``None`` on anything
    malformed (a bad trace header must never fail a request)."""
    if not value:
        return None
    try:
        carrier = json.loads(value)
    except ValueError:
        return None
    if (
        not isinstance(carrier, dict)
        or not isinstance(carrier.get("trace_id"), str)
        or not isinstance(carrier.get("span_id"), str)
    ):
        return None
    return carrier


def traced_call(
    carrier: Optional[Dict[str, Any]], fn, *args: Any
) -> Dict[str, Any]:
    """Run ``fn(*args)`` in a worker process under ``carrier``.

    Returns ``{"result": ..., "spans": [...]}`` — picklable either way
    — so the parent can ingest the worker's spans while the result
    itself stays byte-identical to an untraced call.
    """
    with TRACER.recording(carrier) as collected:
        with TRACER.span(getattr(fn, "__name__", "worker")):
            result = fn(*args)
    return {
        "result": result,
        "spans": [span.to_dict() for span in collected],
    }

"""`repro explain`: re-run the allocator with provenance and print the
decision chain behind every operand placement.

Unlike the rest of ``repro.obs`` this module imports the allocator, so
it is *not* re-exported from the package ``__init__`` (the allocator
itself depends on ``repro.obs.provenance``).

The report has four sections: the configuration, the strand map with
the endpoint kind that *caused* each strand boundary (ORF/LRF contents
are invalidated there — the usual root cause of a misread), the
filtered decision trail, and the final operand annotations.  Filtering
by ``--reg RN`` keeps events whose subject register is RN *or* whose
covered positions include an instruction mentioning RN — so asking
about a destination (``R18``) also surfaces the decisions about its
source operands, which is how a bad ORF read at ``@16 imax R18``
traces back to the placement that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ..alloc.allocator import AllocationConfig, allocate_kernel
from ..alloc.analysis import kernel_analysis
from ..energy.model import EnergyModel
from ..ir.instructions import Instruction
from ..ir.kernel import Kernel
from ..levels import Level
from .provenance import ProvenanceEvent, ProvenanceRecorder

#: Version of the ``repro explain --json`` document.
EXPLAIN_SCHEMA = 1


def _instruction_mentions(instruction: Instruction, reg: str) -> bool:
    if instruction.dst is not None and str(instruction.dst) == reg:
        return True
    return any(str(src) == reg for src in instruction.srcs)


def _format_source_annotation(ann) -> str:
    if ann.level is Level.ORF and ann.orf_entry is not None:
        text = f"ORF[{ann.orf_entry}]"
    elif ann.level is Level.LRF and ann.lrf_bank is not None:
        text = f"LRF[{ann.lrf_bank}]"
    else:
        text = ann.level.name
    if ann.orf_write_entry is not None:
        text += f" (+write ORF[{ann.orf_write_entry}])"
    return text


def _format_dest_annotation(ann) -> str:
    parts = []
    for level in ann.levels:
        if level is Level.ORF and ann.orf_entry is not None:
            parts.append(f"ORF[{ann.orf_entry}]")
        elif level is Level.LRF and ann.lrf_bank is not None:
            parts.append(f"LRF[{ann.lrf_bank}]")
        else:
            parts.append(level.name)
    return "+".join(parts) if parts else "(none)"


def _format_event(event: ProvenanceEvent) -> str:
    positions = ",".join(str(p) for p in event.positions)
    detail = " ".join(
        f"{key}={value}" for key, value in sorted(event.detail.items())
    )
    level = f" {event.level}" if event.level else ""
    text = (
        f"[strand {event.strand}] {event.kind:<9} {event.target} "
        f"{event.reg}{level} @[{positions}]"
    )
    if detail:
        text += f"  {detail}"
    return text


@dataclass
class _Explanation:
    """Everything both renderers (text and JSON) need, gathered once."""

    kernel: Kernel
    clone: Kernel
    result: Any
    instructions: Dict[int, Instruction]
    total_events: int
    kept: List[ProvenanceEvent]
    matched_positions: Set[int]
    report_positions: List[int]


def _gather(
    kernel: Kernel,
    config: AllocationConfig,
    reg: Optional[str],
    position: Optional[int],
    model: Optional[EnergyModel],
) -> _Explanation:
    """Allocate a clone of ``kernel`` under ``config`` with provenance
    recording and filter the decision trail.

    The recorder attaches to the per-config levels pass only; the
    scheme-independent analysis comes from the shared
    :func:`~repro.alloc.analysis.kernel_analysis` cache, which emits no
    provenance — so explaining one scheme out of a batched sweep reuses
    the sweep's analysis and records exactly the decisions of that
    scheme's levels pass.
    """
    recorder = ProvenanceRecorder()
    clone = kernel.clone()
    analysis = kernel_analysis(kernel, config.assume_persistent_strands)
    result = allocate_kernel(
        clone, config, model, recorder=recorder, analysis=analysis
    )

    instructions = {
        ref.position: instruction
        for ref, instruction in clone.instructions()
    }

    matched_positions: Set[int] = set()
    if reg is not None:
        for pos, instruction in instructions.items():
            if _instruction_mentions(instruction, reg):
                matched_positions.add(pos)

    def _keep(event: ProvenanceEvent) -> bool:
        if position is not None and position not in event.positions:
            return False
        if reg is None:
            return True
        if event.reg == reg:
            return True
        return any(p in matched_positions for p in event.positions)

    kept = [event for event in recorder.events if _keep(event)]

    report_positions = sorted(
        matched_positions
        | {p for event in kept for p in event.positions}
        | ({position} if position is not None else set())
    )
    if not report_positions and reg is None and position is None:
        report_positions = sorted(instructions)
    return _Explanation(
        kernel=kernel,
        clone=clone,
        result=result,
        instructions=instructions,
        total_events=len(recorder.events),
        kept=kept,
        matched_positions=matched_positions,
        report_positions=report_positions,
    )


def _strand_rows(result) -> List[Dict[str, Any]]:
    partition = result.partition
    rows: List[Dict[str, Any]] = []
    for strand in partition.strands:
        first = strand.first_position
        cause = partition.cut_before.get(first)
        if cause is None:
            cause = partition.entry_cuts.get(first)
        rows.append(
            {
                "strand": strand.strand_id,
                "first_position": first,
                "last_position": strand.last_position,
                "instructions": len(strand.positions),
                "boundary": cause.name.lower() if cause else None,
            }
        )
    return rows


def explain_report(
    kernel: Kernel,
    config: AllocationConfig,
    reg: Optional[str] = None,
    position: Optional[int] = None,
    model: Optional[EnergyModel] = None,
) -> str:
    """The human-readable decision-chain report (see :func:`_gather`)."""
    data = _gather(kernel, config, reg, position, model)
    result = data.result
    instructions = data.instructions

    lines: List[str] = []
    lines.append(f"kernel {kernel.name}: allocation provenance")
    lines.append(
        f"config: orf_entries={config.orf_entries}"
        f" use_lrf={config.use_lrf} split_lrf={config.split_lrf}"
        f" partial_ranges={config.enable_partial_ranges}"
        f" read_operands={config.enable_read_operands}"
        f" forward_branches={config.allow_forward_branches}"
    )
    summary = result.summary()
    lines.append(
        "summary: "
        + " ".join(f"{key}={summary[key]}" for key in sorted(summary))
    )

    # Strand map: where ORF/LRF contents are invalidated, and why.
    lines.append("")
    lines.append("strands (ORF/LRF contents do not survive boundaries):")
    for row in _strand_rows(result):
        cause_text = (
            f" boundary={row['boundary']}" if row["boundary"] else ""
        )
        lines.append(
            f"  strand {row['strand']}:"
            f" @{row['first_position']}..@{row['last_position']}"
            f" ({row['instructions']} instr){cause_text}"
        )

    # Decision trail, filtered.
    lines.append("")
    filter_text = []
    if reg is not None:
        filter_text.append(f"reg={reg}")
    if position is not None:
        filter_text.append(f"pos={position}")
    suffix = f" ({' '.join(filter_text)})" if filter_text else ""
    lines.append(
        f"decision trail{suffix}: {len(data.kept)} of "
        f"{data.total_events} events"
    )
    for event in data.kept:
        lines.append("  " + _format_event(event))

    # Final annotations at the positions the filter touched.
    if data.report_positions:
        lines.append("")
        lines.append("final operand annotations:")
        for pos in data.report_positions:
            instruction = instructions.get(pos)
            if instruction is None:
                continue
            lines.append(f"  @{pos} {instruction}")
            if instruction.dst is not None and instruction.dst_ann:
                lines.append(
                    f"      dst {instruction.dst} -> "
                    f"{_format_dest_annotation(instruction.dst_ann)}"
                )
            if instruction.src_anns:
                for slot, src in enumerate(instruction.srcs):
                    ann = instruction.src_anns[slot]
                    lines.append(
                        f"      src[{slot}] {src} <- "
                        f"{_format_source_annotation(ann)}"
                    )
    return "\n".join(lines) + "\n"


def explain_json(
    kernel: Kernel,
    config: AllocationConfig,
    reg: Optional[str] = None,
    position: Optional[int] = None,
    model: Optional[EnergyModel] = None,
) -> Dict[str, Any]:
    """The machine-readable form of :func:`explain_report`.

    Same gather, same filtering: the strand map, the filtered decision
    trail (events verbatim, detail included), and the final operand
    annotations at every position the filter touched — plus the full
    annotation document of :mod:`repro.alloc.serialize` so consumers
    can cross-reference unfiltered positions.
    """
    from ..alloc.serialize import annotations_to_dict

    data = _gather(kernel, config, reg, position, model)
    summary = data.result.summary()
    events = [
        {
            "strand": event.strand,
            "kind": event.kind,
            "target": event.target,
            "reg": event.reg,
            "level": event.level,
            "positions": list(event.positions),
            "detail": dict(sorted(event.detail.items())),
        }
        for event in data.kept
    ]
    annotated: List[Dict[str, Any]] = []
    for pos in data.report_positions:
        instruction = data.instructions.get(pos)
        if instruction is None:
            continue
        entry: Dict[str, Any] = {
            "position": pos,
            "text": str(instruction),
        }
        if instruction.dst is not None and instruction.dst_ann:
            entry["dst"] = {
                "reg": str(instruction.dst),
                "placement": _format_dest_annotation(instruction.dst_ann),
            }
        if instruction.src_anns:
            entry["srcs"] = [
                {
                    "reg": str(src),
                    "placement": _format_source_annotation(
                        instruction.src_anns[slot]
                    ),
                }
                for slot, src in enumerate(instruction.srcs)
            ]
        annotated.append(entry)
    return {
        "schema": EXPLAIN_SCHEMA,
        "kernel": kernel.name,
        "config": config.to_dict(),
        "summary": {key: summary[key] for key in sorted(summary)},
        "filter": {"reg": reg, "position": position},
        "strands": _strand_rows(data.result),
        "decision_trail": {
            "total_events": data.total_events,
            "kept_events": len(data.kept),
            "events": events,
        },
        "annotated_positions": annotated,
        "annotations": annotations_to_dict(data.clone),
    }

"""Allocation provenance: a decision-by-decision trail of the greedy
register-file allocator (paper §4.2–§4.6).

The allocator (``repro.alloc.allocator``) optionally carries a
:class:`ProvenanceRecorder`; at every decision point it emits one
:class:`ProvenanceEvent` describing what was considered and why the
outcome happened — candidate scoring, bank/entry placement, partial-
range trims, read-operand coverage, and skips with their reason.
Recording is strictly additive: the allocator's results are identical
with and without a recorder attached.

This module holds only the event/recorder data model; it deliberately
imports nothing from ``repro.alloc`` so the allocator can depend on it
without a cycle.  The human-facing report lives in
:mod:`repro.obs.explain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Event kinds, in the order the allocator emits them for one candidate.
EVENT_KINDS = ("candidate", "skip", "trim", "place", "fail")


@dataclass(frozen=True)
class ProvenanceEvent:
    """One allocator decision.

    ``kind``
        ``candidate`` — a web/read-operand was scored and enqueued;
        ``skip`` — rejected outright (reason in ``detail``);
        ``trim`` — partial-range retry after dropping the last read;
        ``place`` — entries assigned at ``level``;
        ``fail`` — no placement after exhausting trims.
    ``target``
        ``"web"`` (a register's def-to-reads range, §4.2) or
        ``"read_operand"`` (read-slot staging, §4.4).
    ``positions``
        The static instruction positions this decision covers.
    """

    kind: str
    strand: int
    target: str
    reg: str
    level: Optional[str] = None
    positions: Tuple[int, ...] = ()
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "strand": self.strand,
            "target": self.target,
            "reg": self.reg,
            "level": self.level,
            "positions": list(self.positions),
            "detail": dict(self.detail),
        }


class ProvenanceRecorder:
    """Append-only list of :class:`ProvenanceEvent`."""

    def __init__(self) -> None:
        self.events: List[ProvenanceEvent] = []

    def record(
        self,
        kind: str,
        strand: int,
        target: str,
        reg: str,
        *,
        level: Optional[str] = None,
        positions: Iterable[int] = (),
        **detail: Any,
    ) -> None:
        self.events.append(
            ProvenanceEvent(
                kind=kind,
                strand=strand,
                target=target,
                # Accept Register objects from the allocator; store the
                # architectural name so filters and JSON stay plain.
                reg=str(reg),
                level=level,
                positions=tuple(positions),
                detail=detail,
            )
        )

    def for_reg(self, reg: str) -> List[ProvenanceEvent]:
        return [event for event in self.events if event.reg == reg]

    def for_position(self, position: int) -> List[ProvenanceEvent]:
        return [
            event for event in self.events if position in event.positions
        ]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events]

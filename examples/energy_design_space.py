#!/usr/bin/env python3
"""Design-space exploration: ORF sizing, LRF variants, and ablations.

Sweeps the ORF/RFC size for every organisation over a compute-heavy
workload subset (a miniature Figure 13), ablates the paper's two
allocation optimisations, and prices the instruction-encoding overhead
— the analysis an architect would run before committing to a design
point.

Run:  python examples/energy_design_space.py
"""

from repro.energy import encoding_overhead
from repro.experiments import SuiteData, run_fig13
from repro.sim import Scheme, SchemeKind
from repro.workloads import get_workload

WORKLOADS = [
    "matrixmul", "nbody", "hotspot", "convolutionseparable",
    "montecarlo", "histogram", "mergesort", "reduction",
]


def main() -> None:
    data = SuiteData.build([get_workload(name) for name in WORKLOADS])
    print(
        f"{len(WORKLOADS)} workloads, "
        f"{data.dynamic_instructions} dynamic warp instructions\n"
    )

    result = run_fig13(data, sweep=(1, 2, 3, 4, 5, 6, 7, 8))
    names = list(result.curves)
    print(f"{'entries':>8}" + "".join(f"{name:>16}" for name in names))
    for entries in range(1, 9):
        print(
            f"{entries:>8}"
            + "".join(
                f"{result.curves[name][entries]:>16.3f}"
                for name in names
            )
        )

    print("\nbest design point per organisation:")
    for name in names:
        entries, energy = result.best(name)
        print(
            f"  {name:<16} {entries} entries/thread -> "
            f"{100 * (1 - energy):.1f}% savings"
        )

    # Ablation: what do partial ranges and read operands buy?
    print("\nablation at 3 ORF entries (two-level SW):")
    for label, kwargs in [
        ("full allocator", {}),
        ("no partial ranges", {"enable_partial_ranges": False}),
        ("no read operands", {"enable_read_operands": False}),
        ("block-scoped (Sec 4.2 baseline)", {
            "enable_partial_ranges": False,
            "enable_read_operands": False,
            "allow_forward_branches": False,
        }),
    ]:
        scheme = Scheme(SchemeKind.SW_TWO_LEVEL, 3, **kwargs)
        energy = data.normalized_energy(scheme)
        print(f"  {label:<34} {100 * (1 - energy):5.1f}% savings")

    # Price the encoding overhead against the best design.
    _, best_energy = result.best("SW LRF Split")
    savings = 1 - best_energy
    print("\nencoding overhead (Section 6.5):")
    for bits in (1, 5):
        outcome = encoding_overhead(bits, savings)
        print(
            f"  {bits} extra bit(s): net chip-wide savings "
            f"{100 * outcome.chip_wide_net_savings:.2f}%"
        )


if __name__ == "__main__":
    main()

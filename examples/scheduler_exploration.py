#!/usr/bin/env python3
"""Two-level warp scheduler exploration (Sections 2.2 and 6).

Sweeps the active-warp count for latency-bound and compute-bound
kernels, reproducing the paper's claim that 8 active warps (of 32
resident) suffice for full throughput, and prints each kernel's strand
structure — the compiler-visible scheduling contract.

Run:  python examples/scheduler_exploration.py
"""

from repro.experiments import (
    expanded_warp_inputs,
    format_scheduler_study,
    run_scheduler_study,
)
from repro.sim import WarpExecutor, simulate_schedule
from repro.strands import partition_strands
from repro.workloads import get_workload

WORKLOADS = ["reduction", "matrixmul", "hotspot", "mandelbrot"]


def describe_strands(name: str) -> None:
    spec = get_workload(name)
    partition = partition_strands(spec.kernel)
    sizes = sorted(len(s) for s in partition.strands)
    print(
        f"  {name:<12} {spec.kernel.num_instructions:3d} instructions "
        f"in {partition.num_strands} strands "
        f"(sizes {sizes}), "
        f"{len(partition.wait_blocks)} wait blocks"
    )


def main() -> None:
    print("strand structure (the ORF/LRF allocation scope):")
    for name in WORKLOADS:
        describe_strands(name)

    print("\nIPC vs active warps (32 resident):")
    specs = [get_workload(name) for name in WORKLOADS]
    result = run_scheduler_study(specs, num_warps=32)
    print(format_scheduler_study(result))

    # Zoom in: how much does descheduling cost a load-bound kernel
    # compared to simply stalling with a huge active set?
    spec = get_workload("reduction")
    inputs = expanded_warp_inputs(spec, 32)
    traces = [
        list(WarpExecutor(spec.kernel, warp_input).run())
        for warp_input in inputs
    ]
    two_level = simulate_schedule(traces, 8)
    single_level = simulate_schedule(traces, 32)
    print(
        f"\nreduction: two-level (8 active) IPC {two_level.ipc:.3f} vs "
        f"single-level (32 active) IPC {single_level.ipc:.3f} -> "
        f"{100 * two_level.ipc / single_level.ipc:.1f}% of full "
        "performance with a quarter of the ORF/LRF storage"
    )


if __name__ == "__main__":
    main()

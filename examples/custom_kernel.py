#!/usr/bin/env python3
"""Bring your own kernel: write PTX-like assembly, run the compiler
pipeline on it, and inspect where every operand lives.

Demonstrates the full public API surface a compiler engineer would use:
the text front-end, strand partitioning, the energy-greedy allocator,
the annotated disassembly, dynamic verification, and per-level access
accounting.

Run:  python examples/custom_kernel.py
"""

from repro.alloc import AllocationConfig, allocate_kernel
from repro.energy import normalized_energy
from repro.ir import format_allocated_kernel, parse_kernel
from repro.ir.registers import gpr
from repro.levels import Level
from repro.sim import Scheme, SchemeKind, WarpInput, build_traces, \
    evaluate_traces
from repro.sim.verify import verify_trace

#: A small FIR-filter-style kernel: a batch of shared-memory loads, a
#: multiply-accumulate tree, and a data-dependent clamp hammock.
KERNEL_ASM = """
.kernel fir_clamp
.livein R0 R1 R2 R3        ; in ptr, out ptr, count, gain
entry:
    mov R5, 0              ; accumulator
loop:
    lds R20, [R0]
    iadd R28, R0, 4
    lds R21, [R28]
    iadd R28, R0, 8
    lds R22, [R28]
    imul R10, R20, R3      ; tap 0 * gain
    imad R11, R21, R3, R10 ; + tap 1 * gain
    imad R12, R22, R3, R11 ; + tap 2 * gain
    setp P0, R12, 255
    @P0 bra keep
clamp:
    mov R12, 255
keep:
    fadd R5, R5, R12
    stg [R1], R12
    iadd R0, R0, 4
    iadd R1, R1, 4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    stg [R1], R5
    exit
"""


def main() -> None:
    kernel = parse_kernel(KERNEL_ASM)
    kernel.validate()

    config = AllocationConfig.best_paper_config()
    result = allocate_kernel(kernel, config)

    print("=== annotated allocation (3-entry ORF, split LRF) ===")
    print(format_allocated_kernel(kernel))
    print()
    print("allocation summary:", result.summary())

    # Execute one warp and verify every annotated read dynamically.
    inputs = [WarpInput({gpr(0): 0, gpr(1): 4096, gpr(2): 6, gpr(3): 3})]
    traces = build_traces(kernel, inputs)
    for trace in traces.warp_traces:
        stats = verify_trace(kernel, result.partition, trace)
    print(
        f"\nverified {stats.reads_checked} dynamic reads "
        f"({stats.lrf_reads} LRF, {stats.orf_reads} ORF, "
        f"{stats.mrf_reads} MRF)"
    )

    scheme = Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
    evaluation = evaluate_traces(traces, scheme)
    counters = evaluation.counters
    print("\nper-level dynamic accesses (reads / writes):")
    for level in Level:
        print(
            f"  {level}: {counters.reads(level):6.0f} / "
            f"{counters.writes(level):6.0f}"
        )
    energy = normalized_energy(
        counters, evaluation.baseline, scheme.energy_model()
    )
    print(f"\nnormalized register file energy: {energy:.3f} "
          f"({100 * (1 - energy):.1f}% savings)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: evaluate one benchmark under every register file scheme.

Builds the synthetic MatrixMul workload, executes its warps once, and
re-accounts the traces under the paper's five organisations, printing
the normalized register file energy of each (Figure 13's operating
points).

Run:  python examples/quickstart.py
"""

from repro.energy import chip_power_savings, normalized_energy
from repro.sim import Scheme, SchemeKind, build_traces, evaluate_traces
from repro.workloads import get_workload


def main() -> None:
    spec = get_workload("matrixmul")
    print(f"workload: {spec.name} ({spec.description})")
    traces = build_traces(spec.kernel, spec.warp_inputs)
    print(f"executed {traces.dynamic_instructions} warp instructions\n")

    schemes = [
        ("single-level baseline", Scheme(SchemeKind.BASELINE)),
        ("HW RFC (prior work)", Scheme(SchemeKind.HW_TWO_LEVEL, 3)),
        ("HW LRF+RFC", Scheme(SchemeKind.HW_THREE_LEVEL, 6)),
        ("SW ORF", Scheme(SchemeKind.SW_TWO_LEVEL, 3)),
        (
            "SW LRF+ORF (split) — the paper's design",
            Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True),
        ),
    ]
    print(f"{'scheme':<42}{'energy':>8}{'savings':>9}")
    best = None
    for label, scheme in schemes:
        evaluation = evaluate_traces(traces, scheme)
        energy = normalized_energy(
            evaluation.counters, evaluation.baseline, scheme.energy_model()
        )
        print(f"{label:<42}{energy:>8.3f}{100 * (1 - energy):>8.1f}%")
        best = energy

    chip = chip_power_savings(1 - best)
    print(
        f"\nthe best design saves {100 * chip.register_file_savings:.1f}% "
        f"of register file energy = "
        f"{100 * chip.sm_dynamic_power_savings:.1f}% of SM dynamic power "
        f"= {100 * chip.chip_dynamic_power_savings:.1f}% chip-wide"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The full compiler pipeline: virtual registers to annotated binary.

Walks a kernel written with unlimited virtual registers through every
stage a real toolchain would run before the paper's allocator sees it:

1. intra-block instruction scheduling (Section 7);
2. fused loop unrolling + long-latency hoisting — the Section 6.4
   prescription for load-bound loops;
3. linear-scan lowering onto the 32-word MRF namespace (the paper's
   reference [21]);
4. strand partitioning and energy-greedy LRF/ORF allocation.

Then verifies the result dynamically and prices the energy.

Run:  python examples/compiler_pipeline.py
"""

from repro.alloc import AllocationConfig, allocate_kernel
from repro.compiler import (
    ScheduleStrategy,
    register_pressure,
    run_linear_scan,
    schedule_kernel,
)
from repro.compiler.unroll import unroll_loop_fused
from repro.energy import normalized_energy
from repro.ir import format_allocated_kernel, format_kernel, parse_kernel
from repro.ir.registers import gpr
from repro.sim import (
    Scheme,
    SchemeKind,
    WarpInput,
    build_traces,
    evaluate_traces,
)
from repro.sim.verify import verify_trace

#: A dot-product kernel written with virtual registers (R100+): the
#: front-end does not care about the MRF's 32-word limit.
VIRTUAL_ASM = """
.kernel dotprod
.livein R0 R1 R2 R3          ; a ptr, b-offset, count, out ptr
entry:
    mov R100, 0              ; accumulator
loop:
    ldg R101, [R0]
    iadd R102, R0, R1
    ldg R103, [R102]
    ffma R100, R101, R103, R100
    iadd R0, R0, 4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    stg [R3], R100
    exit
"""


def measure(kernel, label):
    scheme = Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
    allocation = allocate_kernel(kernel, scheme.allocation_config())
    inputs = [
        WarpInput({gpr(0): 0, gpr(1): 2048, gpr(2): 16, gpr(3): 9000})
    ]
    traces = build_traces(kernel, inputs)
    for trace in traces.warp_traces:
        verify_trace(kernel, allocation.partition, trace)
    evaluation = evaluate_traces(traces, scheme)
    energy = normalized_energy(
        evaluation.counters, evaluation.baseline, scheme.energy_model()
    )
    print(
        f"  {label:<28} {100 * (1 - energy):5.1f}% savings "
        f"({allocation.partition.num_strands} strands, verified)"
    )
    return energy


def main() -> None:
    virtual = parse_kernel(VIRTUAL_ASM)
    print(
        f"input: virtual-register kernel, register pressure "
        f"{register_pressure(virtual)} words"
    )

    # Stage 1+2: fused unroll x4, then hoist the loads.
    unrolled = unroll_loop_fused(virtual, "loop", 4)
    hoisted = schedule_kernel(unrolled, ScheduleStrategy.HOIST_LONG_LATENCY)

    # Stage 3: linear scan onto the MRF namespace.
    lowered = run_linear_scan(hoisted)
    print(
        f"after unroll x4 + hoist + linear scan: "
        f"{lowered.words_used} MRF words, "
        f"{lowered.kernel.num_instructions} instructions\n"
    )
    print(format_kernel(lowered.kernel))
    print()

    print("energy at each pipeline stage (3-entry ORF, split LRF):")
    baseline_lowered = run_linear_scan(virtual).kernel
    measure(baseline_lowered, "original loop")
    measure(lowered.kernel, "unrolled + hoisted")

    # Stage 4: show the final annotated binary.
    allocate_kernel(
        lowered.kernel, AllocationConfig.best_paper_config()
    )
    print("\nfinal annotated binary:")
    print(format_allocated_kernel(lowered.kernel))


if __name__ == "__main__":
    main()

"""Setup shim.

The environment has no `wheel` package, so PEP 660 editable installs
(`pip install -e .`) cannot build; `python setup.py develop` (or
`pip install -e . --config-settings editable_mode=compat`) works with
plain setuptools.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Unit tests for liveness analysis."""

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.liveness import LivenessAnalysis
from repro.ir import parse_kernel
from repro.ir.registers import gpr


def _liveness(kernel):
    return LivenessAnalysis(kernel, ControlFlowGraph(kernel))


def _ref(kernel, position):
    for ref, _ in kernel.instructions():
        if ref.position == position:
            return ref
    raise AssertionError(f"no instruction at {position}")


class TestStraightLine:
    def test_dead_after_last_use(self, straight_kernel):
        live = _liveness(straight_kernel)
        # R6 is last read by `iadd R7, R6, R3` at position 5.
        assert gpr(6) in live.live_before(_ref(straight_kernel, 5))
        assert gpr(6) not in live.live_after(_ref(straight_kernel, 5))

    def test_live_in_of_entry(self, straight_kernel):
        live = _liveness(straight_kernel)
        assert gpr(0) in live.live_in[0]
        assert gpr(1) in live.live_in[0]

    def test_def_not_live_before(self, straight_kernel):
        live = _liveness(straight_kernel)
        # R3 is defined at position 0.
        assert gpr(3) not in live.live_in[0]

    def test_nothing_live_after_exit(self, straight_kernel):
        live = _liveness(straight_kernel)
        last = straight_kernel.num_instructions - 1
        assert live.live_after(_ref(straight_kernel, last)) == frozenset()


class TestLoops:
    def test_loop_carried_values_live_at_header(self, loop_kernel):
        live = _liveness(loop_kernel)
        loop = loop_kernel.block_index("loop")
        # Accumulator R5, pointers R0/R1, counter R2 all loop-carried.
        for reg in (gpr(5), gpr(0), gpr(1), gpr(2)):
            assert reg in live.live_in[loop]

    def test_temp_not_live_across_iterations(self, loop_kernel):
        live = _liveness(loop_kernel)
        loop = loop_kernel.block_index("loop")
        # R6/R7 are iteration-local temporaries.
        assert gpr(6) not in live.live_in[loop]
        assert gpr(7) not in live.live_in[loop]


class TestBranches:
    def test_value_live_through_both_arms(self, hammock_kernel):
        live = _liveness(hammock_kernel)
        big = hammock_kernel.block_index("big")
        small = hammock_kernel.block_index("small")
        assert gpr(3) in live.live_in[big]
        assert gpr(3) in live.live_in[small]

    def test_merged_value_live_at_merge(self, hammock_kernel):
        live = _liveness(hammock_kernel)
        merge = hammock_kernel.block_index("merge")
        assert gpr(6) in live.live_in[merge]
        assert gpr(3) not in live.live_in[merge]


class TestGuardedDefs:
    def test_guarded_write_does_not_kill(self):
        kernel = parse_kernel(
            """
            .kernel g
            .livein R0 R1
            entry:
                setp P0, R0, 4
                @P0 iadd R1, R0, 1
                stg [R0], R1
                exit
            """
        )
        live = _liveness(kernel)
        # R1 must be live into the kernel: the guarded write may not
        # execute, in which case the store reads the incoming R1.
        assert gpr(1) in live.live_in[0]

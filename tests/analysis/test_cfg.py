"""Unit tests for CFG utilities and dominance."""

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.dominance import DominatorTree
from repro.ir import parse_kernel


def _cfg(kernel):
    return ControlFlowGraph(kernel)


class TestControlFlowGraph:
    def test_straight_line(self, straight_kernel):
        cfg = _cfg(straight_kernel)
        assert cfg.num_blocks == 1
        assert cfg.reverse_postorder == (0,)
        assert cfg.backward_edges() == set()

    def test_loop_edges(self, loop_kernel):
        cfg = _cfg(loop_kernel)
        loop = loop_kernel.block_index("loop")
        assert (loop, loop) in cfg.backward_edges()

    def test_rpo_starts_at_entry(self, hammock_kernel):
        cfg = _cfg(hammock_kernel)
        assert cfg.reverse_postorder[0] == 0

    def test_rpo_preds_before_succs_in_dag(self, hammock_kernel):
        cfg = _cfg(hammock_kernel)
        order = {b: i for i, b in enumerate(cfg.reverse_postorder)}
        for block in cfg.reverse_postorder:
            for succ in cfg.successors[block]:
                if (block, succ) not in cfg.backward_edges():
                    assert order[block] < order[succ]

    def test_merge_blocks(self, hammock_kernel):
        cfg = _cfg(hammock_kernel)
        merge = hammock_kernel.block_index("merge")
        assert merge in cfg.merge_blocks()

    def test_unreachable_block(self):
        kernel = parse_kernel(
            ".kernel k\nentry:\n exit\ndead:\n exit\n"
        )
        cfg = _cfg(kernel)
        assert not cfg.is_reachable(kernel.block_index("dead"))
        assert cfg.is_reachable(0)

    def test_predecessors_symmetry(self, loop_kernel):
        cfg = _cfg(loop_kernel)
        for block in range(cfg.num_blocks):
            for succ in cfg.successors[block]:
                assert block in cfg.predecessors[succ]


class TestDominance:
    def test_entry_dominates_all(self, hammock_kernel):
        cfg = _cfg(hammock_kernel)
        dom = DominatorTree(cfg)
        for block in cfg.reverse_postorder:
            assert dom.dominates(0, block)

    def test_arms_do_not_dominate_merge(self, hammock_kernel):
        cfg = _cfg(hammock_kernel)
        dom = DominatorTree(cfg)
        big = hammock_kernel.block_index("big")
        small = hammock_kernel.block_index("small")
        merge = hammock_kernel.block_index("merge")
        assert not dom.dominates(big, merge)
        assert not dom.dominates(small, merge)
        assert dom.idom[merge] == hammock_kernel.block_index("entry")

    def test_self_domination(self, loop_kernel):
        cfg = _cfg(loop_kernel)
        dom = DominatorTree(cfg)
        for block in cfg.reverse_postorder:
            assert dom.dominates(block, block)

    def test_loop_header_dominates_body(self, loop_kernel):
        cfg = _cfg(loop_kernel)
        dom = DominatorTree(cfg)
        loop = loop_kernel.block_index("loop")
        done = loop_kernel.block_index("done")
        assert dom.dominates(loop, done)

    def test_dominators_of(self, hammock_kernel):
        cfg = _cfg(hammock_kernel)
        dom = DominatorTree(cfg)
        merge = hammock_kernel.block_index("merge")
        assert dom.dominators_of(merge) == {
            hammock_kernel.block_index("entry"),
            merge,
        }

    def test_unreachable_not_dominated(self):
        kernel = parse_kernel(
            ".kernel k\nentry:\n exit\ndead:\n exit\n"
        )
        cfg = _cfg(kernel)
        dom = DominatorTree(cfg)
        assert not dom.dominates(0, kernel.block_index("dead"))

"""Unit tests for post-dominator analysis (reconvergence points)."""

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.postdom import PostDominatorTree
from repro.ir import parse_kernel


def _pdt(kernel):
    return PostDominatorTree(ControlFlowGraph(kernel))


class TestHammock:
    def test_branch_reconverges_at_merge(self, hammock_kernel):
        pdt = _pdt(hammock_kernel)
        entry = hammock_kernel.block_index("entry")
        merge = hammock_kernel.block_index("merge")
        assert pdt.immediate_post_dominator(entry) == merge

    def test_arms_reconverge_at_merge(self, hammock_kernel):
        pdt = _pdt(hammock_kernel)
        merge = hammock_kernel.block_index("merge")
        for label in ("big", "small"):
            block = hammock_kernel.block_index(label)
            assert pdt.immediate_post_dominator(block) == merge

    def test_exit_block_has_no_ipdom(self, hammock_kernel):
        pdt = _pdt(hammock_kernel)
        merge = hammock_kernel.block_index("merge")
        assert pdt.immediate_post_dominator(merge) is None

    def test_post_dominates(self, hammock_kernel):
        pdt = _pdt(hammock_kernel)
        entry = hammock_kernel.block_index("entry")
        merge = hammock_kernel.block_index("merge")
        big = hammock_kernel.block_index("big")
        assert pdt.post_dominates(merge, entry)
        assert pdt.post_dominates(merge, big)
        assert not pdt.post_dominates(big, entry)


class TestLoops:
    def test_latch_reconverges_at_exit(self, loop_kernel):
        pdt = _pdt(loop_kernel)
        loop = loop_kernel.block_index("loop")
        done = loop_kernel.block_index("done")
        assert pdt.immediate_post_dominator(loop) == done

    def test_entry_postdominated_by_loop(self, loop_kernel):
        pdt = _pdt(loop_kernel)
        entry = loop_kernel.block_index("entry")
        loop = loop_kernel.block_index("loop")
        assert pdt.post_dominates(loop, entry)


class TestNested:
    def test_nested_hammocks(self):
        kernel = parse_kernel(
            """
            .kernel nest
            .livein R0 R1
            entry:
                setp P0, R0, 10
                @P0 bra outer_else
            outer_then:
                setp P1, R0, 5
                @P1 bra inner_else
            inner_then:
                iadd R2, R0, 1
                bra inner_merge
            inner_else:
                iadd R2, R0, 2
            inner_merge:
                iadd R3, R2, 1
                bra outer_merge
            outer_else:
                iadd R3, R0, 3
            outer_merge:
                stg [R1], R3
                exit
            """
        )
        pdt = _pdt(kernel)
        assert pdt.immediate_post_dominator(
            kernel.block_index("outer_then")
        ) == kernel.block_index("inner_merge")
        assert pdt.immediate_post_dominator(
            kernel.block_index("entry")
        ) == kernel.block_index("outer_merge")

    def test_straight_line_chain(self, straight_kernel):
        pdt = _pdt(straight_kernel)
        assert pdt.immediate_post_dominator(0) is None

"""Unit tests for reaching definitions and def-use chains."""

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.reaching import ReachingDefinitions
from repro.ir import parse_kernel
from repro.ir.registers import gpr


def _reaching(kernel):
    return ReachingDefinitions(kernel, ControlFlowGraph(kernel))


def _ref(kernel, position):
    for ref, _ in kernel.instructions():
        if ref.position == position:
            return ref
    raise AssertionError(f"no instruction at {position}")


class TestStraightLine:
    def test_single_def_reaches_read(self, straight_kernel):
        reaching = _reaching(straight_kernel)
        # position 2: iadd R5, R4, R2 — R4 defined at position 1.
        defs = reaching.reaching_defs(_ref(straight_kernel, 2), 0)
        assert len(defs) == 1
        definition = reaching.definition(next(iter(defs)))
        assert definition.reg == gpr(4)
        assert definition.ref.position == 1

    def test_external_definition_for_live_in(self, straight_kernel):
        reaching = _reaching(straight_kernel)
        defs = reaching.reaching_defs(_ref(straight_kernel, 0), 0)
        assert len(defs) == 1
        assert reaching.definition(next(iter(defs))).is_external

    def test_long_latency_def_flagged(self, straight_kernel):
        reaching = _reaching(straight_kernel)
        # position 5: iadd R7, R6, R3 — R3 from the ldg at position 0.
        defs = reaching.reaching_defs(_ref(straight_kernel, 5), 1)
        definition = reaching.definition(next(iter(defs)))
        assert definition.is_long_latency
        assert definition.mrf_pinned

    def test_uses_of(self, straight_kernel):
        reaching = _reaching(straight_kernel)
        defs = reaching.reaching_defs(_ref(straight_kernel, 3), 0)
        (def_id,) = defs
        uses = reaching.uses_of(def_id)
        assert {use.ref.position for use in uses} == {3}


class TestKills:
    def test_redefinition_kills(self):
        kernel = parse_kernel(
            """
            .kernel k
            .livein R0
            entry:
                iadd R1, R0, 1
                iadd R1, R0, 2
                stg [R0], R1
                exit
            """
        )
        reaching = _reaching(kernel)
        defs = reaching.reaching_defs(_ref(kernel, 2), 1)
        assert len(defs) == 1
        assert reaching.definition(next(iter(defs))).ref.position == 1

    def test_guarded_def_does_not_kill(self):
        kernel = parse_kernel(
            """
            .kernel k
            .livein R0 R1
            entry:
                setp P0, R0, 4
                @P0 iadd R1, R0, 1
                stg [R0], R1
                exit
            """
        )
        reaching = _reaching(kernel)
        defs = reaching.reaching_defs(_ref(kernel, 2), 1)
        kinds = {
            (
                reaching.definition(d).is_external,
                reaching.definition(d).is_guarded,
            )
            for d in defs
        }
        assert kinds == {(True, False), (False, True)}


class TestControlFlow:
    def test_hammock_merge_sees_both_defs(self, hammock_kernel):
        reaching = _reaching(hammock_kernel)
        merge_first = hammock_kernel.block_index("merge")
        position = sum(
            len(hammock_kernel.blocks[i].instructions)
            for i in range(merge_first)
        )
        defs = reaching.reaching_defs(_ref(hammock_kernel, position), 0)
        positions = {
            reaching.definition(d).ref.position for d in defs
        }
        assert len(positions) == 2

    def test_loop_carried_def_reaches_header(self, loop_kernel):
        reaching = _reaching(loop_kernel)
        # ffma R5, R3, R2, R5 — R5 reaches from entry mov and from the
        # ffma itself around the backward edge.
        ffma_position = 2
        defs = reaching.reaching_defs(_ref(loop_kernel, ffma_position), 2)
        assert len(defs) == 2

    def test_def_at(self, loop_kernel):
        reaching = _reaching(loop_kernel)
        definition = reaching.def_at(_ref(loop_kernel, 0))
        assert definition is not None and definition.reg == gpr(5)
        # stores define nothing
        for ref, inst in loop_kernel.instructions():
            if inst.gpr_write() is None:
                assert reaching.def_at(ref) is None

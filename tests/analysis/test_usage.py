"""Unit tests for dynamic value-usage statistics (Figure 2)."""

from repro.analysis.usage import UsageHistogram, ValueUsageTracker
from repro.ir.instructions import Instruction, Opcode
from repro.ir.registers import gpr


def _add(dst, a, b):
    return Instruction(Opcode.IADD, gpr(dst), (gpr(a), gpr(b)))


def _store(addr, value):
    return Instruction(Opcode.STG, None, (gpr(addr), gpr(value)))


class TestTracker:
    def test_read_once_lifetime_one(self):
        tracker = ValueUsageTracker()
        tracker.observe(_add(1, 0, 0))   # def R1 (R0 untracked: no def)
        tracker.observe(_add(2, 1, 1))   # read R1 twice, def R2
        tracker.finish()
        record = next(r for r in tracker.records if r.num_reads == 2)
        assert record.lifetime == 1

    def test_never_read(self):
        tracker = ValueUsageTracker()
        tracker.observe(_add(1, 0, 0))
        tracker.finish()
        assert tracker.records[0].num_reads == 0
        assert tracker.records[0].lifetime == 0

    def test_overwrite_closes_record(self):
        tracker = ValueUsageTracker()
        tracker.observe(_add(1, 0, 0))
        tracker.observe(_add(1, 0, 0))   # overwrite R1
        assert len(tracker.records) == 1

    def test_lifetime_measured_to_last_read(self):
        tracker = ValueUsageTracker()
        tracker.observe(_add(1, 0, 0))   # clock 1: def R1
        tracker.observe(_add(2, 0, 0))   # clock 2
        tracker.observe(_add(3, 0, 0))   # clock 3
        tracker.observe(_add(4, 1, 0))   # clock 4: read R1
        tracker.finish()
        record = next(r for r in tracker.records if r.num_reads == 1)
        assert record.lifetime == 3

    def test_shared_consumption_flagged(self):
        tracker = ValueUsageTracker()
        tracker.observe(_add(1, 0, 0))
        tracker.observe(_store(0, 1))   # STG is a MEM (shared) consumer
        tracker.finish()
        record = next(r for r in tracker.records if r.num_reads == 1)
        assert record.read_by_shared

    def test_guard_failed_write_not_tracked(self):
        tracker = ValueUsageTracker()
        tracker.observe(_add(1, 0, 0), guard_passed=False)
        tracker.finish()
        assert tracker.records == []


class TestHistogram:
    def _histogram(self, reads_list):
        histogram = UsageHistogram()
        from repro.analysis.usage import ValueRecord

        for reads, lifetime in reads_list:
            histogram.add_record(ValueRecord(reads, lifetime, False))
        return histogram

    def test_read_buckets(self):
        histogram = self._histogram(
            [(0, 0), (1, 1), (1, 2), (2, 3), (5, 9)]
        )
        assert histogram.read_counts == {"0": 1, "1": 2, "2": 1, ">2": 1}

    def test_lifetime_buckets_only_for_read_once(self):
        histogram = self._histogram(
            [(1, 1), (1, 2), (1, 3), (1, 9), (2, 1)]
        )
        assert histogram.lifetimes == {"1": 1, "2": 1, "3": 1, ">3": 1}
        assert histogram.read_once_total == 4

    def test_fraction_read_at_most_once(self):
        histogram = self._histogram([(0, 0), (1, 1), (2, 1), (3, 1)])
        assert histogram.fraction_read_at_most_once() == 0.5

    def test_fraction_read_once_within(self):
        histogram = self._histogram([(1, 1), (1, 2), (1, 9), (2, 1)])
        assert histogram.fraction_read_once_within(3) == 0.5
        assert histogram.fraction_read_once_within(1) == 0.25

    def test_merge(self):
        a = self._histogram([(1, 1)])
        b = self._histogram([(2, 1), (0, 0)])
        a.merge(b)
        assert a.total_values == 3
        assert a.read_counts["2"] == 1

    def test_empty_histogram_fractions(self):
        histogram = UsageHistogram()
        assert histogram.fraction_read_at_most_once() == 0.0
        assert histogram.fraction_read_once_within(3) == 0.0
        assert histogram.fraction_read_by_shared() == 0.0

    def test_fractions_sum_to_one(self):
        histogram = self._histogram([(0, 0), (1, 2), (2, 4), (7, 9)])
        assert abs(sum(histogram.read_count_fractions().values()) - 1) < 1e-9

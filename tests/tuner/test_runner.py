"""run_tune end-to-end: determinism, memo reuse, payload invariants."""

import json

import pytest

from repro.alloc.allocator import AllocationConfig
from repro.engine import ExperimentEngine
from repro.sim.runner import build_traces
from repro.sim.schemes import scheme_for_config
from repro.tuner import run_tune
from repro.tuner.objective import candidate_metrics, dominates
from repro.tuner.space import default_space, space_from_dict
from repro.workloads.generators import generate_workload

#: A branchy (divergent) fuzz kernel: hammocks and loops, so scheme
#: choices actually move the objective.
FUZZ_SEED = 911


def _traces(engine):
    spec = generate_workload(FUZZ_SEED)
    return engine.build_traces(spec.kernel, spec.warp_inputs)


def _stable(payload):
    """The deterministic portion of the payload: everything except
    wall time and the fresh-vs-cached attribution (a warm engine
    legitimately serves the identical search from its memo)."""
    payload = dict(payload)
    payload.pop("wall_time_s")
    payload["evaluations"] = {
        key: value
        for key, value in payload["evaluations"].items()
        if key not in ("fresh", "cache_hits")
    }
    return json.dumps(payload, sort_keys=True)


def test_same_seed_is_byte_identical():
    results = []
    for _ in range(2):
        engine = ExperimentEngine()
        results.append(
            _stable(
                run_tune(
                    _traces(engine),
                    strategy="evolutionary",
                    budget=40,
                    seed=7,
                    engine=engine,
                )
            )
        )
    assert results[0] == results[1]


def test_second_tune_reuses_every_evaluation():
    engine = ExperimentEngine()
    traces = _traces(engine)
    first = run_tune(traces, budget=30, seed=1, engine=engine)
    assert first["evaluations"]["fresh"] == first["evaluations"]["distinct"]
    assert first["evaluations"]["cache_hits"] == 0

    second = run_tune(traces, budget=30, seed=1, engine=engine)
    assert second["evaluations"]["fresh"] == 0
    assert (
        second["evaluations"]["cache_hits"]
        == second["evaluations"]["distinct"]
    )
    assert _stable(first) == _stable(second)


def test_best_never_regresses_below_baseline():
    engine = ExperimentEngine()
    traces = _traces(engine)
    for strategy in ("exhaustive", "hillclimb", "evolutionary"):
        payload = run_tune(
            traces, strategy=strategy, budget=25, seed=3, engine=engine
        )
        assert (
            payload["best"]["objective"]
            <= payload["baseline"]["objective"]
        )
        assert payload["baseline"]["in_space"] is True
        assert payload["improvement_over_baseline"] >= 0.0


def test_payload_schema_and_frontier_invariants():
    engine = ExperimentEngine()
    payload = run_tune(
        _traces(engine),
        strategy="evolutionary",
        budget=40,
        seed=7,
        engine=engine,
    )
    for key in (
        "schema",
        "kernel",
        "strategy",
        "objective",
        "seed",
        "budget",
        "space",
        "evaluations",
        "baseline",
        "best",
        "frontier",
        "improvements",
        "trace",
        "wall_time_s",
    ):
        assert key in payload
    assert payload["kernel"] == f"fuzz_{FUZZ_SEED}"
    assert payload["evaluations"]["distinct"] == 40

    frontier = payload["frontier"]
    assert frontier, "frontier must not be empty"
    # Non-domination, pairwise.
    for a in frontier:
        for b in frontier:
            if a is not b:
                assert not dominates(a["metrics"], b["metrics"])
    # The best config is on the frontier.
    assert any(
        point["config"] == payload["best"]["config"] for point in frontier
    )
    # The improvement chain ends at the best objective.
    assert payload["improvements"][-1]["objective"] == pytest.approx(
        payload["best"]["objective"]
    )
    # Best matches an independent re-evaluation of its config.
    config = AllocationConfig.from_dict(payload["best"]["config"])
    evaluation = engine.evaluate(_traces(engine), scheme_for_config(config))
    metrics = candidate_metrics(evaluation, config)
    assert payload["best"]["metrics"]["energy_per_instruction_pj"] == (
        pytest.approx(metrics["energy_per_instruction_pj"])
    )


def test_mrf_objective_and_restricted_space():
    engine = ExperimentEngine()
    space = space_from_dict(
        {"parameters": {"orf_entries": [1, 3], "use_lrf": [True]}}
    )
    payload = run_tune(
        _traces(engine),
        space=space,
        strategy="exhaustive",
        objective="mrf",
        budget=200,
        seed=0,
        engine=engine,
    )
    # Exhaustive within budget: everything valid was explored.
    assert payload["evaluations"]["distinct"] == space.valid_size()
    # Default config has use_lrf False: out of this restricted space,
    # but still reported as the reference point.
    assert payload["baseline"]["in_space"] is False
    for point in payload["frontier"]:
        assert point["config"]["use_lrf"] is True


def test_run_tune_rejects_bad_inputs():
    engine = ExperimentEngine()
    traces = _traces(engine)
    with pytest.raises(ValueError, match="unknown strategy"):
        run_tune(traces, strategy="annealing", engine=engine)
    with pytest.raises(ValueError, match="unknown objective"):
        run_tune(traces, objective="latency", engine=engine)
    with pytest.raises(ValueError, match="budget"):
        run_tune(traces, budget=0, engine=engine)


def test_tuner_observability_hooks():
    from repro.obs.tracer import TRACER

    engine = ExperimentEngine()
    TRACER.configure(enabled=True, jsonl_path=None)
    try:
        run_tune(_traces(engine), budget=10, seed=2, engine=engine)
        names = [span.name for span in TRACER.drain()]
    finally:
        TRACER.enabled = False
    assert "tuner.search" in names
    assert "tuner.candidate" in names
    histograms = engine.metrics.to_dict()["histograms"]
    assert any(
        name.startswith("tuner_batch_candidates") for name in histograms
    )

"""ParameterSpace: membership, enumeration, sampling, wire form."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.allocator import AllocationConfig
from repro.tuner.space import (
    DEFAULT_CONSTRAINTS,
    Parameter,
    ParameterSpace,
    default_space,
    space_from_dict,
)


def test_default_space_shape():
    space = default_space()
    assert space.names == (
        "orf_entries",
        "use_lrf",
        "split_lrf",
        "lrf_banks",
        "enable_partial_ranges",
        "enable_read_operands",
        "allow_forward_branches",
        "assume_persistent_strands",
    )
    # The ideal axis is pinned off unless opened explicitly.
    assert space._by_name["assume_persistent_strands"].values == (False,)
    assert default_space(include_ideal=True)._by_name[
        "assume_persistent_strands"
    ].values == (False, True)


def test_default_space_constraints_prune_meaningless_combos():
    space = default_space()
    for assignment in space.assignments():
        if assignment["split_lrf"]:
            assert assignment["use_lrf"]
        else:
            assert assignment["lrf_banks"] == 3
    assert space.valid_size() < space.size


def test_default_baseline_config_is_in_space():
    space = default_space()
    assert space.is_valid(AllocationConfig().to_dict())


def test_violated_constraint_names_the_problem():
    space = default_space()
    base = AllocationConfig().to_dict()
    assert space.violated_constraint(base) is None

    bad = dict(base, split_lrf=True, use_lrf=False)
    assert space.violated_constraint(bad) == "split_lrf requires use_lrf"

    missing = dict(base)
    del missing["orf_entries"]
    assert "missing orf_entries" in space.violated_constraint(missing)

    extra = dict(base, bogus=1)
    assert "unknown bogus" in space.violated_constraint(extra)

    out_of_range = dict(base, orf_entries=99)
    assert "orf_entries=99" in space.violated_constraint(out_of_range)

    with pytest.raises(ValueError, match="invalid assignment"):
        space.validate(bad)


def test_parameter_rejects_empty_and_duplicates():
    with pytest.raises(ValueError, match="no values"):
        Parameter("orf_entries", ())
    with pytest.raises(ValueError, match="duplicate"):
        Parameter("orf_entries", (1, 1))
    with pytest.raises(ValueError, match="not AllocationConfig fields"):
        ParameterSpace((Parameter("bogus", (1,)),))


def test_config_materialisation_round_trips():
    space = default_space()
    for assignment in list(space.assignments())[:25]:
        config = space.config(assignment)
        assert config.to_dict() == assignment


def test_sampling_helpers_stay_in_space():
    space = default_space(include_ideal=True)
    rng = random.Random(11)
    for _ in range(50):
        a = space.random_assignment(rng)
        assert space.is_valid(a)
        m = space.mutate(a, rng)
        assert space.is_valid(m)
        assert m != a
        b = space.random_assignment(rng)
        child = space.crossover(a, b, rng)
        assert space.is_valid(child)
        for neighbor in space.neighbors(a):
            assert space.is_valid(neighbor)
            assert neighbor != a


def test_space_from_dict_restricts_only():
    space = space_from_dict(
        {"parameters": {"orf_entries": [1, 2], "use_lrf": [True]}}
    )
    assert space._by_name["orf_entries"].values == (1, 2)
    assert space._by_name["use_lrf"].values == (True,)
    # Untouched axes keep full defaults; ideal axis stays pinned off.
    assert space._by_name["enable_read_operands"].values == (False, True)
    assert space._by_name["assume_persistent_strands"].values == (False,)

    opened = space_from_dict(
        {"parameters": {"assume_persistent_strands": [False, True]}}
    )
    assert opened._by_name["assume_persistent_strands"].values == (
        False,
        True,
    )

    with pytest.raises(ValueError, match="unknown space parameter"):
        space_from_dict({"parameters": {"bogus": [1]}})
    with pytest.raises(ValueError, match="outside the supported axis"):
        space_from_dict({"parameters": {"orf_entries": [0]}})
    with pytest.raises(ValueError, match="non-empty list"):
        space_from_dict({"parameters": {"orf_entries": []}})
    with pytest.raises(ValueError, match="no valid assignments"):
        space_from_dict(
            {
                "parameters": {
                    "split_lrf": [True],
                    "use_lrf": [False],
                }
            }
        )
    with pytest.raises(ValueError, match="unknown space field"):
        space_from_dict({"parameters": {}, "bogus": 1})


def test_space_wire_form_round_trips():
    space = space_from_dict({"parameters": {"orf_entries": [2, 4]}})
    again = space_from_dict(
        {"parameters": space.to_dict()["parameters"]}
    )
    assert again.to_dict() == space.to_dict()
    assert [c.name for c in space.constraints] == [
        c.name for c in DEFAULT_CONSTRAINTS
    ]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sampled_assignments_always_materialise(seed):
    """Any sampled assignment materialises to a valid AllocationConfig."""
    space = default_space(include_ideal=True)
    rng = random.Random(seed)
    a = space.random_assignment(rng)
    config = space.config(a)
    assert isinstance(config, AllocationConfig)
    child = space.crossover(a, space.mutate(a, rng), rng)
    assert space.config(child).to_dict() == child

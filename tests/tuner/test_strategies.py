"""Strategies against a fake oracle: budget, determinism, in-space.

The fake oracle implements the contract documented in
:mod:`repro.tuner.strategies` with a synthetic objective (a pure
function of the assignment), so strategy behaviour is tested without
the engine.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.tuner.space import default_space, space_from_dict
from repro.tuner.strategies import (
    STRATEGY_NAMES,
    make_strategy,
)


class FakeOutcome:
    def __init__(self, assignment, key, objective):
        self.assignment = assignment
        self.key = key
        self.objective = objective


class FakeOracle:
    """In-memory oracle honouring the budget/memo/truncation contract."""

    def __init__(self, space, budget):
        self.space = space
        self.budget = budget
        self.memo = {}
        self.eval_log = []
        self.notes = []

    @property
    def remaining(self):
        return max(0, self.budget - len(self.memo))

    @property
    def exhausted(self):
        return self.remaining <= 0

    def note(self, event, **detail):
        self.notes.append((event, detail))

    def _objective(self, assignment):
        # Deterministic, non-trivial landscape: prefer high orf_entries
        # with the LRF on, never consult wall time or global random.
        return (
            -assignment["orf_entries"]
            - (2.0 if assignment["use_lrf"] else 0.0)
            + (0.5 if assignment["enable_partial_ranges"] else 0.0)
        )

    def evaluate(self, assignments):
        served = []
        fresh = []
        for assignment in assignments:
            key = self.space.key(assignment)
            hit = self.memo.get(key)
            if hit is not None:
                served.append(hit)
                continue
            if any(f.key == key for f in fresh):
                continue
            if len(fresh) >= self.remaining:
                continue
            # The hypothesis property: strategies only ever request
            # in-space, constraint-satisfying assignments.
            self.space.validate(assignment)
            outcome = FakeOutcome(
                dict(assignment), key, self._objective(assignment)
            )
            fresh.append(outcome)
        for outcome in fresh:
            self.memo[outcome.key] = outcome
            self.eval_log.append(outcome.key)
        served.extend(fresh)
        return served


@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_budget_is_respected(name):
    space = default_space()
    oracle = FakeOracle(space, budget=17)
    make_strategy(name).search(space, oracle, random.Random(5))
    assert len(oracle.memo) == 17


@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_same_seed_replays_identically(name):
    space = default_space()
    logs = []
    for _ in range(2):
        oracle = FakeOracle(space, budget=25)
        make_strategy(name).search(space, oracle, random.Random(42))
        logs.append((oracle.eval_log, oracle.notes))
    assert logs[0] == logs[1]


def test_different_seeds_diverge():
    space = default_space()
    logs = []
    for seed in (1, 2):
        oracle = FakeOracle(space, budget=25)
        make_strategy("evolutionary").search(
            space, oracle, random.Random(seed)
        )
        logs.append(oracle.eval_log)
    assert logs[0] != logs[1]


def test_exhaustive_covers_tiny_space_exactly():
    space = space_from_dict(
        {
            "parameters": {
                "orf_entries": [1, 2],
                "use_lrf": [False],
                "split_lrf": [False],
                "lrf_banks": [3],
                "enable_partial_ranges": [True],
                "enable_read_operands": [True],
                "allow_forward_branches": [True],
            }
        }
    )
    oracle = FakeOracle(space, budget=100)
    make_strategy("exhaustive").search(space, oracle, random.Random(0))
    assert sorted(oracle.eval_log) == sorted(
        space.key(a) for a in space.assignments()
    )


def test_evolutionary_handles_space_smaller_than_population():
    space = space_from_dict(
        {
            "parameters": {
                "orf_entries": [1, 2, 3],
                "use_lrf": [False],
                "split_lrf": [False],
                "lrf_banks": [3],
                "enable_partial_ranges": [True],
                "enable_read_operands": [True],
                "allow_forward_branches": [True],
            }
        }
    )
    oracle = FakeOracle(space, budget=50)
    make_strategy("evolutionary", population=16).search(
        space, oracle, random.Random(3)
    )
    assert 0 < len(oracle.memo) <= 3


def test_hillclimb_notes_tell_the_search_story():
    space = default_space()
    oracle = FakeOracle(space, budget=40)
    make_strategy("hillclimb").search(space, oracle, random.Random(9))
    events = [event for event, _ in oracle.notes]
    assert "restart" in events
    assert "move" in events or "local_optimum" in events


def test_make_strategy_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown strategy"):
        make_strategy("annealing")


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(STRATEGY_NAMES),
    seed=st.integers(min_value=0, max_value=10_000),
    budget=st.integers(min_value=1, max_value=40),
)
def test_strategies_only_emit_valid_assignments(name, seed, budget):
    """Property: for any (strategy, seed, budget), every assignment a
    strategy asks the oracle to evaluate is in-space and satisfies the
    constraints (FakeOracle.evaluate validates each one)."""
    space = default_space(include_ideal=True)
    oracle = FakeOracle(space, budget=budget)
    make_strategy(name).search(space, oracle, random.Random(seed))
    assert len(oracle.memo) <= budget
    assert len(oracle.memo) > 0

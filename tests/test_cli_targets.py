"""The shared trace/explain/tune target resolver and the tune command."""

import json

import pytest

from repro.cli import _TargetError, _resolve_target, main

TINY_KERNEL = (
    ".kernel tiny\n"
    ".livein R0 R1\n"
    "entry:\n"
    "    iadd R2, R0, R1\n"
    "    stg [R0], R2\n"
    "    exit\n"
)


class TestResolver:
    def test_benchmark_name(self):
        spec = _resolve_target("vectoradd")
        assert spec.name == "vectoradd"
        assert spec.warp_inputs

    def test_fuzz_seed(self):
        spec = _resolve_target("fuzz:320", num_warps=1)
        assert spec.name == "fuzz_320"
        assert len(spec.warp_inputs) == 1
        assert spec.suite == "fuzz"

    def test_file(self, tmp_path):
        path = tmp_path / "tiny.asm"
        path.write_text(TINY_KERNEL)
        spec = _resolve_target(str(path))
        assert spec.name == "tiny"
        assert spec.suite == "file"
        assert spec.warp_inputs

    def test_bad_fuzz_seed(self):
        with pytest.raises(_TargetError, match="fuzz:SEED"):
            _resolve_target("fuzz:abc")

    def test_missing_file(self, tmp_path):
        with pytest.raises(_TargetError):
            _resolve_target(str(tmp_path / "absent.asm"))

    def test_unparsable_file(self, tmp_path):
        path = tmp_path / "bad.asm"
        path.write_text("not assembly\n")
        with pytest.raises(_TargetError, match="parse error"):
            _resolve_target(str(path))


class TestTraceTargets:
    def test_trace_accepts_fuzz_target(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "fuzz:320", "--trace-out", str(out)]) == 0
        assert "fuzz_320" in capsys.readouterr().out
        assert out.exists()

    def test_trace_accepts_file_target(self, tmp_path, capsys):
        path = tmp_path / "tiny.asm"
        path.write_text(TINY_KERNEL)
        out = tmp_path / "trace.json"
        assert main(["trace", str(path), "--trace-out", str(out)]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_trace_bad_target_exits_2(self, capsys):
        assert main(["trace", "fuzz:abc"]) == 2
        assert "fuzz:SEED" in capsys.readouterr().err

    def test_trace_help_documents_target_forms(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--help"])
        help_text = capsys.readouterr().out
        assert "fuzz:SEED" in help_text


class TestExplainJson:
    def test_explain_json_output(self, capsys):
        assert main(["explain", "vectoradd", "--json", "--reg", "R2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "vectoradd"
        assert payload["filter"]["reg"] == "R2"
        assert "decision_trail" in payload

    def test_explain_text_unchanged(self, capsys):
        assert main(["explain", "vectoradd"]) == 0
        out = capsys.readouterr().out
        assert "allocation provenance" in out


class TestTuneCommand:
    def test_tune_writes_payload_and_prints_report(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_tuner.json"
        assert (
            main(
                [
                    "tune", "fuzz:911",
                    "--strategy", "evolutionary",
                    "--budget", "30",
                    "--seed", "7",
                    "--out", str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "why this config" in printed
        assert "frontier" in printed
        payload = json.loads(out.read_text())
        assert payload["kernel"] == "fuzz_911"
        assert payload["evaluations"]["distinct"] == 30
        assert (
            payload["best"]["objective"]
            <= payload["baseline"]["objective"]
        )

    def test_tune_bad_target_exits_2(self, tmp_path, capsys):
        assert main(["tune", str(tmp_path / "nope.asm")]) == 2
        assert capsys.readouterr().err.startswith("repro: error:")

    def test_tune_help_documents_target_forms(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "--help"])
        assert "fuzz:SEED" in capsys.readouterr().out

"""Tests for CSV export of experiment results."""

import csv
import io

import pytest

from repro.experiments import (
    SuiteData,
    run_fig2,
    run_fig11,
    run_fig13,
    run_fig15,
    run_unroll_study,
)
from repro.experiments.export import (
    export_all,
    fig2_csv,
    fig11_csv,
    fig13_csv,
    fig15_csv,
    unroll_csv,
)
from repro.workloads import get_workload

_SUBSET = ["vectoradd", "histogram", "mergesort"]


@pytest.fixture(scope="module")
def data():
    return SuiteData.build([get_workload(name) for name in _SUBSET])


def _parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestCsvRendering:
    def test_fig2_csv(self, data):
        rows = _parse(fig2_csv(run_fig2(data)))
        assert rows[0] == ["suite", "metric", "bucket", "fraction"]
        fractions = [float(r[3]) for r in rows[1:]]
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_fig11_csv(self, data):
        rows = _parse(fig11_csv(run_fig11(data, sweep=(1, 3))))
        assert rows[0][0] == "series"
        series = {r[0] for r in rows[1:]}
        assert series == {"hw", "sw"}
        # 2 series x 2 entries x 3 levels.
        assert len(rows) - 1 == 12

    def test_fig13_csv_matches_result(self, data):
        result = run_fig13(data, sweep=(3,), include_extras=False)
        rows = _parse(fig13_csv(result))
        values = {
            (r[0], int(r[1])): float(r[2]) for r in rows[1:]
        }
        assert values[("SW", 3)] == pytest.approx(
            result.curves["SW"][3], abs=1e-6
        )

    def test_fig15_csv_sorted(self, data):
        rows = _parse(fig15_csv(run_fig15(data)))
        energies = [float(r[1]) for r in rows[1:]]
        assert energies == sorted(energies)
        assert len(energies) == len(_SUBSET)

    def test_unroll_csv(self):
        result = run_unroll_study(benchmarks=("vectoradd",), factor=2)
        rows = _parse(unroll_csv(result))
        assert rows[0] == ["benchmark", "variant", "normalized_energy"]
        assert len(rows) - 1 == 3  # original, unroll2, unroll2+hoist


class TestExportAll:
    def test_writes_artifacts(self, data, tmp_path):
        written = export_all(data, tmp_path, include_slow=False)
        names = {path.name for path in written}
        assert names == {
            "fig2.csv", "fig11.csv", "fig12.csv", "fig13.csv",
            "fig14.csv", "fig15.csv",
        }
        for path in written:
            assert path.read_text().count("\n") > 1

"""Tests for the divergence robustness study."""

from repro.experiments import (
    format_divergence_study,
    run_divergence_study,
)


class TestDivergenceStudy:
    def test_small_run(self):
        result = run_divergence_study(
            benchmarks=("mergesort", "histogram"), lanes=4
        )
        assert len(result.points) == 2
        assert result.max_abs_delta() < 0.1
        for point in result.points:
            # Divergent warps execute more instructions (lanes split).
            assert (
                point.divergent_instructions
                > point.uniform_instructions
            )

    def test_format(self):
        result = run_divergence_study(benchmarks=("histogram",), lanes=4)
        text = format_divergence_study(result)
        assert "Divergence robustness" in text

"""Tests for the shared experiment data layer."""

import pytest

from repro.experiments import SuiteData
from repro.sim import Scheme, SchemeKind
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def data():
    return SuiteData.build(
        [get_workload(name) for name in ("vectoradd", "histogram")]
    )


class TestSuiteData:
    def test_builds_all_items(self, data):
        assert len(data.items) == 2
        assert data.dynamic_instructions > 0

    def test_aggregate_sums_workloads(self, data):
        scheme = Scheme(SchemeKind.SW_TWO_LEVEL, 3)
        counters, baseline = data.aggregate(scheme)
        per_item_total = 0.0
        for spec, traces in data.items:
            from repro.sim import evaluate_traces

            evaluation = evaluate_traces(traces, scheme)
            per_item_total += evaluation.counters.total_reads()
        assert counters.total_reads() == pytest.approx(per_item_total)
        assert baseline.total_reads() == pytest.approx(
            counters.total_reads()
        )

    def test_normalized_energy_in_unit_interval(self, data):
        for kind in (SchemeKind.SW_TWO_LEVEL, SchemeKind.HW_TWO_LEVEL):
            energy = data.normalized_energy(Scheme(kind, 3))
            assert 0.0 < energy <= 1.25

    def test_per_benchmark_keys(self, data):
        energies = data.per_benchmark_energy(
            Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
        )
        assert set(energies) == {"vectoradd", "histogram"}

    def test_default_build_uses_full_suite(self):
        # Construct lazily; just check the constructor path that loads
        # the registry (avoid tracing all 36 here — covered by the
        # benchmark harness).
        from repro.workloads import BENCHMARK_NAMES, all_workloads

        assert len(all_workloads()) == len(BENCHMARK_NAMES)

    def test_baseline_model_independent(self, data):
        """The baseline only touches the MRF, so its energy is the same
        under every ORF size; normalization is therefore consistent."""
        small = data.normalized_energy(
            Scheme(SchemeKind.SW_TWO_LEVEL, 1)
        )
        large = data.normalized_energy(
            Scheme(SchemeKind.SW_TWO_LEVEL, 8)
        )
        assert small != large  # sizes genuinely differ

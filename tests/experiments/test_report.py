"""Tests for the one-shot reproduction report."""

from repro.experiments import SuiteData, build_report, write_report
from repro.workloads import get_workload


class TestReport:
    def _data(self):
        return SuiteData.build(
            [get_workload(n) for n in ("vectoradd", "histogram")]
        )

    def test_contains_all_sections(self):
        text = build_report(self._data())
        for marker in (
            "# Reproduction report",
            "## Headline",
            "Figure 2",
            "Figure 13",
            "limit study",
            "variable ORF",
            "Sensitivity",
        ):
            assert marker in text

    def test_headline_table_well_formed(self):
        text = build_report(self._data())
        headline = text.split("## Headline")[1].split("##")[0]
        rows = [l for l in headline.splitlines() if l.startswith("|")]
        assert len(rows) == 2 + 4  # header + separator + 4 schemes

    def test_write_report(self, tmp_path):
        target = write_report(tmp_path / "REPORT.md", self._data())
        assert target.exists()
        assert target.read_text().startswith("# Reproduction report")

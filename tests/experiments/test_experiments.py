"""Integration tests for the experiment drivers (small workload set).

Full-suite numbers live in the benchmark harness; these tests check
that each driver runs, produces structurally sound results, and
reproduces the paper's *orderings* on a representative subset.
"""

import pytest

from repro.experiments import (
    SuiteData,
    format_encoding_study,
    format_fig2,
    format_fig11,
    format_fig12,
    format_fig13,
    format_fig14,
    format_fig15,
    format_limit_study,
    run_encoding_study,
    run_fig2,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_limit_study,
)
from repro.levels import Level
from repro.workloads import get_workload

_SUBSET = [
    "matrixmul",
    "reduction",
    "hotspot",
    "montecarlo",
    "mergesort",
    "histogram",
    "vectoradd",
    "volumerender",
]
_SWEEP = (1, 3, 6)


@pytest.fixture(scope="module")
def data():
    return SuiteData.build([get_workload(name) for name in _SUBSET])


class TestFig2:
    def test_runs_and_formats(self, data):
        result = run_fig2(data)
        text = format_fig2(result)
        assert "Figure 2(a)" in text and "Figure 2(b)" in text

    def test_fractions_in_range(self, data):
        result = run_fig2(data)
        for fraction in result.overall.read_count_fractions().values():
            assert 0.0 <= fraction <= 1.0

    def test_read_once_dominates(self, data):
        result = run_fig2(data)
        fractions = result.overall.read_count_fractions()
        assert fractions["1"] == max(fractions.values())


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self, data):
        return run_fig11(data, sweep=_SWEEP)

    def test_sw_reads_exactly_baseline(self, result):
        for point in result.sw:
            assert point.total_reads == pytest.approx(1.0)

    def test_hw_reads_exceed_baseline(self, result):
        for point in result.hw:
            assert point.total_reads > 1.0

    def test_larger_orf_fewer_mrf_reads(self, result):
        mrf = [p.reads[Level.MRF] for p in result.sw]
        assert mrf[-1] <= mrf[0]

    def test_formats(self, result):
        assert "Figure 11" in format_fig11(result)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self, data):
        return run_fig12(data, sweep=_SWEEP)

    def test_lrf_captures_reads(self, result):
        point = result.point("sw", 3)
        assert point.reads[Level.LRF] > 0.1

    def test_split_lrf_more_lrf_reads(self, result):
        unified = result.point("sw", 3).reads[Level.LRF]
        split = result.point("sw_split", 3).reads[Level.LRF]
        assert split >= unified

    def test_hw_overhead_writes_exceed_sw(self, result):
        assert (
            result.point("hw", 3).total_writes
            > result.point("sw", 3).total_writes
        )

    def test_formats(self, result):
        assert "Figure 12" in format_fig12(result)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self, data):
        return run_fig13(data, sweep=_SWEEP)

    def test_paper_ordering_of_schemes(self, result):
        """SW LRF Split < SW < HW and SW LRF Split < HW LRF at the
        paper's operating points."""
        assert (
            result.curves["SW LRF Split"][3]
            < result.curves["SW"][3]
            < result.curves["HW"][3]
        )
        assert (
            result.curves["SW LRF Split"][3]
            < result.curves["HW LRF"][6]
        )

    def test_all_schemes_save_energy(self, result):
        for curve in result.curves.values():
            for energy in curve.values():
                assert energy < 1.0

    def test_optimisations_help(self, result):
        assert (
            result.curves["SW"][3] < result.curves["SW (no opts)"][3]
        )

    def test_best_helper(self, result):
        entries, energy = result.best("SW")
        assert energy == min(result.curves["SW"].values())

    def test_formats(self, result):
        text = format_fig13(result)
        assert "Figure 13" in text and "chip-wide" in text


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self, data):
        return run_fig14(data, sweep=_SWEEP)

    def test_mrf_dominates_remaining_energy(self, result):
        point = result.point(3)
        mrf = point.access[Level.MRF] + point.wire[Level.MRF]
        assert mrf > 0.5 * point.total

    def test_lrf_cost_tiny(self, result):
        point = result.point(3)
        assert point.access[Level.LRF] + point.wire[Level.LRF] < 0.1

    def test_total_matches_fig13(self, data, result):
        fig13 = run_fig13(data, sweep=(3,), include_extras=False)
        assert result.point(3).total == pytest.approx(
            fig13.curves["SW LRF Split"][3], rel=1e-6
        )

    def test_formats(self, result):
        assert "Figure 14" in format_fig14(result)


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self, data):
        return run_fig15(data)

    def test_all_benchmarks_present(self, result):
        assert set(result.energies) == set(_SUBSET)

    def test_reduction_saves_least(self, result):
        worst_name, _ = result.worst(1)[0]
        assert worst_name == "reduction"

    def test_sorted_order(self, result):
        energies = [e for _, e in result.sorted_by_savings()]
        assert energies == sorted(energies)

    def test_formats(self, result):
        assert "Figure 15" in format_fig15(result)


class TestLimitStudy:
    @pytest.fixture(scope="class")
    def result(self, data):
        return run_limit_study(data)

    def test_ideals_beat_realistic(self, result):
        assert result.ideal_all_lrf < result.realistic
        assert result.ideal_all_orf5 < result.realistic

    def test_lrf_ideal_beats_orf_ideal(self, result):
        assert result.ideal_all_lrf < result.ideal_all_orf5

    def test_oracle_no_worse_than_fixed(self, result):
        assert result.variable_orf <= result.realistic + 1e-9

    def test_resident_rfc_no_worse_than_flushed(self, result):
        assert result.hw_resident_backward <= result.hw_flush_backward

    def test_bigger_free_orf_helps(self, result):
        assert result.resched_ideal_8_as_3 <= result.realistic + 1e-9

    def test_formats(self, result):
        assert "limit study" in format_limit_study(result)


class TestEncodingStudy:
    def test_net_savings_positive(self, data):
        result = run_encoding_study(data)
        assert result.optimistic.chip_wide_net_savings > 0
        assert result.pessimistic.chip_wide_net_savings > 0
        assert (
            result.optimistic.chip_wide_net_savings
            > result.pessimistic.chip_wide_net_savings
        )

    def test_formats(self, data):
        assert "encoding" in format_encoding_study(
            run_encoding_study(data)
        )

"""Tests for the variable ORF allocation study (Section 7)."""

import pytest

from repro.alloc.allocator import AllocationConfig
from repro.energy.model import EnergyModel
from repro.experiments import SuiteData, run_variable_orf_study
from repro.experiments.variable_orf import (
    _request_size,
    _split_executions,
    collect_strand_executions,
    format_variable_orf,
    oracle_energy,
    simulate_realistic,
)
from repro.workloads import get_workload

_NAMES = ["matrixmul", "reduction", "vectoradd", "histogram"]


@pytest.fixture(scope="module")
def data():
    return SuiteData.build([get_workload(name) for name in _NAMES])


@pytest.fixture(scope="module")
def result(data):
    return run_variable_orf_study(data)


class TestPolicyOrdering:
    def test_oracle_best(self, result):
        assert result.oracle <= result.realistic + 1e-9
        assert result.oracle <= result.fixed + 1e-9

    def test_realistic_between_fixed_and_oracle(self, result):
        """The realistic scheduler recovers part of the oracle's gain."""
        assert result.realistic <= result.fixed + 1e-9

    def test_oracle_gain_in_paper_band(self, result):
        """Paper: ~6 points of further savings from variable sizing."""
        gain = result.fixed - result.oracle
        assert 0.0 < gain < 0.15

    def test_starvation_bounded(self, result):
        assert 0.0 <= result.starved_fraction <= 0.5

    def test_format(self, result):
        text = format_variable_orf(result)
        assert "oracle" in text and "realistic" in text


class TestMechanics:
    def test_split_executions_covers_trace(self, data):
        from repro.alloc.allocator import allocate_kernel

        spec, traces = data.items[0]
        config = AllocationConfig(orf_entries=3, use_lrf=True)
        allocation = allocate_kernel(spec.kernel, config)
        strand_map = allocation.partition.strand_of_position
        for trace in traces.warp_traces:
            executions = _split_executions(trace, strand_map)
            assert sum(len(e) for e in executions) == len(trace)
            # Each execution stays within one strand.
            for execution in executions:
                strands = {
                    strand_map.get(ev.ref.position)
                    for ev in execution
                }
                assert len(strands) == 1

    def test_request_size_policies(self):
        header = {1: 10.0, 2: 50.0, 3: 96.0, 4: 100.0, 5: 100.0,
                  6: 100.0, 7: 100.0, 8: 100.0}
        assert _request_size(header, tolerance=0.05) == 3
        assert _request_size(header, tolerance=0.0) == 4
        unprofitable = {size: -1.0 for size in range(1, 9)}
        assert _request_size(unprofitable, tolerance=0.05) == 0

    def test_pool_starvation_reduces_savings(self, data):
        config = AllocationConfig(
            orf_entries=3, use_lrf=True, split_lrf=True
        )
        model = EnergyModel(orf_entries=3, split_lrf=True)
        per_warp, _ = collect_strand_executions(data.items, config)
        roomy_pj, roomy_starved = simulate_realistic(
            per_warp, model, pool_entries=64
        )
        tight_pj, tight_starved = simulate_realistic(
            per_warp, model, pool_entries=4
        )
        assert tight_starved >= roomy_starved
        assert tight_pj >= roomy_pj - 1e-6

    def test_oracle_monotone_in_sizes(self, data):
        config = AllocationConfig(
            orf_entries=3, use_lrf=True, split_lrf=True
        )
        model = EnergyModel(orf_entries=3, split_lrf=True)
        per_warp, _ = collect_strand_executions(data.items, config)
        oracle = oracle_energy(per_warp, model)
        fixed = sum(
            execution.energy(3, model)
            for sequence in per_warp
            for execution in sequence
        )
        assert oracle <= fixed + 1e-6

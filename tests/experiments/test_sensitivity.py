"""Tests for the energy-model sensitivity study."""

import pytest

from repro.energy.model import EnergyModel
from repro.experiments import (
    SuiteData,
    format_sensitivity,
    run_sensitivity_study,
)
from repro.levels import Level
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def data():
    return SuiteData.build(
        [get_workload(n) for n in ("matrixmul", "histogram", "vectoradd")]
    )


class TestModelScaling:
    def test_scaled_components(self):
        base = EnergyModel(orf_entries=3)
        doubled = base.scaled(mrf=2.0)
        assert doubled.access_energy(Level.MRF, True) == pytest.approx(
            2 * base.access_energy(Level.MRF, True)
        )
        assert doubled.access_energy(Level.ORF, True) == pytest.approx(
            base.access_energy(Level.ORF, True)
        )

    def test_orf_scale(self):
        base = EnergyModel(orf_entries=3)
        halved = base.scaled(orf=0.5)
        assert halved.access_energy(Level.ORF, True) == pytest.approx(
            0.5 * base.access_energy(Level.ORF, True)
        )

    def test_wire_scale(self):
        base = EnergyModel(orf_entries=3)
        assert base.scaled(wire=3.0).wire_energy(
            Level.MRF, False
        ) == pytest.approx(3 * base.wire_energy(Level.MRF, False))

    def test_scaling_composes(self):
        base = EnergyModel(orf_entries=3)
        twice = base.scaled(orf=2.0).scaled(orf=2.0)
        assert twice.orf_energy_scale == pytest.approx(4.0)


class TestSensitivityStudy:
    def test_ordering_robust(self, data):
        result = run_sensitivity_study(data, factors=(0.5, 1.0, 2.0))
        assert result.all_orderings_hold()

    def test_directions(self, data):
        """More expensive MRF -> bigger savings; more expensive ORF ->
        smaller savings (the hierarchy's own costs grow)."""
        result = run_sensitivity_study(data, factors=(0.5, 2.0))
        by_component = result.by_component()
        mrf = sorted(by_component["mrf"], key=lambda p: p.factor)
        assert mrf[-1].sw_savings > mrf[0].sw_savings
        orf = sorted(by_component["orf"], key=lambda p: p.factor)
        assert orf[-1].sw_savings < orf[0].sw_savings

    def test_format(self, data):
        result = run_sensitivity_study(data, factors=(1.0,))
        text = format_sensitivity(result)
        assert "sensitivity" in text.lower()
        assert "holds at every point" in text

"""Exhaustive dynamic verification across the whole benchmark suite.

Every Table 1 workload, under uniform and divergent execution, across
the main allocator configurations: every annotated read must observe
the architecturally correct value.  This is the repository's broadest
single safety net for the allocator.
"""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.sim import build_traces
from repro.sim.divergence import DivergentWarpInput, run_divergent_warp
from repro.sim.verify import verify_trace
from repro.sim.verify_divergent import verify_divergent_trace
from repro.workloads import BENCHMARK_NAMES, get_workload

_CONFIGS = {
    "best": AllocationConfig.best_paper_config(),
    "two_level": AllocationConfig(orf_entries=3),
    "tiny": AllocationConfig(orf_entries=1, use_lrf=True),
}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_uniform_verification(name):
    spec = get_workload(name)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    for config in _CONFIGS.values():
        result = allocate_kernel(spec.kernel, config)
        for trace in traces.warp_traces:
            verify_trace(spec.kernel, result.partition, trace)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_divergent_verification(name):
    """Per-lane verification with per-thread trip counts and data."""
    spec = get_workload(name)
    base = spec.warp_inputs[0].live_in_values
    threads = []
    for lane in range(4):
        values = dict(base)
        for index, reg in enumerate(sorted(values, key=lambda r: r.index)):
            if index >= 1:
                values[reg] = values[reg] + lane * (7 + index)
        threads.append(values)
    result = allocate_kernel(spec.kernel, _CONFIGS["best"])
    events = run_divergent_warp(
        spec.kernel,
        DivergentWarpInput(threads, max_instructions=100_000),
    )
    verify_divergent_trace(spec.kernel, result.partition, events, 4)
